//! Sensitized combinational paths with injectable resistive defects.
//!
//! The paper's electrical experiments all run on one structure: a path of
//! a handful of CMOS gates with realistic fan-out loading, a stimulus at
//! its input, and a resistive defect (open or bridge) somewhere along it.
//! [`BuiltPath`] builds that structure as a transistor netlist and exposes
//! the two measurements everything else is computed from:
//!
//! * [`BuiltPath::propagate_transition`] — the classic delay-fault view:
//!   apply one input edge, measure the path propagation delay.
//! * [`BuiltPath::propagate_pulse`] — the paper's proposal: apply a pulse
//!   of width `w_in`, measure the width that survives to the output
//!   (`w_out = f_p(w_in)`), zero when fully dampened.

use crate::gates::{CellKind, CmosBuilder, RopSite};
use crate::tech::Tech;
use pulsar_analog::{
    propagation_delay, BatchLane, BatchOutcome, BatchWorkspace, CancelToken, Circuit, Edge, Error,
    Integrator, NodeId, Polarity, Recorder, SolverMode, SolverWorkspace, SymbolicCache,
    TraceCapture, TranConfig, TranResult, Waveform,
};

/// Structural description of a path: the gate chain plus per-stage extra
/// fan-out loads (dummy inverters hanging on each stage output).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathSpec {
    /// On-path cells, input to output.
    pub stages: Vec<CellKind>,
    /// `fanout_loads[i]` dummy inverter loads on stage `i`'s output.
    pub fanout_loads: Vec<usize>,
}

impl PathSpec {
    /// A plain inverter chain of `n` stages with single fan-out.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn inverter_chain(n: usize) -> Self {
        assert!(n > 0, "a path needs at least one stage");
        PathSpec {
            stages: vec![CellKind::Inv; n],
            fanout_loads: vec![0; n],
        }
    }

    /// The 7-gate path used throughout the paper's Section 4, with a
    /// fan-out branch at the faulted stage's output (the `B` / `B·C`
    /// structure of Fig. 1b).
    pub fn paper_chain() -> Self {
        let mut spec = PathSpec::inverter_chain(7);
        spec.fanout_loads[1] = 1;
        spec
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True for an empty spec (never produced by the constructors).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Whether the whole path inverts: odd number of inverting stages.
    pub fn inverts(&self) -> bool {
        self.stages.iter().filter(|s| s.is_inverting()).count() % 2 == 1
    }
}

/// Resistive defect injected into a path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PathFault {
    /// Fault-free reference.
    None,
    /// Internal resistive open inside stage `stage` (0-based), slowing one
    /// output edge (paper Fig. 1a).
    InternalRop {
        /// Faulted stage index.
        stage: usize,
        /// Pull-up (slows rising output) or pull-down (slows falling).
        site: RopSite,
        /// Defect resistance, ohms.
        ohms: f64,
    },
    /// External resistive open between stage `stage`'s output and the
    /// on-path fan-out branch feeding stage `stage + 1` (paper Fig. 1b).
    ExternalRop {
        /// Faulted stage index (must not be the last stage).
        stage: usize,
        /// Defect resistance, ohms.
        ohms: f64,
    },
    /// Resistive bridge between stage `stage`'s output and the output of a
    /// steady aggressor inverter (paper Fig. 4).
    Bridge {
        /// Victim stage index.
        stage: usize,
        /// Bridge resistance, ohms.
        ohms: f64,
        /// Steady logic value at the aggressor output.
        aggressor_high: bool,
    },
    /// Resistive bridge **inside** one gate: between the first internal
    /// stack node of stage `stage` and its own output. This is the
    /// "internal BF" case the paper mentions but leaves out "for the sake
    /// of brevity" (§2); the stage must be a cell with a series stack
    /// (NAND/NOR).
    InternalBridge {
        /// Faulted stage index.
        stage: usize,
        /// Bridge resistance, ohms.
        ohms: f64,
    },
}

impl PathFault {
    /// The injected defect resistance, when the fault carries one.
    pub fn ohms(&self) -> Option<f64> {
        match *self {
            PathFault::None => None,
            PathFault::InternalRop { ohms, .. }
            | PathFault::ExternalRop { ohms, .. }
            | PathFault::Bridge { ohms, .. }
            | PathFault::InternalBridge { ohms, .. } => Some(ohms),
        }
    }

    /// Validates this fault against a path of `stages` stages.
    ///
    /// The defect resistance must be finite and strictly positive (a zero,
    /// negative, or NaN value used to be accepted here and only blew up
    /// later, inside the circuit build), and the stage index must be in
    /// range — an external ROP additionally needs a downstream stage for
    /// its on-path fan-out branch.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] with parameter `"ohms"` or `"stage"`.
    pub fn validate(&self, stages: usize) -> Result<(), Error> {
        if let Some(ohms) = self.ohms() {
            if !(ohms.is_finite() && ohms > 0.0) {
                return Err(Error::InvalidParameter {
                    element: "path fault",
                    parameter: "ohms",
                    value: ohms,
                });
            }
        }
        let bad_stage = |stage: usize| {
            Err(Error::InvalidParameter {
                element: "path fault",
                parameter: "stage",
                value: stage as f64,
            })
        };
        match *self {
            PathFault::InternalRop { stage, .. }
            | PathFault::Bridge { stage, .. }
            | PathFault::InternalBridge { stage, .. }
                if stage >= stages =>
            {
                bad_stage(stage)
            }
            PathFault::ExternalRop { stage, .. } if stage + 1 >= stages => bad_stage(stage),
            _ => Ok(()),
        }
    }
}

/// How much waveform data a path's default measurement runs record.
///
/// Capture selection never touches the solver — the same time points are
/// accepted with the same arithmetic under every policy — so any
/// measurement taken from a captured trace is bit-identical across
/// policies. The policy only decides which measurements *exist* in the
/// result, and how much per-point storage the run pays for.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CapturePolicy {
    /// Capture every stage output (the default):
    /// [`PulseOutcome::stage_widths`] is fully populated.
    #[default]
    StageOutputs,
    /// Capture only the nodes the top-level measurement reads — the path
    /// output for pulse runs. [`PulseOutcome::stage_widths`] comes back
    /// empty; `output_width` and `peak_fraction` are bit-identical to the
    /// other policies. The hot-path setting for Monte Carlo width
    /// studies, where per-stage waveforms are recorded only to be thrown
    /// away.
    MeasurementsOnly,
}

/// Result of a pulse-propagation run.
#[derive(Debug, Clone)]
pub struct PulseOutcome {
    /// Width of the pulse measured at the path output (at `vdd/2`), or
    /// `0.0` when the pulse was fully dampened.
    pub output_width: f64,
    /// Peak excursion at the output as a fraction of VDD (quantifies
    /// partial dampening even when no full pulse appears).
    pub peak_fraction: f64,
    /// Pulse width measured at each stage output, input to output side.
    /// Empty when the run recorded only the output trace
    /// ([`CapturePolicy::MeasurementsOnly`]).
    pub stage_widths: Vec<f64>,
}

impl PulseOutcome {
    /// True when no pulse crossed the threshold at the output.
    pub fn dampened(&self) -> bool {
        self.output_width == 0.0
    }
}

/// Result of a single-transition (delay-fault view) run.
#[derive(Debug, Clone, Copy)]
pub struct TransitionOutcome {
    /// Input-edge to output-edge propagation delay at `vdd/2`, or `None`
    /// when the output never switched within the simulated window.
    pub delay: Option<f64>,
    /// The edge direction expected (and looked for) at the output.
    pub output_edge: Edge,
}

/// A transistor-level sensitized path with one injectable defect.
///
/// See the crate-level example. Instances are built once per Monte Carlo
/// sample and reused across stimulus and resistance sweeps.
#[derive(Debug)]
pub struct BuiltPath {
    circuit: Circuit,
    input: NodeId,
    input_src: usize,
    stage_outputs: Vec<NodeId>,
    fault_resistor: Option<usize>,
    vdd: f64,
    inverts: bool,
    /// Stimulus edge rate (10–90 %-ish ramp time of the ideal source).
    input_edge: f64,
    /// Time the stimulus starts.
    t_start: f64,
    /// Default simulation step.
    step: f64,
    /// Use adaptive (LTE-controlled) stepping in default simulations.
    adaptive: bool,
    /// Retry-escalation level (0 = nominal); see [`BuiltPath::set_robustness`].
    robustness: u32,
    /// Multiplicative step perturbation applied with the robustness
    /// ladder (1.0 = none).
    step_scale: f64,
    /// Element index of the VDD rail source (quiescent-current probe).
    vdd_source: usize,
    /// Per-path solver scratch, reused across every simulation this path
    /// runs (stimulus sweeps, resistance sweeps, retries).
    workspace: SolverWorkspace,
    /// When false, simulations run through the allocation-per-step
    /// baseline engine instead of the workspace (benchmark reference).
    reuse_workspace: bool,
    /// Which node waveforms the default measurement runs record.
    capture_policy: CapturePolicy,
}

impl BuiltPath {
    /// Builds the path with per-stage technology samples.
    ///
    /// `techs[i]` parameterizes stage `i`'s transistors — the Monte Carlo
    /// hook for per-gate process variation. Dummy fan-out loads and the
    /// bridge aggressor use `techs[0]`.
    ///
    /// # Panics
    ///
    /// Panics if `techs.len() != spec.len()`, if a fault references a
    /// stage out of range, or if an external ROP is placed on the last
    /// stage (it needs an on-path fan-out branch).
    pub fn new(spec: &PathSpec, fault: &PathFault, techs: &[Tech]) -> Self {
        assert_eq!(techs.len(), spec.len(), "one Tech sample per stage");
        match *fault {
            PathFault::InternalRop { stage, .. }
            | PathFault::Bridge { stage, .. }
            | PathFault::InternalBridge { stage, .. } => {
                assert!(stage < spec.len(), "fault stage {stage} out of range");
            }
            PathFault::ExternalRop { stage, .. } => {
                assert!(
                    stage + 1 < spec.len(),
                    "external ROP needs a downstream stage (stage {stage} of {})",
                    spec.len()
                );
            }
            PathFault::None => {}
        }

        let tech0 = &techs[0];
        let mut b = CmosBuilder::new(tech0);
        let (input, input_src) = b.input_with_index("pi", Waveform::dc(0.0));

        let mut fault_resistor = None;
        let mut stage_outputs = Vec::with_capacity(spec.len());
        let mut on_path = input;

        for (i, (&kind, tech)) in spec.stages.iter().zip(techs).enumerate() {
            // Internal ROP on this stage?
            let rop = match *fault {
                PathFault::InternalRop { stage, site, ohms } if stage == i => Some((site, ohms)),
                _ => None,
            };

            // Assemble input pins: the on-path signal first, side inputs
            // tied to their sensitizing values (per-pin for complex cells).
            let mut pins = vec![on_path];
            for v in kind.side_values(0) {
                pins.push(b.constant(v));
            }

            let g = b.gate(kind, tech, &pins, &format!("u{i}"), rop);
            if let Some(r) = g.rop_resistor {
                fault_resistor = Some(r);
            }
            stage_outputs.push(g.output);

            // Dummy fan-out loads on the driver output.
            for k in 0..spec.fanout_loads[i] {
                b.gate(
                    CellKind::Inv,
                    tech0,
                    &[g.output],
                    &format!("load{i}_{k}"),
                    None,
                );
            }

            // External ROP: the on-path branch to the next stage goes
            // through the defect resistor (node B → B·C of Fig. 1b).
            on_path = match *fault {
                PathFault::ExternalRop { stage, ohms } if stage == i => {
                    let bc = b.circuit_mut().node(format!("u{i}.bc"));
                    fault_resistor = Some(b.circuit_mut().resistor(g.output, bc, ohms));
                    bc
                }
                _ => g.output,
            };

            // Interconnect of the on-path fan-out branch (the wire segment
            // between the via and the next gate's input). Fault-free this
            // cap sits on the driver net and just adds to its wire load;
            // with an external ROP it is the charge the defect resistance
            // must supply, which is what degrades the branch's slopes.
            let c_branch = 0.75 * tech.c_wire;
            if c_branch > 0.0 {
                b.circuit_mut()
                    .capacitor(on_path, pulsar_analog::Circuit::GROUND, c_branch);
            }

            // Bridge: steady aggressor inverter tied through the bridge
            // resistance to this stage's output.
            if let PathFault::Bridge {
                stage,
                ohms,
                aggressor_high,
            } = *fault
            {
                if stage == i {
                    // Inverter input at the opposite rail makes the output
                    // sit steadily at `aggressor_high`.
                    let drive = b.constant(!aggressor_high);
                    let ag = b.gate(CellKind::Inv, tech0, &[drive], &format!("aggr{i}"), None);
                    fault_resistor = Some(b.circuit_mut().resistor(g.output, ag.output, ohms));
                }
            }

            // Internal bridge: the stage's own stack node shorted (through
            // R) to its output.
            if let PathFault::InternalBridge { stage, ohms } = *fault {
                if stage == i {
                    let inner = *g.internal_nodes.first().unwrap_or_else(|| {
                        panic!(
                            "internal bridge needs a stacked cell at stage {i}, found {:?}",
                            kind
                        )
                    });
                    fault_resistor = Some(b.circuit_mut().resistor(inner, g.output, ohms));
                }
            }
        }

        let vdd_source = b.vdd_source();
        let (circuit, _) = b.finish();
        BuiltPath {
            circuit,
            input,
            input_src,
            stage_outputs,
            fault_resistor,
            vdd: tech0.vdd,
            inverts: spec.inverts(),
            input_edge: 80e-12,
            t_start: 0.5e-9,
            step: 4e-12,
            adaptive: false,
            robustness: 0,
            step_scale: 1.0,
            vdd_source,
            workspace: SolverWorkspace::new(),
            reuse_workspace: true,
            capture_policy: CapturePolicy::default(),
        }
    }

    /// Fallible counterpart of [`BuiltPath::new`]: validates the tech count
    /// and the fault (stage range and defect-resistance domain, via
    /// [`PathFault::validate`]) and returns a typed error instead of
    /// panicking. Campaign drivers use this so a misconfigured fault is
    /// rejected when the path is armed, not deep inside a sample.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] with parameter `"techs"` when
    /// `techs.len() != spec.len()`, or `"ohms"`/`"stage"` from
    /// [`PathFault::validate`].
    ///
    /// # Panics
    ///
    /// Like [`BuiltPath::new`], still panics when an internal bridge is
    /// placed on a stage without a series stack — that is a property of
    /// the cell library, not of the numeric fault parameters.
    pub fn try_new(spec: &PathSpec, fault: &PathFault, techs: &[Tech]) -> Result<Self, Error> {
        if techs.len() != spec.len() {
            return Err(Error::InvalidParameter {
                element: "path",
                parameter: "techs",
                value: techs.len() as f64,
            });
        }
        fault.validate(spec.len())?;
        Ok(Self::new(spec, fault, techs))
    }

    /// Runs a transient through the path's own workspace (or the baseline
    /// engine when reuse is disabled). All measurement paths funnel here so
    /// the reuse/baseline toggle covers every simulation uniformly.
    fn sim(&mut self, cfg: &TranConfig, capture: &TraceCapture) -> Result<TranResult, Error> {
        if self.reuse_workspace {
            self.circuit
                .transient_with(cfg, &mut self.workspace, capture)
        } else {
            self.circuit.transient_baseline(cfg)
        }
    }

    /// The underlying circuit (for inspection or custom probing).
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Path input node (driven by the stimulus source).
    pub fn input(&self) -> NodeId {
        self.input
    }

    /// Stage output nodes, input side to output side.
    pub fn stage_outputs(&self) -> &[NodeId] {
        &self.stage_outputs
    }

    /// The path output node (last stage output).
    ///
    /// # Panics
    ///
    /// Never panics: specs are non-empty by construction.
    pub fn output(&self) -> NodeId {
        *self.stage_outputs.last().expect("non-empty path")
    }

    /// Supply voltage of the built circuit.
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// Whether the path logically inverts.
    pub fn inverts(&self) -> bool {
        self.inverts
    }

    /// Changes the injected defect resistance without rebuilding.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] if the path was built fault-free or the
    /// resistance is out of domain.
    pub fn set_fault_resistance(&mut self, ohms: f64) -> Result<(), Error> {
        match self.fault_resistor {
            Some(idx) => self.circuit.set_resistance(idx, ohms),
            None => Err(Error::InvalidParameter {
                element: "path fault",
                parameter: "ohms",
                value: ohms,
            }),
        }
    }

    /// Overrides the stimulus edge time (default 80 ps).
    pub fn set_input_edge(&mut self, seconds: f64) {
        self.input_edge = seconds;
    }

    /// Stimulus edge time (seconds); see [`BuiltPath::set_input_edge`].
    pub fn input_edge(&self) -> f64 {
        self.input_edge
    }

    /// Time the default stimulus starts (seconds).
    pub fn stimulus_start(&self) -> f64 {
        self.t_start
    }

    /// The transient configuration default measurement runs would use,
    /// given `extra` seconds of stimulus-dependent window (e.g. the input
    /// pulse width). Exposes the default window to static pre-checks.
    pub fn default_config(&self, extra: f64) -> TranConfig {
        self.default_cfg(extra)
    }

    /// Attaches a particle-strike current source to the given stage's
    /// output: a triangular current pulse of `peak_amps` starting at `t0`
    /// and lasting `duration`, *discharging* the node (an n-diffusion
    /// hit). Returns the element index of the source.
    ///
    /// This is the on-line scenario of the paper's §1: the same sensing
    /// circuits used off-line for pulse testing "were introduced to
    /// on-line detect transient faults originated by ionizing particles".
    ///
    /// # Panics
    ///
    /// Panics if `stage` is out of range.
    pub fn add_strike_source(
        &mut self,
        stage: usize,
        peak_amps: f64,
        t0: f64,
        duration: f64,
    ) -> usize {
        let node = self.stage_outputs[stage];
        // Triangular current pulse out of the node (into ground).
        let wave = Waveform::Pwl(vec![
            (0.0, 0.0),
            (t0, 0.0),
            (t0 + duration / 2.0, peak_amps),
            (t0 + duration, 0.0),
        ]);
        self.circuit
            .isource(pulsar_analog::Circuit::GROUND, node, wave)
    }

    /// Holds the path input statically at logic 0 or 1 (for on-line
    /// monitoring scenarios where the block is quiescent).
    ///
    /// # Errors
    ///
    /// Propagates waveform-replacement failures (never occurs for paths
    /// built by [`BuiltPath::new`]).
    pub fn hold_input(&mut self, value: bool) -> Result<(), Error> {
        let v = if value { self.vdd } else { 0.0 };
        self.circuit
            .set_vsource_wave(self.input_src, Waveform::dc(v))
    }

    /// Runs a transient with the current stimuli and returns the result
    /// for custom probing. Every node is captured.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn run_transient(&mut self, cfg: Option<&TranConfig>) -> Result<TranResult, Error> {
        let cfg_default = self.default_cfg(0.0);
        let cfg = cfg.unwrap_or(&cfg_default);
        self.sim(cfg, &TraceCapture::All)
    }

    /// Quiescent supply current with the path input held at `input_high`:
    /// the I_DDQ observable (paper §2: bridges change "the static and
    /// dynamic current"). Healthy static CMOS draws essentially nothing;
    /// a bridge between fighting drivers draws milliamps.
    ///
    /// # Errors
    ///
    /// Propagates DC-solver errors.
    pub fn quiescent_current(&mut self, input_high: bool) -> Result<f64, Error> {
        self.hold_input(input_high)?;
        let dc = if self.reuse_workspace {
            self.circuit.dc_op_with(0.0, &mut self.workspace)?
        } else {
            self.circuit.dc_op()?
        };
        dc.source_current(&self.circuit, self.vdd_source)
    }

    /// Overrides the default transient step (default 4 ps).
    pub fn set_step(&mut self, seconds: f64) {
        self.step = seconds;
    }

    /// Switches the default simulations to adaptive (LTE-controlled)
    /// stepping with the current step as the maximum. Typically 2–4×
    /// faster on quiescent stretches at equal measured pulse widths; the
    /// `ablation/step` bench quantifies the trade.
    pub fn set_adaptive(&mut self, on: bool) {
        self.adaptive = on;
    }

    /// Enables or disables solver-workspace reuse (default: enabled).
    ///
    /// With reuse on, every simulation this path runs goes through one
    /// per-path [`SolverWorkspace`], recycling the MNA matrix, Newton
    /// scratch and transient buffers across calls — bit-identical results,
    /// no per-step allocation. With reuse off, simulations run through the
    /// allocation-per-step baseline engine; this exists as the reference
    /// configuration for the `bench_hotpath` speedup measurements.
    pub fn set_workspace_reuse(&mut self, on: bool) {
        self.reuse_workspace = on;
    }

    /// Sets how much waveform data the default measurement runs record;
    /// see [`CapturePolicy`]. Width and delay numbers are bit-identical
    /// across policies — only the set of recorded traces (and therefore
    /// [`PulseOutcome::stage_widths`]) changes.
    pub fn set_capture_policy(&mut self, policy: CapturePolicy) {
        self.capture_policy = policy;
    }

    /// The currently configured capture policy.
    pub fn capture_policy(&self) -> CapturePolicy {
        self.capture_policy
    }

    /// Selects the linear-solver engine used inside Newton iterations for
    /// this path's workspace-backed simulations: [`SolverMode::Auto`]
    /// (sparse above the crossover dimension, dense below — the default),
    /// [`SolverMode::ForceDense`], or [`SolverMode::ForceSparse`]. The
    /// baseline engine ([`BuiltPath::set_workspace_reuse`] off) is always
    /// dense regardless of this setting.
    pub fn set_solver_mode(&mut self, mode: SolverMode) {
        self.workspace.set_solver_mode(mode);
    }

    /// The currently configured solver mode.
    pub fn solver_mode(&self) -> SolverMode {
        self.workspace.solver_mode()
    }

    /// Opts in to modified-Newton Jacobian reuse on the sparse path:
    /// while the residual keeps contracting, the previous LU factors are
    /// reused instead of refactoring every iteration; on stall the solver
    /// refactors and retries. Off (the default) every iteration
    /// refactors, which is plain Newton. Ignored on the dense path.
    pub fn set_jacobian_reuse(&mut self, on: bool) {
        self.workspace.set_jacobian_reuse(on);
    }

    /// Runs the sparse symbolic analysis (fill-reducing ordering +
    /// elimination structure) for this path's circuit now, and returns a
    /// shareable handle to it, or `None` when the sparse path is not
    /// engaged (below crossover, forced dense, or structurally singular).
    /// Studies prime one instance and [`BuiltPath::adopt_symbolic`] the
    /// result into every other instance of the same topology so the
    /// analysis runs exactly once per topology.
    pub fn prime_symbolic(&mut self) -> Option<SymbolicCache> {
        self.workspace.prime_symbolic(&self.circuit)
    }

    /// Installs a symbolic factorization produced by
    /// [`BuiltPath::prime_symbolic`] on another instance of the *same*
    /// circuit topology. Adopting a cache whose topology key does not
    /// match this path's circuit is safe — it is simply re-analyzed on
    /// first use.
    pub fn adopt_symbolic(&mut self, cache: &SymbolicCache) {
        self.workspace.adopt_symbolic(cache);
    }

    /// Enables or disables DC warm starting for this path's solves.
    ///
    /// Intended for resistance sweeps ([`BuiltPath::set_fault_resistance`]
    /// between runs): consecutive sweep points have nearly identical
    /// operating points, so Newton seeded from the previous DC solution
    /// converges in a few iterations. **Not bit-exact** — the operating
    /// point matches a cold solve only within solver tolerances (≈1 µV);
    /// leave it off (the default) where exact reproducibility across call
    /// orders matters.
    pub fn set_dc_warm_start(&mut self, on: bool) {
        self.workspace.enable_dc_warm_start(on);
    }

    /// Installs a per-run observability [`Recorder`] on this path's
    /// workspace: every subsequent solve records its counters, spans and
    /// histograms there (in addition to the process-wide registry). The
    /// default recorder is disabled and costs one branch per
    /// instrumentation point. Recording never changes the arithmetic —
    /// waveforms are bit-identical with the recorder on or off.
    pub fn set_recorder(&mut self, rec: Recorder) {
        self.workspace.set_recorder(rec);
    }

    /// Installs a cooperative cancellation token on this path's solver
    /// workspace: every subsequent transient solve checks it once per
    /// accepted time point and aborts with a cancellation error when it
    /// trips. Cancellation never corrupts state — the workspace stays
    /// reusable for the next (re-)run.
    pub fn set_cancel(&mut self, token: CancelToken) {
        self.workspace.set_cancel_token(token);
    }

    /// Applies the retry-escalation ladder used after Newton
    /// non-convergence: each `level` halves the default step (down to
    /// 1/64 of nominal) and doubles the Newton iteration budget; from
    /// level 2 up, default simulations also switch to fixed-step backward
    /// Euler — maximally damped, first order, the configuration of last
    /// resort. `step_scale` perturbs the tightened step multiplicatively
    /// (clamped to `[0.5, 1.0]`) so a retry cannot alias against the same
    /// pathological breakpoint spacing that broke the first attempt;
    /// callers derive it from the sample's seeded RNG stream to keep
    /// retries deterministic. Level 0 with scale 1.0 restores nominal
    /// behavior.
    pub fn set_robustness(&mut self, level: u32, step_scale: f64) {
        // Escalated retries must not inherit a possibly-stale Jacobian:
        // suspend reuse (and drop cached factors) for the whole retry, so
        // every iteration is exact Newton; level 0 restores the user's
        // setting.
        self.workspace.suspend_jacobian_reuse(level > 0);
        self.robustness = level.min(6);
        self.step_scale = if step_scale.is_finite() {
            step_scale.clamp(0.5, 1.0)
        } else {
            1.0
        };
    }

    fn rest_level(&self, polarity: Polarity) -> f64 {
        match polarity {
            Polarity::PositiveGoing => 0.0,
            Polarity::NegativeGoing => self.vdd,
        }
    }

    fn default_cfg(&self, extra: f64) -> TranConfig {
        let per_stage = 0.8e-9;
        let stop = self.t_start + extra + per_stage * self.stage_outputs.len() as f64 + 1e-9;
        let level = self.robustness;
        if level == 0 {
            return if self.adaptive {
                // Cap the adaptive controller at 8x the fixed step; it
                // falls back to fine steps around the pulse edges on its
                // own.
                TranConfig::adaptive(self.step * 8.0, stop)
            } else {
                TranConfig::new(self.step, stop)
            };
        }
        // Escalated retry: fixed stepping (the adaptive controller is
        // part of what may have failed), tightened per the ladder.
        let step = self.step * self.step_scale / (1u64 << level) as f64;
        let mut cfg = if level >= 2 {
            TranConfig::with_integrator(step, stop, Integrator::BackwardEuler)
        } else {
            TranConfig::new(step, stop)
        };
        cfg.max_newton = 60usize.saturating_mul(1 << level.min(4));
        cfg
    }

    /// Polarity expected at the output for an input pulse of `polarity`.
    pub fn output_polarity(&self, polarity: Polarity) -> Polarity {
        if self.inverts {
            polarity.inverted()
        } else {
            polarity
        }
    }

    /// Injects a pulse of width `w_in` (measured at 50 % of VDD) and the
    /// given polarity at the path input, simulates, and measures the
    /// surviving pulse at the output — and, under the default
    /// [`CapturePolicy::StageOutputs`], at every intermediate stage.
    ///
    /// Pass a custom `cfg` to control step/stop; `None` uses a window
    /// sized from the path length.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors ([`Error::NoConvergence`], ...).
    pub fn propagate_pulse(
        &mut self,
        w_in: f64,
        polarity: Polarity,
        cfg: Option<&TranConfig>,
    ) -> Result<PulseOutcome, Error> {
        // The capture policy decides which columns the run materializes;
        // the solve itself is identical either way.
        let capture = match self.capture_policy {
            CapturePolicy::StageOutputs => TraceCapture::Nodes(self.stage_outputs.clone()),
            CapturePolicy::MeasurementsOnly => TraceCapture::Nodes(vec![self.output()]),
        };
        let (outcome, _) = self.pulse_run(w_in, polarity, cfg, &capture)?;
        Ok(outcome)
    }

    /// Width-only fast path: like [`BuiltPath::propagate_pulse`] under
    /// [`CapturePolicy::MeasurementsOnly`] (regardless of the configured
    /// policy), returning just the output pulse width. This is what
    /// Monte Carlo width studies run per sample.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors ([`Error::NoConvergence`], ...).
    pub fn pulse_width_only(
        &mut self,
        w_in: f64,
        polarity: Polarity,
        cfg: Option<&TranConfig>,
    ) -> Result<f64, Error> {
        let capture = TraceCapture::Nodes(vec![self.output()]);
        let (outcome, _) = self.pulse_run(w_in, polarity, cfg, &capture)?;
        Ok(outcome.output_width)
    }

    /// Like [`BuiltPath::propagate_pulse`] but also returns the full
    /// transient result (every node captured) for waveform inspection /
    /// plotting.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn propagate_pulse_traced(
        &mut self,
        w_in: f64,
        polarity: Polarity,
        cfg: Option<&TranConfig>,
    ) -> Result<(PulseOutcome, TranResult), Error> {
        self.pulse_run(w_in, polarity, cfg, &TraceCapture::All)
    }

    /// Shared pulse-propagation engine behind [`BuiltPath::propagate_pulse`]
    /// (stage-output capture) and [`BuiltPath::propagate_pulse_traced`]
    /// (full capture).
    fn pulse_run(
        &mut self,
        w_in: f64,
        polarity: Polarity,
        cfg: Option<&TranConfig>,
        capture: &TraceCapture,
    ) -> Result<(PulseOutcome, TranResult), Error> {
        if !(w_in.is_finite() && w_in > 0.0) {
            return Err(Error::InvalidParameter {
                element: "stimulus",
                parameter: "w_in",
                value: w_in,
            });
        }
        let rest = self.rest_level(polarity);
        // Pulse excursion: to the opposite rail and back (negative for a
        // high-resting kind-h pulse).
        let delta = (self.vdd - rest) - rest;
        let wave = pulse_wave(rest, delta, self.t_start, self.input_edge, w_in);
        self.circuit.set_vsource_wave(self.input_src, wave)?;

        let cfg_default = self.default_cfg(w_in);
        let cfg = cfg.unwrap_or(&cfg_default);
        let res = self.sim(cfg, capture)?;

        let vth = self.vdd / 2.0;
        // Per-stage widths need the stage traces; a slim capture
        // (measurements-only) skips them instead of guessing.
        let have_stages = match capture {
            TraceCapture::All => true,
            TraceCapture::Nodes(nodes) => self.stage_outputs.iter().all(|n| nodes.contains(n)),
        };
        let mut stage_widths = Vec::new();
        if have_stages {
            stage_widths.reserve(self.stage_outputs.len());
            let mut pol = polarity;
            for &n in &self.stage_outputs {
                pol = pol.inverted(); // every library cell inverts
                stage_widths.push(res.trace(n).widest_pulse_width(vth, pol));
            }
        }
        let out_pol = self.output_polarity(polarity);
        let out_trace = res.trace(self.output());
        let out_rest = self.rest_level(out_pol);
        let outcome = PulseOutcome {
            output_width: out_trace.widest_pulse_width(vth, out_pol),
            peak_fraction: (out_trace.peak_excursion(out_rest, out_pol) / self.vdd).clamp(0.0, 1.0),
            stage_widths,
        };
        Ok((outcome, res))
    }

    /// Applies a single input transition and measures the propagation
    /// delay to the output at `vdd/2`.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn propagate_transition(
        &mut self,
        input_edge: Edge,
        cfg: Option<&TranConfig>,
    ) -> Result<TransitionOutcome, Error> {
        let (v1, v2) = match input_edge {
            Edge::Rising => (0.0, self.vdd),
            Edge::Falling => (self.vdd, 0.0),
        };
        self.circuit.set_vsource_wave(
            self.input_src,
            Waveform::step(v1, v2, self.t_start, self.input_edge),
        )?;

        let cfg_default = self.default_cfg(0.0);
        let cfg = cfg.unwrap_or(&cfg_default);
        // The delay measurement reads only the input and output traces.
        let capture = TraceCapture::Nodes(vec![self.input, self.output()]);
        let res = self.sim(cfg, &capture)?;

        let output_edge = if self.inverts {
            input_edge.inverted()
        } else {
            input_edge
        };
        let vth = self.vdd / 2.0;
        let tin = res.trace(self.input);
        let tout = res.trace(self.output());
        let delay = propagation_delay(
            &tin,
            input_edge,
            &tout,
            output_edge,
            vth,
            self.t_start * 0.5,
        );
        Ok(TransitionOutcome { delay, output_edge })
    }
}

/// Batched twin of [`BuiltPath::pulse_width_only`]: stages the stimulus
/// on K perturbed paths, advances all of them through one
/// [`BatchWorkspace`] lockstep pass, and measures the surviving output
/// pulse width per path.
///
/// Returns one entry per path in order. `Some(width)` is bit-identical
/// to what `paths[i].pulse_width_only(w_ins[i], polarity, None)` would
/// return; `None` means the lane could not stay on the batched fast
/// path (invalid width, baseline/adaptive simulation mode, topology or
/// configuration mismatch, Newton trouble, cancellation) — re-run that
/// sample on the scalar path, which also surfaces the scalar error.
///
/// # Panics
///
/// Panics if `paths` and `w_ins` disagree in length.
pub fn pulse_width_only_batch(
    paths: &mut [&mut BuiltPath],
    w_ins: &[f64],
    polarity: Polarity,
    bw: &mut BatchWorkspace,
) -> Vec<Option<f64>> {
    assert_eq!(
        paths.len(),
        w_ins.len(),
        "one stimulus width per batched path"
    );
    let k = paths.len();
    let mut widths: Vec<Option<f64>> = vec![None; k];
    if k == 0 {
        return widths;
    }

    // Stage the stimulus and per-lane config on every eligible path —
    // the same preamble `pulse_run` executes before simulating. A path
    // that cannot take the batched engine (invalid width surfaces the
    // scalar `InvalidParameter`; the baseline engine and adaptive
    // stepping are scalar-only by design) stays `None` for a scalar
    // re-run.
    let mut cfgs: Vec<Option<TranConfig>> = vec![None; k];
    for (i, p) in paths.iter_mut().enumerate() {
        let w_in = w_ins[i];
        if !(w_in.is_finite() && w_in > 0.0 && p.reuse_workspace) || p.adaptive {
            continue;
        }
        let rest = p.rest_level(polarity);
        let delta = (p.vdd - rest) - rest;
        let wave = pulse_wave(rest, delta, p.t_start, p.input_edge, w_in);
        if p.circuit.set_vsource_wave(p.input_src, wave).is_err() {
            continue;
        }
        cfgs[i] = Some(p.default_cfg(w_in));
    }

    // The shared capture column is the reference lane's output node;
    // a lane whose output landed on a different node id cannot share
    // the column (its topology differs anyway and would eject).
    let Some(first) = cfgs.iter().position(Option::is_some) else {
        return widths;
    };
    let out_node = paths[first].output();
    let lane_idx: Vec<usize> = (0..k)
        .filter(|&i| cfgs[i].is_some() && paths[i].output() == out_node)
        .collect();

    let mut lanes: Vec<BatchLane<'_>> = Vec::with_capacity(lane_idx.len());
    {
        // Split-borrow each path into (shared circuit, exclusive
        // workspace); the iterator hands out disjoint `&mut BuiltPath`s.
        let mut it = paths.iter_mut().enumerate();
        for &i in &lane_idx {
            let (ckt, ws) = loop {
                let (j, p) = it.next().expect("lane indices are in range");
                if j == i {
                    let BuiltPath {
                        circuit, workspace, ..
                    } = &mut **p;
                    break (&*circuit, workspace);
                }
            };
            lanes.push(BatchLane {
                ckt,
                ws,
                cfg: cfgs[i].clone().expect("lane indices point at staged cfgs"),
            });
        }
    }

    let outs = bw.transient_batch(&mut lanes, &TraceCapture::Nodes(vec![out_node]));
    drop(lanes);
    for (&i, out) in lane_idx.iter().zip(outs) {
        if let BatchOutcome::Done(res) = out {
            let p = &paths[i];
            let vth = p.vdd / 2.0;
            let out_pol = p.output_polarity(polarity);
            widths[i] = Some(res.trace(out_node).widest_pulse_width(vth, out_pol));
        }
    }
    widths
}

/// Builds a PWL pulse whose width at the 50 % level is exactly `w50`.
///
/// With edge time `edge`, the flat top is `w50 - edge`; if the requested
/// width is smaller than one edge the pulse degenerates to a triangle with
/// matched 50 % width.
fn pulse_wave(rest: f64, peak: f64, t0: f64, edge: f64, w50: f64) -> Waveform {
    let (rise, flat) = if w50 >= edge {
        (edge, w50 - edge)
    } else {
        (w50, 0.0)
    };
    let fall = rise;
    Waveform::Pwl(vec![
        (0.0, rest),
        (t0, rest),
        (t0 + rise, rest + peak),
        (t0 + rise + flat, rest + peak),
        (t0 + rise + flat + fall, rest),
    ])
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    fn techs(n: usize) -> Vec<Tech> {
        vec![Tech::generic_180nm(); n]
    }

    #[test]
    fn robustness_ladder_preserves_measurements() {
        let spec = PathSpec::inverter_chain(3);
        let mut p = BuiltPath::new(&spec, &PathFault::None, &techs(3));
        let nominal = p
            .propagate_pulse(400e-12, Polarity::PositiveGoing, None)
            .unwrap()
            .output_width;
        for (level, scale) in [(1, 0.8), (2, 0.95), (3, 0.5)] {
            p.set_robustness(level, scale);
            let w = p
                .propagate_pulse(400e-12, Polarity::PositiveGoing, None)
                .unwrap()
                .output_width;
            assert!(
                (w - nominal).abs() < 15e-12,
                "escalated config distorts the measurement at level {level}: {w:e} vs {nominal:e}"
            );
        }
        // Level 0 / scale 1.0 restores the nominal configuration exactly.
        p.set_robustness(0, 1.0);
        let back = p
            .propagate_pulse(400e-12, Polarity::PositiveGoing, None)
            .unwrap()
            .output_width;
        assert_eq!(back, nominal);
    }

    #[test]
    fn measurements_only_capture_is_bit_identical_on_the_output() {
        let spec = PathSpec::inverter_chain(3);
        let mut p = BuiltPath::new(&spec, &PathFault::None, &techs(3));
        let full = p
            .propagate_pulse(400e-12, Polarity::PositiveGoing, None)
            .unwrap();
        assert_eq!(full.stage_widths.len(), 3);

        p.set_capture_policy(CapturePolicy::MeasurementsOnly);
        assert_eq!(p.capture_policy(), CapturePolicy::MeasurementsOnly);
        let slim = p
            .propagate_pulse(400e-12, Polarity::PositiveGoing, None)
            .unwrap();
        assert!(slim.stage_widths.is_empty());
        assert_eq!(slim.output_width.to_bits(), full.output_width.to_bits());
        assert_eq!(slim.peak_fraction.to_bits(), full.peak_fraction.to_bits());

        // The width-only fast path slims the capture regardless of the
        // configured policy, and still matches bit for bit.
        p.set_capture_policy(CapturePolicy::StageOutputs);
        let w = p
            .pulse_width_only(400e-12, Polarity::PositiveGoing, None)
            .unwrap();
        assert_eq!(w.to_bits(), full.output_width.to_bits());

        // As does the preserved baseline engine.
        p.set_workspace_reuse(false);
        let wb = p
            .pulse_width_only(400e-12, Polarity::PositiveGoing, None)
            .unwrap();
        assert_eq!(wb.to_bits(), full.output_width.to_bits());
    }

    #[test]
    fn robustness_inputs_are_sanitized() {
        let spec = PathSpec::inverter_chain(2);
        let mut p = BuiltPath::new(&spec, &PathFault::None, &techs(2));
        // Degenerate scale and absurd level must clamp, not break the sim.
        p.set_robustness(999, f64::NAN);
        assert!(p
            .propagate_pulse(300e-12, Polarity::PositiveGoing, None)
            .is_ok());
    }

    #[test]
    fn pulse_wave_width_is_exact_at_half_level() {
        for w in [50e-12, 200e-12, 600e-12] {
            let wave = pulse_wave(0.0, 1.8, 1e-9, 80e-12, w);
            // Find 0.9 V crossings analytically from the PWL points.
            let samples: Vec<(f64, f64)> = (0..4000)
                .map(|i| (i as f64 * 1e-12, wave.value_at(i as f64 * 1e-12)))
                .collect();
            let mut up = None;
            let mut down = None;
            for p in samples.windows(2) {
                if p[0].1 < 0.9 && p[1].1 >= 0.9 && up.is_none() {
                    up = Some(p[1].0);
                }
                if p[0].1 > 0.9 && p[1].1 <= 0.9 {
                    down = Some(p[1].0);
                }
            }
            let (u, d) = (up.unwrap(), down.unwrap());
            assert!(
                ((d - u) - w).abs() < 3e-12,
                "requested {w:e}, measured {:e}",
                d - u
            );
        }
    }

    #[test]
    fn fault_free_chain_propagates_transition() {
        let spec = PathSpec::inverter_chain(3);
        let mut p = BuiltPath::new(&spec, &PathFault::None, &techs(3));
        let out = p.propagate_transition(Edge::Rising, None).unwrap();
        let d = out.delay.expect("fault-free path must switch");
        assert!(
            d > 0.0 && d < 2e-9,
            "3-stage delay {d:e} out of plausible range"
        );
        assert_eq!(out.output_edge, Edge::Falling); // odd inversions
    }

    #[test]
    fn both_pulse_kinds_propagate() {
        // Regression: the high-resting kind-h pulse must actually swing
        // to ground (its amplitude was once computed as zero).
        let spec = PathSpec::inverter_chain(4);
        for pol in [Polarity::PositiveGoing, Polarity::NegativeGoing] {
            let mut p = BuiltPath::new(&spec, &PathFault::None, &techs(4));
            let out = p.propagate_pulse(500e-12, pol, None).unwrap();
            assert!(
                (out.output_width - 500e-12).abs() < 120e-12,
                "{pol:?}: expected ~500 ps at the output, got {:e}",
                out.output_width
            );
        }
    }

    #[test]
    fn fault_free_chain_propagates_wide_pulse() {
        let spec = PathSpec::inverter_chain(3);
        let mut p = BuiltPath::new(&spec, &PathFault::None, &techs(3));
        let out = p
            .propagate_pulse(800e-12, Polarity::PositiveGoing, None)
            .unwrap();
        assert!(!out.dampened());
        assert!(
            (out.output_width - 800e-12).abs() < 150e-12,
            "wide pulse should survive nearly intact, got {:e}",
            out.output_width
        );
        assert!(out.peak_fraction > 0.95);
    }

    #[test]
    fn narrow_pulse_is_dampened_even_fault_free() {
        let spec = PathSpec::inverter_chain(5);
        let mut p = BuiltPath::new(&spec, &PathFault::None, &techs(5));
        let out = p
            .propagate_pulse(30e-12, Polarity::PositiveGoing, None)
            .unwrap();
        assert!(
            out.dampened(),
            "a 30 ps pulse cannot cross 5 loaded stages, got {:e}",
            out.output_width
        );
    }

    #[test]
    fn internal_rop_slows_one_edge_only() {
        let spec = PathSpec::inverter_chain(3);
        let fault = PathFault::InternalRop {
            stage: 1,
            site: RopSite::PullUp,
            ohms: 20e3,
        };
        let mut faulty = BuiltPath::new(&spec, &fault, &techs(3));
        let mut clean = BuiltPath::new(&spec, &PathFault::None, &techs(3));

        // Stage 1's rising output is exercised by a rising PI (two
        // inversions upstream of stage 1's output).
        let d_clean_r = clean
            .propagate_transition(Edge::Rising, None)
            .unwrap()
            .delay
            .unwrap();
        let d_fault_r = faulty
            .propagate_transition(Edge::Rising, None)
            .unwrap()
            .delay
            .unwrap();
        assert!(
            d_fault_r > d_clean_r + 100e-12,
            "pull-up ROP must slow the sensitized edge: clean {d_clean_r:e}, faulty {d_fault_r:e}"
        );

        // The opposite input edge exercises stage 1's falling output: the
        // pull-up ROP must leave it (nearly) untouched.
        let d_clean_f = clean
            .propagate_transition(Edge::Falling, None)
            .unwrap()
            .delay
            .unwrap();
        let d_fault_f = faulty
            .propagate_transition(Edge::Falling, None)
            .unwrap()
            .delay
            .unwrap();
        assert!(
            (d_fault_f - d_clean_f).abs() < 60e-12,
            "unaffected edge moved too much: clean {d_clean_f:e}, faulty {d_fault_f:e}"
        );
    }

    #[test]
    fn internal_rop_dampens_pulse() {
        let spec = PathSpec::paper_chain();
        let fault = PathFault::InternalRop {
            stage: 1,
            site: RopSite::PullUp,
            ohms: 8e3,
        };
        let mut faulty = BuiltPath::new(&spec, &fault, &techs(7));
        let mut clean = BuiltPath::new(&spec, &PathFault::None, &techs(7));

        let w = 500e-12;
        let wc = clean
            .propagate_pulse(w, Polarity::PositiveGoing, None)
            .unwrap();
        let wf = faulty
            .propagate_pulse(w, Polarity::PositiveGoing, None)
            .unwrap();
        assert!(!wc.dampened(), "fault-free path must pass the pulse");
        assert!(
            wf.output_width < wc.output_width - 50e-12 || wf.dampened(),
            "faulty path must visibly shrink the pulse: clean {:e}, faulty {:e}",
            wc.output_width,
            wf.output_width
        );
    }

    #[test]
    fn external_rop_affects_both_edges() {
        let spec = PathSpec::paper_chain();
        let fault = PathFault::ExternalRop {
            stage: 1,
            ohms: 20e3,
        };
        let mut faulty = BuiltPath::new(&spec, &fault, &techs(7));
        let mut clean = BuiltPath::new(&spec, &PathFault::None, &techs(7));

        for e in [Edge::Rising, Edge::Falling] {
            let dc = clean.propagate_transition(e, None).unwrap().delay.unwrap();
            let df = faulty.propagate_transition(e, None).unwrap().delay.unwrap();
            assert!(
                df > dc + 80e-12,
                "external ROP must slow {e:?} transitions: clean {dc:e}, faulty {df:e}"
            );
        }
    }

    #[test]
    fn bridge_delays_opposing_transition() {
        let spec = PathSpec::paper_chain();
        // Aggressor low fights the victim's rising output (stage 1 output
        // rises when the PI rises: two inversions upstream).
        let fault = PathFault::Bridge {
            stage: 1,
            ohms: 3e3,
            aggressor_high: false,
        };
        let mut faulty = BuiltPath::new(&spec, &fault, &techs(7));
        let mut clean = BuiltPath::new(&spec, &PathFault::None, &techs(7));

        let dc = clean
            .propagate_transition(Edge::Rising, None)
            .unwrap()
            .delay
            .unwrap();
        let df = faulty
            .propagate_transition(Edge::Rising, None)
            .unwrap()
            .delay
            .unwrap();
        assert!(
            df > dc,
            "bridge must add delay: clean {dc:e}, faulty {df:e}"
        );
    }

    #[test]
    fn sweep_resistance_without_rebuilding() {
        let spec = PathSpec::paper_chain();
        let fault = PathFault::ExternalRop {
            stage: 1,
            ohms: 1e3,
        };
        let mut p = BuiltPath::new(&spec, &fault, &techs(7));
        let mut widths = Vec::new();
        for r in [1e3, 8e3, 30e3] {
            p.set_fault_resistance(r).unwrap();
            widths.push(
                p.propagate_pulse(500e-12, Polarity::PositiveGoing, None)
                    .unwrap()
                    .output_width,
            );
        }
        // The paper's "behavior 1": for a pulse much wider than the
        // degraded transition time the width is essentially preserved
        // (allow a couple ps of numeric wobble); past the crossover the
        // pulse collapses.
        assert!(
            widths[1] <= widths[0] + 3e-12 && widths[2] <= widths[1] + 3e-12,
            "output width must not grow with resistance: {widths:?}"
        );
        assert!(
            widths[2] < widths[0] - 100e-12,
            "30 kΩ must heavily dampen the pulse: {widths:?}"
        );
    }

    #[test]
    fn batched_widths_match_scalar_bitwise() {
        let spec = PathSpec::inverter_chain(3);
        let fault = PathFault::ExternalRop {
            stage: 1,
            ohms: 1e3,
        };
        let rs = [1e3, 4e3, 9e3, 16e3];
        // Per-lane stimulus widths: each lane gets its own stop time.
        let w_ins = [380e-12, 420e-12, 460e-12, 500e-12];

        let mut scalar = Vec::new();
        for (&r, &w) in rs.iter().zip(w_ins.iter()) {
            let mut p = BuiltPath::new(&spec, &fault, &techs(3));
            p.set_fault_resistance(r).unwrap();
            scalar.push(
                p.pulse_width_only(w, Polarity::PositiveGoing, None)
                    .unwrap(),
            );
        }

        let mut paths: Vec<BuiltPath> = rs
            .iter()
            .map(|&r| {
                let mut p = BuiltPath::new(&spec, &fault, &techs(3));
                p.set_fault_resistance(r).unwrap();
                p
            })
            .collect();
        let mut refs: Vec<&mut BuiltPath> = paths.iter_mut().collect();
        let mut bw = BatchWorkspace::new();
        let widths = pulse_width_only_batch(&mut refs, &w_ins, Polarity::PositiveGoing, &mut bw);
        for (i, w) in widths.iter().enumerate() {
            let w = w.unwrap_or_else(|| panic!("lane {i} must stay batched"));
            assert_eq!(
                w.to_bits(),
                scalar[i].to_bits(),
                "lane {i}: batched {w:e} vs scalar {:e}",
                scalar[i]
            );
        }
    }

    #[test]
    fn batched_invalid_width_lane_is_none_siblings_survive() {
        let spec = PathSpec::inverter_chain(3);
        let mut a = BuiltPath::new(&spec, &PathFault::None, &techs(3));
        let mut b = BuiltPath::new(&spec, &PathFault::None, &techs(3));
        let scalar = a
            .pulse_width_only(420e-12, Polarity::PositiveGoing, None)
            .unwrap();
        let mut refs: Vec<&mut BuiltPath> = vec![&mut a, &mut b];
        let mut bw = BatchWorkspace::new();
        let widths = pulse_width_only_batch(
            &mut refs,
            &[420e-12, f64::NAN],
            Polarity::PositiveGoing,
            &mut bw,
        );
        assert_eq!(widths[0].map(f64::to_bits), Some(scalar.to_bits()));
        assert!(widths[1].is_none(), "invalid width re-runs scalar");
    }

    #[test]
    fn batched_baseline_engine_paths_fall_back_to_scalar() {
        let spec = PathSpec::inverter_chain(2);
        let mut p = BuiltPath::new(&spec, &PathFault::None, &techs(2));
        p.set_workspace_reuse(false);
        let mut refs: Vec<&mut BuiltPath> = vec![&mut p];
        let mut bw = BatchWorkspace::new();
        let widths =
            pulse_width_only_batch(&mut refs, &[400e-12], Polarity::PositiveGoing, &mut bw);
        assert!(widths[0].is_none(), "baseline engine is scalar-only");
    }

    #[test]
    fn fault_free_path_rejects_resistance_updates() {
        let spec = PathSpec::inverter_chain(2);
        let mut p = BuiltPath::new(&spec, &PathFault::None, &techs(2));
        assert!(p.set_fault_resistance(1e3).is_err());
    }

    #[test]
    fn invalid_pulse_width_is_rejected() {
        let spec = PathSpec::inverter_chain(2);
        let mut p = BuiltPath::new(&spec, &PathFault::None, &techs(2));
        assert!(p
            .propagate_pulse(-1.0, Polarity::PositiveGoing, None)
            .is_err());
        assert!(p
            .propagate_pulse(f64::NAN, Polarity::PositiveGoing, None)
            .is_err());
    }

    #[test]
    #[should_panic(expected = "external ROP needs a downstream stage")]
    fn external_rop_on_last_stage_panics() {
        let spec = PathSpec::inverter_chain(3);
        let fault = PathFault::ExternalRop {
            stage: 2,
            ohms: 1e3,
        };
        BuiltPath::new(&spec, &fault, &techs(3));
    }

    #[test]
    #[should_panic(expected = "one Tech sample per stage")]
    fn tech_count_mismatch_panics() {
        let spec = PathSpec::inverter_chain(3);
        BuiltPath::new(&spec, &PathFault::None, &techs(2));
    }

    #[test]
    fn bridge_shows_up_in_the_quiescent_current() {
        let spec = PathSpec::paper_chain();
        let mut clean = BuiltPath::new(&spec, &PathFault::None, &techs(7));
        let fault = PathFault::Bridge {
            stage: 1,
            ohms: 3e3,
            aggressor_high: false,
        };
        let mut faulty = BuiltPath::new(&spec, &fault, &techs(7));

        // Victim output high (PI high → stage 1 high) vs aggressor low:
        // the fight draws static current.
        let i_clean = clean.quiescent_current(true).unwrap();
        let i_fight = faulty.quiescent_current(true).unwrap();
        assert!(
            i_clean.abs() < 1e-6,
            "healthy CMOS is quiescent, got {i_clean:e}"
        );
        assert!(
            i_fight > 50e-6,
            "a 3 kΩ bridge must draw visible static current, got {i_fight:e}"
        );
        // The non-activating vector draws (almost) nothing: IDDQ needs
        // the right vector, like any test.
        let i_idle = faulty.quiescent_current(false).unwrap();
        assert!(
            i_idle < i_fight / 10.0,
            "idle vector: {i_idle:e} vs fight {i_fight:e}"
        );
    }

    #[test]
    fn opens_are_invisible_to_iddq() {
        let spec = PathSpec::paper_chain();
        let fault = PathFault::ExternalRop {
            stage: 1,
            ohms: 20e3,
        };
        let mut faulty = BuiltPath::new(&spec, &fault, &techs(7));
        for level in [false, true] {
            let i = faulty.quiescent_current(level).unwrap();
            assert!(
                i.abs() < 1e-6,
                "a series open draws no static current, got {i:e}"
            );
        }
    }

    #[test]
    fn adaptive_stepping_matches_fixed_step_measurements() {
        let spec = PathSpec::paper_chain();
        let fault = PathFault::ExternalRop {
            stage: 1,
            ohms: 8e3,
        };
        let mut fixed = BuiltPath::new(&spec, &fault, &techs(7));
        let mut adaptive = BuiltPath::new(&spec, &fault, &techs(7));
        adaptive.set_adaptive(true);

        let wf = fixed
            .propagate_pulse(400e-12, Polarity::PositiveGoing, None)
            .unwrap();
        let wa = adaptive
            .propagate_pulse(400e-12, Polarity::PositiveGoing, None)
            .unwrap();
        assert!(
            (wf.output_width - wa.output_width).abs() < 12e-12,
            "adaptive width {:e} vs fixed {:e}",
            wa.output_width,
            wf.output_width
        );
        let df = fixed
            .propagate_transition(Edge::Rising, None)
            .unwrap()
            .delay
            .unwrap();
        let da = adaptive
            .propagate_transition(Edge::Rising, None)
            .unwrap()
            .delay
            .unwrap();
        assert!(
            (df - da).abs() < 8e-12,
            "adaptive delay {da:e} vs fixed {df:e}"
        );
    }

    #[test]
    fn internal_bridge_degrades_the_pulse() {
        // NAND2 at stage 1 with its stack node bridged to the output.
        let spec = PathSpec {
            stages: vec![
                CellKind::Inv,
                CellKind::Nand2,
                CellKind::Inv,
                CellKind::Inv,
                CellKind::Inv,
            ],
            fanout_loads: vec![0; 5],
        };
        let fault = PathFault::InternalBridge {
            stage: 1,
            ohms: 2e3,
        };
        let mut faulty = BuiltPath::new(&spec, &fault, &techs(5));
        let mut clean = BuiltPath::new(&spec, &PathFault::None, &techs(5));

        let w = 450e-12;
        let wc = clean
            .propagate_pulse(w, Polarity::PositiveGoing, None)
            .unwrap()
            .output_width;
        let wf = faulty
            .propagate_pulse(w, Polarity::PositiveGoing, None)
            .unwrap()
            .output_width;
        assert!(
            wf < wc - 20e-12,
            "internal bridge must shave the pulse: clean {wc:e}, faulty {wf:e}"
        );
        // Static logic still works above critical resistance.
        let d = faulty
            .propagate_transition(Edge::Rising, None)
            .unwrap()
            .delay;
        assert!(d.is_some(), "2 kΩ internal bridge should stay functional");
    }

    #[test]
    #[should_panic(expected = "internal bridge needs a stacked cell")]
    fn internal_bridge_on_inverter_panics() {
        let spec = PathSpec::inverter_chain(3);
        let fault = PathFault::InternalBridge {
            stage: 1,
            ohms: 2e3,
        };
        BuiltPath::new(&spec, &fault, &techs(3));
    }

    #[test]
    fn particle_strike_produces_an_output_transient() {
        let spec = PathSpec::inverter_chain(5);
        let mut p = BuiltPath::new(&spec, &PathFault::None, &techs(5));
        p.hold_input(false).unwrap();
        // Stage 1's output rests high (one inversion of the low input...
        // stage 0 output is high, stage 1 output low; strike stage 0,
        // whose high output a discharge pulse can flip).
        p.add_strike_source(0, 2.5e-3, 1e-9, 120e-12);
        let res = p.run_transient(None).unwrap();
        let vth = p.vdd() / 2.0;
        // The struck (high) node dips low...
        let struck = res.trace(p.stage_outputs()[0]);
        assert!(
            struck.min_value() < vth,
            "strike must dip the node, got {}",
            struck.min_value()
        );
        // ...and a transient reaches the path output (resting low after
        // five inversions of a low input? stage outputs alternate
        // H,L,H,L,H — the output rests high; the transient pulls it low).
        let out = res.trace(p.output());
        let w = out.widest_pulse_width(vth, Polarity::NegativeGoing);
        assert!(w > 0.0, "the SET must propagate to the output");
    }

    #[test]
    fn weak_strike_is_absorbed() {
        let spec = PathSpec::inverter_chain(5);
        let mut p = BuiltPath::new(&spec, &PathFault::None, &techs(5));
        p.hold_input(false).unwrap();
        p.add_strike_source(0, 0.15e-3, 1e-9, 60e-12);
        let res = p.run_transient(None).unwrap();
        let vth = p.vdd() / 2.0;
        let out = res.trace(p.output());
        assert_eq!(
            out.widest_pulse_width(vth, Polarity::NegativeGoing),
            0.0,
            "a sub-critical charge must be filtered"
        );
    }

    #[test]
    fn complex_gate_path_propagates_pulses() {
        // AOI21 and OAI21 on the path, sensitized through pin 0.
        let spec = PathSpec {
            stages: vec![
                CellKind::Inv,
                CellKind::Aoi21,
                CellKind::Oai21,
                CellKind::Inv,
            ],
            fanout_loads: vec![0; 4],
        };
        let mut p = BuiltPath::new(&spec, &PathFault::None, &techs(4));
        let d = p.propagate_transition(Edge::Rising, None).unwrap().delay;
        assert!(
            d.is_some(),
            "complex-gate path must be sensitized by construction"
        );
        let out = p
            .propagate_pulse(700e-12, Polarity::PositiveGoing, None)
            .unwrap();
        assert!(
            (out.output_width - 700e-12).abs() < 200e-12,
            "pulse through AOI/OAI: {:e}",
            out.output_width
        );
    }

    #[test]
    fn workspace_reuse_matches_baseline_engine_exactly() {
        // The workspace path (reused buffers, slim capture) must reproduce
        // the allocation-per-step baseline engine bit for bit, across a
        // resistance sweep on one instance.
        let spec = PathSpec::paper_chain();
        let fault = PathFault::ExternalRop {
            stage: 1,
            ohms: 8e3,
        };
        let mut reuse = BuiltPath::new(&spec, &fault, &techs(7));
        let mut baseline = BuiltPath::new(&spec, &fault, &techs(7));
        baseline.set_workspace_reuse(false);
        for r in [1e3, 8e3, 30e3] {
            reuse.set_fault_resistance(r).unwrap();
            baseline.set_fault_resistance(r).unwrap();
            let a = reuse
                .propagate_pulse(450e-12, Polarity::PositiveGoing, None)
                .unwrap();
            let b = baseline
                .propagate_pulse(450e-12, Polarity::PositiveGoing, None)
                .unwrap();
            assert_eq!(a.output_width, b.output_width, "at {r:e} Ω");
            assert_eq!(a.peak_fraction, b.peak_fraction, "at {r:e} Ω");
            assert_eq!(a.stage_widths, b.stage_widths, "at {r:e} Ω");
        }
        let da = reuse
            .propagate_transition(Edge::Rising, None)
            .unwrap()
            .delay;
        let db = baseline
            .propagate_transition(Edge::Rising, None)
            .unwrap()
            .delay;
        assert_eq!(da, db);
    }

    #[test]
    fn dc_warm_start_stays_within_solver_tolerance() {
        // Warm starting changes the Newton trajectory, not the answer:
        // across a bridge-resistance sweep, warm IDDQ and pulse widths
        // must track the cold solves within solver tolerances.
        let spec = PathSpec::paper_chain();
        let fault = PathFault::Bridge {
            stage: 1,
            ohms: 3e3,
            aggressor_high: false,
        };
        let mut warm = BuiltPath::new(&spec, &fault, &techs(7));
        let mut cold = BuiltPath::new(&spec, &fault, &techs(7));
        warm.set_dc_warm_start(true);
        for r in [2e3, 3e3, 5e3, 8e3] {
            warm.set_fault_resistance(r).unwrap();
            cold.set_fault_resistance(r).unwrap();
            let iw = warm.quiescent_current(true).unwrap();
            let ic = cold.quiescent_current(true).unwrap();
            assert!(
                (iw - ic).abs() < 1e-3 * ic.abs() + 1e-7,
                "warm IDDQ {iw:e} vs cold {ic:e} at {r:e} Ω"
            );
            let ww = warm
                .propagate_pulse(450e-12, Polarity::PositiveGoing, None)
                .unwrap()
                .output_width;
            let wc = cold
                .propagate_pulse(450e-12, Polarity::PositiveGoing, None)
                .unwrap()
                .output_width;
            assert!(
                (ww - wc).abs() < 2e-12,
                "warm width {ww:e} vs cold {wc:e} at {r:e} Ω"
            );
        }
    }

    #[test]
    fn try_new_rejects_non_physical_fault_resistance() {
        let spec = PathSpec::paper_chain();
        let n = spec.stages.len();
        for ohms in [0.0, -10.0, f64::NAN, f64::INFINITY] {
            let fault = PathFault::ExternalRop { stage: 1, ohms };
            let err = BuiltPath::try_new(&spec, &fault, &techs(n)).unwrap_err();
            match err {
                Error::InvalidParameter { parameter, .. } => assert_eq!(parameter, "ohms"),
                other => panic!("expected InvalidParameter for {ohms}, got {other:?}"),
            }
        }
    }

    #[test]
    fn try_new_rejects_out_of_range_stages() {
        let spec = PathSpec::paper_chain();
        let n = spec.stages.len();
        // An external ROP needs a downstream stage: the last stage is out.
        let fault = PathFault::ExternalRop {
            stage: n - 1,
            ohms: 10e3,
        };
        let err = BuiltPath::try_new(&spec, &fault, &techs(n)).unwrap_err();
        assert!(matches!(
            err,
            Error::InvalidParameter {
                parameter: "stage",
                ..
            }
        ));
        let fault = PathFault::InternalRop {
            stage: n,
            site: RopSite::PullUp,
            ohms: 10e3,
        };
        assert!(BuiltPath::try_new(&spec, &fault, &techs(n)).is_err());
    }

    #[test]
    fn try_new_rejects_tech_count_mismatch_and_accepts_valid_faults() {
        let spec = PathSpec::paper_chain();
        let n = spec.stages.len();
        let err = BuiltPath::try_new(&spec, &PathFault::None, &techs(n - 1)).unwrap_err();
        assert!(matches!(
            err,
            Error::InvalidParameter {
                parameter: "techs",
                ..
            }
        ));
        let fault = PathFault::ExternalRop {
            stage: 1,
            ohms: 10e3,
        };
        let mut p = BuiltPath::try_new(&spec, &fault, &techs(n)).unwrap();
        let w = p
            .propagate_pulse(900e-12, Polarity::PositiveGoing, None)
            .unwrap();
        assert!(w.output_width.is_finite());
    }

    #[test]
    fn nand_nor_chain_builds_and_propagates() {
        let spec = PathSpec {
            stages: vec![
                CellKind::Nand2,
                CellKind::Nor2,
                CellKind::Nand3,
                CellKind::Inv,
            ],
            fanout_loads: vec![0, 1, 0, 0],
        };
        let mut p = BuiltPath::new(&spec, &PathFault::None, &techs(4));
        let out = p.propagate_transition(Edge::Rising, None).unwrap();
        assert!(
            out.delay.is_some(),
            "mixed-cell path must be sensitized by construction"
        );
        let w = p
            .propagate_pulse(900e-12, Polarity::PositiveGoing, None)
            .unwrap();
        assert!(!w.dampened());
    }
}
