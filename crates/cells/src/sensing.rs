//! Electrical model of the transition-sensing circuit.
//!
//! The paper abstracts the output sensor (borrowed from Metra et al.'s
//! on-line transient-fault detectors, ref. [9]) to a single figure of
//! merit: the minimum pulse width `ω_th` it can still register. This
//! module builds a concrete sensing front-end — an inverter chain whose
//! inertial filtering sets the threshold — and characterizes `ω_th`
//! electrically, validating the behavioural abstraction used by the
//! coverage experiments in `pulsar-core`.

use crate::path::{BuiltPath, PathFault, PathSpec};
use crate::tech::Tech;
use pulsar_analog::{Error, Polarity};

/// A transition detector characterized by electrical simulation.
///
/// The detector front-end is a chain of `stages` loaded inverters; a pulse
/// that survives the chain toggles the (ideal) latch behind it. The
/// minimum input width that still produces a full output pulse is the
/// detector's sensing threshold `ω_th`.
#[derive(Debug, Clone)]
pub struct TransitionDetector {
    tech: Tech,
    stages: usize,
    load_factor: f64,
}

impl TransitionDetector {
    /// Creates a detector model with `stages` filter stages.
    ///
    /// `load_factor` scales the interconnect load of the filter stages;
    /// larger loads raise `ω_th`, letting experiments emulate detectors of
    /// different sensitivities.
    ///
    /// # Panics
    ///
    /// Panics if `stages == 0` or `load_factor <= 0`.
    pub fn new(tech: Tech, stages: usize, load_factor: f64) -> Self {
        assert!(stages > 0, "a detector needs at least one filter stage");
        assert!(load_factor > 0.0, "load factor must be positive");
        TransitionDetector {
            tech,
            stages,
            load_factor,
        }
    }

    /// Number of filter stages.
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// Electrically measures the minimum detectable pulse width `ω_th`:
    /// the smallest input width whose pulse still crosses `vdd/2` at the
    /// filter output, found by bisection to `tol` seconds.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors from the underlying transient runs.
    pub fn characterize_threshold(&self, tol: f64) -> Result<f64, Error> {
        let mut tech = self.tech;
        tech.c_wire *= self.load_factor;
        let spec = PathSpec::inverter_chain(self.stages);
        let mut chain = BuiltPath::new(&spec, &PathFault::None, &vec![tech; self.stages]);

        // Bracket: grow `hi` until a pulse passes.
        let mut hi = 50e-12;
        loop {
            let out = chain.propagate_pulse(hi, Polarity::PositiveGoing, None)?;
            if !out.dampened() {
                break;
            }
            hi *= 2.0;
            if hi > 20e-9 {
                // Pathological detector; report the bracket edge rather
                // than looping forever.
                return Ok(hi);
            }
        }
        let mut lo = hi / 2.0;

        while hi - lo > tol {
            let mid = 0.5 * (lo + hi);
            let out = chain.propagate_pulse(mid, Polarity::PositiveGoing, None)?;
            if out.dampened() {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(0.5 * (lo + hi))
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn threshold_is_positive_and_finite() {
        let d = TransitionDetector::new(Tech::generic_180nm(), 3, 1.0);
        let w = d.characterize_threshold(20e-12).unwrap();
        assert!(w > 1e-12 && w < 5e-9, "implausible ω_th {w:e}");
    }

    #[test]
    fn heavier_load_raises_threshold() {
        let light = TransitionDetector::new(Tech::generic_180nm(), 3, 1.0)
            .characterize_threshold(20e-12)
            .unwrap();
        let heavy = TransitionDetector::new(Tech::generic_180nm(), 3, 4.0)
            .characterize_threshold(20e-12)
            .unwrap();
        assert!(
            heavy > light,
            "4x load must raise ω_th: light {light:e}, heavy {heavy:e}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one filter stage")]
    fn zero_stages_panics() {
        TransitionDetector::new(Tech::generic_180nm(), 0, 1.0);
    }
}
