//! Transistor-level construction of static-CMOS gates.

use crate::tech::Tech;
use pulsar_analog::{Circuit, MosType, Mosfet, MosfetParams, NodeId, Waveform};

/// Static-CMOS cell types available to the path builder.
///
/// All of these are inverting; non-inverting logic is composed from them
/// (e.g. a buffer is two inverters), matching standard-cell practice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// Single-input inverter.
    Inv,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 3-input NAND.
    Nand3,
    /// 3-input NOR.
    Nor3,
    /// AND-OR-INVERT 2-1: `out = !(A·B + C)` (pins A, B, C).
    Aoi21,
    /// OR-AND-INVERT 2-1: `out = !((A + B)·C)` (pins A, B, C).
    Oai21,
}

impl CellKind {
    /// Number of logic inputs.
    pub fn input_count(self) -> usize {
        match self {
            CellKind::Inv => 1,
            CellKind::Nand2 | CellKind::Nor2 => 2,
            CellKind::Nand3 | CellKind::Nor3 | CellKind::Aoi21 | CellKind::Oai21 => 3,
        }
    }

    /// Whether the cell inverts (true for every kind in this library).
    pub fn is_inverting(self) -> bool {
        true
    }

    /// Non-controlling input value for side inputs: `true` (logic 1) for
    /// NAND-like cells, `false` for NOR-like cells.
    ///
    /// # Panics
    ///
    /// Panics for complex gates (AOI/OAI), whose side values depend on
    /// which pin carries the signal — use [`CellKind::side_values`].
    pub fn non_controlling(self) -> bool {
        match self {
            CellKind::Inv | CellKind::Nand2 | CellKind::Nand3 => true,
            CellKind::Nor2 | CellKind::Nor3 => false,
            CellKind::Aoi21 | CellKind::Oai21 => {
                panic!("complex gates have per-pin side values; use side_values()")
            }
        }
    }

    /// Side-input values sensitizing a path entering through
    /// `on_path_pin`: one value per *other* pin, in pin order.
    ///
    /// For the simple cells this is the classic non-controlling value on
    /// every side pin. For AOI21 (`!(A·B + C)`): through A or B the AND
    /// partner must be 1 and C must be 0; through C both A-B need only
    /// keep the AND off (take A = 0, B = 1). Dually for OAI21.
    ///
    /// # Panics
    ///
    /// Panics if `on_path_pin` is out of range.
    pub fn side_values(self, on_path_pin: usize) -> Vec<bool> {
        assert!(
            on_path_pin < self.input_count(),
            "pin {on_path_pin} out of range"
        );
        match self {
            CellKind::Inv => vec![],
            CellKind::Nand2 | CellKind::Nand3 | CellKind::Nor2 | CellKind::Nor3 => {
                vec![self.non_controlling(); self.input_count() - 1]
            }
            // out = !(A·B + C); pins (A, B, C).
            CellKind::Aoi21 => match on_path_pin {
                0 => vec![true, false], // B = 1, C = 0
                1 => vec![true, false], // A = 1, C = 0
                _ => vec![false, true], // A = 0, B = 1 (AND held off)
            },
            // out = !((A + B)·C); pins (A, B, C).
            CellKind::Oai21 => match on_path_pin {
                0 => vec![false, true], // B = 0, C = 1
                1 => vec![false, true], // A = 0, C = 1
                _ => vec![true, false], // A = 1, B = 0 (OR held on)
            },
        }
    }
}

/// Where an internal resistive open sits inside a gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RopSite {
    /// Series resistance between VDD and the pull-up network: slows the
    /// output's **rising** edge only (the paper's Fig. 1a).
    PullUp,
    /// Series resistance between the pull-down network and ground: slows
    /// the output's **falling** edge only.
    PullDown,
}

/// Handle to a constructed gate: its electrical nodes and, if an internal
/// ROP was injected, the element index of the defect resistor.
#[derive(Debug, Clone)]
pub struct GateHandle {
    /// Output node.
    pub output: NodeId,
    /// Input nodes actually wired (in cell pin order).
    pub inputs: Vec<NodeId>,
    /// Element index of the internal-ROP resistor, if one was injected.
    pub rop_resistor: Option<usize>,
    /// Internal stack nodes of series networks (empty for inverters):
    /// pull-down stack nodes first, then pull-up. These are the sites of
    /// *internal* bridging faults.
    pub internal_nodes: Vec<NodeId>,
}

/// Builds transistor netlists for CMOS logic inside a [`Circuit`].
///
/// Owns the circuit plus the supply rail; gates are appended imperatively.
///
/// # Example
///
/// ```
/// use pulsar_cells::{CmosBuilder, CellKind, Tech};
/// use pulsar_analog::Waveform;
///
/// let tech = Tech::generic_180nm();
/// let mut b = CmosBuilder::new(&tech);
/// let a = b.input("a", Waveform::dc(0.0));
/// let g = b.gate(CellKind::Inv, &tech, &[a], "u1", None);
/// let dc = b.circuit().dc_op().unwrap();
/// assert!(dc.voltage(g.output) > 1.7); // inverter output high
/// ```
#[derive(Debug)]
pub struct CmosBuilder {
    circuit: Circuit,
    vdd: NodeId,
    vdd_volts: f64,
    vdd_source: usize,
}

impl CmosBuilder {
    /// Creates a builder with a VDD rail driven by an ideal source at
    /// `tech.vdd`.
    pub fn new(tech: &Tech) -> Self {
        let mut circuit = Circuit::new();
        let vdd = circuit.node("vdd");
        let vdd_source = circuit.vsource(vdd, Circuit::GROUND, Waveform::dc(tech.vdd));
        CmosBuilder {
            circuit,
            vdd,
            vdd_volts: tech.vdd,
            vdd_source,
        }
    }

    /// The VDD rail node.
    pub fn vdd(&self) -> NodeId {
        self.vdd
    }

    /// VDD magnitude in volts.
    pub fn vdd_volts(&self) -> f64 {
        self.vdd_volts
    }

    /// Immutable access to the circuit built so far.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Mutable access for post-construction surgery (fault wiring, probes).
    pub fn circuit_mut(&mut self) -> &mut Circuit {
        &mut self.circuit
    }

    /// Element index of the VDD supply source (for quiescent-current
    /// measurements via `DcSolution::source_current`).
    pub fn vdd_source(&self) -> usize {
        self.vdd_source
    }

    /// Consumes the builder, returning the finished circuit and the VDD
    /// rail node.
    pub fn finish(self) -> (Circuit, NodeId) {
        (self.circuit, self.vdd)
    }

    /// Adds a stimulus input: a node driven by an ideal voltage source.
    /// Returns the node; the source's waveform can be replaced later via
    /// the element index from [`CmosBuilder::input_with_index`].
    pub fn input(&mut self, name: &str, wave: Waveform) -> NodeId {
        self.input_with_index(name, wave).0
    }

    /// Like [`CmosBuilder::input`] but also returns the source element
    /// index for later waveform replacement.
    pub fn input_with_index(&mut self, name: &str, wave: Waveform) -> (NodeId, usize) {
        let n = self.circuit.node(name);
        let idx = self.circuit.vsource(n, Circuit::GROUND, wave);
        (n, idx)
    }

    /// A node hard-wired to logic `1` (the VDD rail) or `0` (ground); used
    /// for non-controlling side inputs.
    pub fn constant(&mut self, value: bool) -> NodeId {
        if value {
            self.vdd
        } else {
            Circuit::GROUND
        }
    }

    /// Builds one gate of `kind` with transistor parameters from `tech`.
    ///
    /// `rop` optionally injects an internal resistive open of the given
    /// resistance at the given site. The output node, input wiring and the
    /// fault-resistor element index are returned in the [`GateHandle`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` does not match the cell's pin count.
    pub fn gate(
        &mut self,
        kind: CellKind,
        tech: &Tech,
        inputs: &[NodeId],
        name: &str,
        rop: Option<(RopSite, f64)>,
    ) -> GateHandle {
        assert_eq!(
            inputs.len(),
            kind.input_count(),
            "{name}: cell {kind:?} needs {} inputs, got {}",
            kind.input_count(),
            inputs.len()
        );
        let out = self.circuit.node(format!("{name}.out"));

        // Optional fault-degraded rail attachment points.
        let mut rop_resistor = None;
        let mut pu_rail = self.vdd;
        let mut pd_rail = Circuit::GROUND;
        match rop {
            Some((RopSite::PullUp, ohms)) => {
                let n = self.circuit.node(format!("{name}.vddf"));
                rop_resistor = Some(self.circuit.resistor(self.vdd, n, ohms));
                pu_rail = n;
            }
            Some((RopSite::PullDown, ohms)) => {
                let n = self.circuit.node(format!("{name}.gndf"));
                rop_resistor = Some(self.circuit.resistor(Circuit::GROUND, n, ohms));
                pd_rail = n;
            }
            None => {}
        }

        // Complex (series-parallel) cells have their own construction.
        if matches!(kind, CellKind::Aoi21 | CellKind::Oai21) {
            let internal_nodes =
                self.complex_networks(kind, tech, inputs, out, pu_rail, pd_rail, name);
            if tech.c_wire > 0.0 {
                self.circuit.capacitor(out, Circuit::GROUND, tech.c_wire);
            }
            return GateHandle {
                output: out,
                inputs: inputs.to_vec(),
                rop_resistor,
                internal_nodes,
            };
        }

        let n_in = kind.input_count();
        // Stacked devices are upsized by the stack depth to keep the drive
        // comparable to an inverter, as in standard-cell sizing.
        let (pu_series, pd_series) = match kind {
            CellKind::Inv => (false, false),
            CellKind::Nand2 | CellKind::Nand3 => (false, true),
            CellKind::Nor2 | CellKind::Nor3 => (true, false),
            CellKind::Aoi21 | CellKind::Oai21 => unreachable!("handled above"),
        };
        let w_p = tech.w_p() * if pu_series { n_in as f64 } else { 1.0 };
        let w_n = tech.w_n * if pd_series { n_in as f64 } else { 1.0 };

        let mut internal_nodes = Vec::new();
        let pu_internal = self.network(
            MosType::Pmos,
            pu_series,
            pu_rail,
            out,
            inputs,
            w_p,
            tech,
            name,
        );
        let pd_internal = self.network(
            MosType::Nmos,
            pd_series,
            pd_rail,
            out,
            inputs,
            w_n,
            tech,
            name,
        );
        internal_nodes.extend(pd_internal);
        internal_nodes.extend(pu_internal);

        // Interconnect loading at the output.
        if tech.c_wire > 0.0 {
            self.circuit.capacitor(out, Circuit::GROUND, tech.c_wire);
        }

        GateHandle {
            output: out,
            inputs: inputs.to_vec(),
            rop_resistor,
            internal_nodes,
        }
    }

    /// Builds a pull network from `rail` to `out`; returns the internal
    /// stack nodes it created (series networks only).
    ///
    /// Parallel: one device per input directly between rail and out.
    /// Series: a stack rail → … → out with one device per input.
    #[allow(clippy::too_many_arguments)]
    fn network(
        &mut self,
        mos: MosType,
        series: bool,
        rail: NodeId,
        out: NodeId,
        inputs: &[NodeId],
        w: f64,
        tech: &Tech,
        name: &str,
    ) -> Vec<NodeId> {
        let params = |w: f64| mos_params(mos, w, tech);

        let mut internal = Vec::new();
        if series {
            // Build rail → out with the *last* pin at the rail side, so
            // pin 0 (the on-path input under sensitization) drives the
            // device adjacent to the output — the stack node then sits
            // behind the always-on side devices, which is the layout the
            // internal-bridge fault model targets.
            let mut upper = rail;
            for (i, &g) in inputs.iter().rev().enumerate() {
                let lower = if i == inputs.len() - 1 {
                    out
                } else {
                    let n = self.circuit.node(format!("{name}.{}{}", mos_tag(mos), i));
                    internal.push(n);
                    n
                };
                // Source sits at the rail side for the first device; the
                // symmetric model handles orientation either way.
                self.circuit.add_mosfet(Mosfet {
                    kind: mos,
                    d: lower,
                    g,
                    s: upper,
                    params: params(w),
                });
                upper = lower;
            }
        } else {
            for &g in inputs {
                self.circuit.add_mosfet(Mosfet {
                    kind: mos,
                    d: out,
                    g,
                    s: rail,
                    params: params(w),
                });
            }
        }
        internal
    }
}

/// Device parameters for a transistor of `mos` polarity and width `w`.
fn mos_params(mos: MosType, w: f64, tech: &Tech) -> MosfetParams {
    match mos {
        MosType::Nmos => MosfetParams {
            vt0: tech.vt0_n,
            kp: tech.kp_n,
            lambda: tech.lambda_n,
            w,
            l: tech.l,
            cgs: 0.5 * tech.cgate(w),
            cgd: 0.5 * tech.cgate(w),
            cdb: tech.cjunction(w),
        },
        MosType::Pmos => MosfetParams {
            vt0: tech.vt0_p,
            kp: tech.kp_p,
            lambda: tech.lambda_p,
            w,
            l: tech.l,
            cgs: 0.5 * tech.cgate(w),
            cgd: 0.5 * tech.cgate(w),
            cdb: tech.cjunction(w),
        },
    }
}

impl CmosBuilder {
    /// Series-parallel networks of the AOI21/OAI21 cells; returns the
    /// internal stack nodes (pull-down first).
    #[allow(clippy::too_many_arguments)]
    fn complex_networks(
        &mut self,
        kind: CellKind,
        tech: &Tech,
        pins: &[NodeId],
        out: NodeId,
        pu_rail: NodeId,
        pd_rail: NodeId,
        name: &str,
    ) -> Vec<NodeId> {
        let (a, b, c) = (pins[0], pins[1], pins[2]);
        // Series devices doubled in width, as in standard-cell sizing.
        let wn1 = tech.w_n;
        let wn2 = 2.0 * tech.w_n;
        let wp1 = tech.w_p();
        let wp2 = 2.0 * tech.w_p();
        let x = self.circuit.node(format!("{name}.nx"));
        let y = self.circuit.node(format!("{name}.py"));
        let mut add = |kind_m: MosType, d: NodeId, g: NodeId, s: NodeId, w: f64, tech: &Tech| {
            self.circuit.add_mosfet(Mosfet {
                kind: kind_m,
                d,
                g,
                s,
                params: mos_params(kind_m, w, tech),
            });
        };
        match kind {
            // out = !(A·B + C): pull-down (A-B stack) ∥ C,
            //                   pull-up (A ∥ B) series C.
            CellKind::Aoi21 => {
                // Pull-down branches.
                add(MosType::Nmos, out, a, x, wn2, tech);
                add(MosType::Nmos, x, b, pd_rail, wn2, tech);
                add(MosType::Nmos, out, c, pd_rail, wn1, tech);
                // Pull-up: (A ∥ B) from rail to y, then C from y to out.
                add(MosType::Pmos, y, a, pu_rail, wp2, tech);
                add(MosType::Pmos, y, b, pu_rail, wp2, tech);
                add(MosType::Pmos, out, c, y, wp2, tech);
                vec![x, y]
            }
            // out = !((A + B)·C): pull-down (A ∥ B) series C,
            //                     pull-up (A-B stack) ∥ C.
            CellKind::Oai21 => {
                // Pull-down: C from out to x, then A ∥ B from x to rail.
                add(MosType::Nmos, out, c, x, wn2, tech);
                add(MosType::Nmos, x, a, pd_rail, wn2, tech);
                add(MosType::Nmos, x, b, pd_rail, wn2, tech);
                // Pull-up branches: A-B stack plus C alone.
                add(MosType::Pmos, y, a, pu_rail, wp2, tech);
                add(MosType::Pmos, out, b, y, wp2, tech);
                add(MosType::Pmos, out, c, pu_rail, wp1, tech);
                vec![x, y]
            }
            _ => unreachable!("only complex kinds route here"),
        }
    }
}

fn mos_tag(m: MosType) -> &'static str {
    match m {
        MosType::Nmos => "n",
        MosType::Pmos => "p",
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    fn tech() -> Tech {
        Tech::generic_180nm()
    }

    fn dc_out(kind: CellKind, ins: &[bool]) -> f64 {
        let t = tech();
        let mut b = CmosBuilder::new(&t);
        let nodes: Vec<NodeId> = ins
            .iter()
            .enumerate()
            .map(|(i, &v)| b.input(&format!("i{i}"), Waveform::dc(if v { t.vdd } else { 0.0 })))
            .collect();
        let g = b.gate(kind, &t, &nodes, "g", None);
        b.circuit().dc_op().unwrap().voltage(g.output)
    }

    fn expect_logic(kind: CellKind, ins: &[bool], want_high: bool) {
        let v = dc_out(kind, ins);
        let t = tech();
        if want_high {
            assert!(v > t.vdd - 0.1, "{kind:?}{ins:?} expected high, got {v}");
        } else {
            assert!(v < 0.1, "{kind:?}{ins:?} expected low, got {v}");
        }
    }

    #[test]
    fn inverter_truth_table() {
        expect_logic(CellKind::Inv, &[false], true);
        expect_logic(CellKind::Inv, &[true], false);
    }

    #[test]
    fn nand2_truth_table() {
        expect_logic(CellKind::Nand2, &[false, false], true);
        expect_logic(CellKind::Nand2, &[false, true], true);
        expect_logic(CellKind::Nand2, &[true, false], true);
        expect_logic(CellKind::Nand2, &[true, true], false);
    }

    #[test]
    fn nor2_truth_table() {
        expect_logic(CellKind::Nor2, &[false, false], true);
        expect_logic(CellKind::Nor2, &[false, true], false);
        expect_logic(CellKind::Nor2, &[true, false], false);
        expect_logic(CellKind::Nor2, &[true, true], false);
    }

    #[test]
    fn nand3_and_nor3_extremes() {
        expect_logic(CellKind::Nand3, &[true, true, true], false);
        expect_logic(CellKind::Nand3, &[true, false, true], true);
        expect_logic(CellKind::Nor3, &[false, false, false], true);
        expect_logic(CellKind::Nor3, &[false, true, false], false);
    }

    #[test]
    fn non_controlling_values() {
        assert!(CellKind::Nand2.non_controlling());
        assert!(!CellKind::Nor3.non_controlling());
        assert!(CellKind::Inv.non_controlling());
    }

    #[test]
    fn aoi21_full_truth_table() {
        // out = !(A·B + C)
        for pat in 0..8u32 {
            let (a, b, c) = (pat & 1 == 1, pat & 2 == 2, pat & 4 == 4);
            expect_logic(CellKind::Aoi21, &[a, b, c], !((a && b) || c));
        }
    }

    #[test]
    fn oai21_full_truth_table() {
        // out = !((A + B)·C)
        for pat in 0..8u32 {
            let (a, b, c) = (pat & 1 == 1, pat & 2 == 2, pat & 4 == 4);
            expect_logic(CellKind::Oai21, &[a, b, c], !((a || b) && c));
        }
    }

    #[test]
    fn complex_side_values_sensitize_each_pin() {
        // With the per-pin side values applied, the output must follow
        // the inverted on-path input — for every pin of both cells.
        let t = tech();
        for kind in [CellKind::Aoi21, CellKind::Oai21] {
            for pin in 0..3 {
                let sides = kind.side_values(pin);
                for on_path in [false, true] {
                    let mut ins = Vec::new();
                    let mut si = sides.iter();
                    for p in 0..3 {
                        if p == pin {
                            ins.push(on_path);
                        } else {
                            ins.push(*si.next().expect("one side value per other pin"));
                        }
                    }
                    let v = dc_out(kind, &ins);
                    let want_high = !on_path; // inverting under sensitization
                    if want_high {
                        assert!(v > t.vdd - 0.1, "{kind:?} pin {pin} in={on_path}: {v}");
                    } else {
                        assert!(v < 0.1, "{kind:?} pin {pin} in={on_path}: {v}");
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "per-pin side values")]
    fn complex_non_controlling_panics() {
        let _ = CellKind::Aoi21.non_controlling();
    }

    #[test]
    fn pull_up_rop_keeps_logic_but_adds_resistor() {
        let t = tech();
        let mut b = CmosBuilder::new(&t);
        let a = b.input("a", Waveform::dc(0.0));
        let g = b.gate(CellKind::Inv, &t, &[a], "g", Some((RopSite::PullUp, 10e3)));
        assert!(g.rop_resistor.is_some());
        // Static logic level is unaffected by a series open (no DC current).
        let dc = b.circuit().dc_op().unwrap();
        assert!(dc.voltage(g.output) > t.vdd - 0.1);
    }

    #[test]
    #[should_panic(expected = "needs 2 inputs")]
    fn wrong_pin_count_panics() {
        let t = tech();
        let mut b = CmosBuilder::new(&t);
        let a = b.input("a", Waveform::dc(0.0));
        b.gate(CellKind::Nand2, &t, &[a], "g", None);
    }

    #[test]
    fn constant_nodes_are_rails() {
        let t = tech();
        let mut b = CmosBuilder::new(&t);
        assert_eq!(b.constant(false), Circuit::GROUND);
        assert_eq!(b.constant(true), b.vdd());
    }
}
