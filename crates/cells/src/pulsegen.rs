//! Electrical model of the on-chip pulse generator.
//!
//! The paper (§1) notes that "our method exploits well known circuits for
//! the generation of input pulses". The classic circuit is a **one-shot**:
//! the input and a delayed, inverted copy of itself feed a NAND, which
//! emits a low-going pulse on every rising input edge, with a width set by
//! the delay chain:
//!
//! ```text
//!           ┌──[inv]──[inv]──[inv]──┐      (odd chain = inverting delay)
//!   trigger ┤                       ├─[NAND]── out (1 → 0 → 1 pulse)
//!           └───────────────────────┘
//! ```
//!
//! Building it from the same cell library as the circuits under test
//! grounds the `ω_in` fluctuation model used by the coverage studies: the
//! generated width inherits the generator's own process variation.

use crate::gates::{CellKind, CmosBuilder};
use crate::tech::Tech;
use pulsar_analog::{Error, Polarity, TranConfig, Waveform};

/// A one-shot pulse generator characterized by electrical simulation.
///
/// `chain` is the number of delay inverters (must be odd so the chain
/// inverts); the emitted pulse width grows roughly linearly with it.
///
/// # Example
///
/// ```
/// use pulsar_cells::{PulseGenerator, Tech};
///
/// # fn main() -> Result<(), pulsar_analog::Error> {
/// let short = PulseGenerator::new(Tech::generic_180nm(), 3).emitted_width()?;
/// let long = PulseGenerator::new(Tech::generic_180nm(), 7).emitted_width()?;
/// assert!(long > short, "more delay stages, wider pulse");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PulseGenerator {
    tech: Tech,
    chain: usize,
}

impl PulseGenerator {
    /// Creates a generator model with an odd `chain` of delay inverters.
    ///
    /// # Panics
    ///
    /// Panics if `chain` is even or zero (the delay path must invert).
    pub fn new(tech: Tech, chain: usize) -> Self {
        assert!(
            chain % 2 == 1,
            "the delay chain must be inverting (odd length), got {chain}"
        );
        PulseGenerator { tech, chain }
    }

    /// Number of delay inverters.
    pub fn chain(&self) -> usize {
        self.chain
    }

    /// Simulates one trigger edge and measures the emitted pulse width at
    /// `vdd/2`. The one-shot emits a **negative-going** pulse (the
    /// paper's kind *h*); feeding an inverter yields kind *l*.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors; reports
    /// [`Error::NoConvergence`]-style failure as an `Err`, and a
    /// generator that never fires as `Ok(0.0)`.
    pub fn emitted_width(&self) -> Result<f64, Error> {
        let (width, _polarity) = self.simulate()?;
        Ok(width)
    }

    /// Builds and simulates the one-shot; returns the measured width and
    /// the emitted polarity.
    fn simulate(&self) -> Result<(f64, Polarity), Error> {
        let mut b = CmosBuilder::new(&self.tech);
        let trigger = b.input(
            "trigger",
            Waveform::step(0.0, self.tech.vdd, 0.5e-9, 80e-12),
        );

        // Delay chain.
        let mut node = trigger;
        for i in 0..self.chain {
            node = b
                .gate(CellKind::Inv, &self.tech, &[node], &format!("d{i}"), None)
                .output;
        }
        // One-shot NAND: low pulse while both trigger and delayed copy
        // are high.
        let out = b
            .gate(
                CellKind::Nand2,
                &self.tech,
                &[trigger, node],
                "oneshot",
                None,
            )
            .output;
        // A realistic load.
        let _load = b.gate(CellKind::Inv, &self.tech, &[out], "load", None);

        let (circuit, _) = b.finish();
        let stop = 0.5e-9 + 0.4e-9 * self.chain as f64 + 2e-9;
        let res = circuit.transient(&TranConfig::new(4e-12, stop))?;
        let width = res
            .trace(out)
            .widest_pulse_width(self.tech.vdd / 2.0, Polarity::NegativeGoing);
        Ok((width, Polarity::NegativeGoing))
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn one_shot_fires_once_per_edge() {
        let g = PulseGenerator::new(Tech::generic_180nm(), 5);
        let w = g.emitted_width().unwrap();
        assert!(w > 50e-12 && w < 3e-9, "implausible one-shot width {w:e}");
    }

    #[test]
    fn width_scales_with_chain_length() {
        let tech = Tech::generic_180nm();
        let w3 = PulseGenerator::new(tech, 3).emitted_width().unwrap();
        let w5 = PulseGenerator::new(tech, 5).emitted_width().unwrap();
        let w7 = PulseGenerator::new(tech, 7).emitted_width().unwrap();
        assert!(
            w3 < w5 && w5 < w7,
            "widths must grow: {w3:e}, {w5:e}, {w7:e}"
        );
        // Roughly linear growth: the two increments are similar.
        let d1 = w5 - w3;
        let d2 = w7 - w5;
        assert!(
            (d1 - d2).abs() < 0.5 * d1.max(d2),
            "increments {d1:e} vs {d2:e}"
        );
    }

    #[test]
    fn process_variation_moves_the_width() {
        let nominal = Tech::generic_180nm();
        let slow = nominal.scaled(0.8, 1.1, 1.1); // weak, high-VT, heavy
        let wn = PulseGenerator::new(nominal, 5).emitted_width().unwrap();
        let ws = PulseGenerator::new(slow, 5).emitted_width().unwrap();
        assert!(
            ws > wn,
            "a slow process corner must emit a wider pulse: {wn:e} vs {ws:e}"
        );
    }

    #[test]
    #[should_panic(expected = "must be inverting")]
    fn even_chain_panics() {
        PulseGenerator::new(Tech::generic_180nm(), 4);
    }
}
