#![warn(missing_docs)]
// Library code must surface failures as typed errors or documented
// panics, never ad-hoc unwraps; #[cfg(test)] modules opt back in.
#![warn(clippy::unwrap_used)]

//! # pulsar-cells
//!
//! Transistor-level CMOS cell library on top of [`pulsar_analog`], plus
//! electrical fault injection for the defect classes studied in
//! *Favalli & Metra, DATE 2007*:
//!
//! * **internal resistive opens** — extra resistance inside a gate's
//!   pull-up or pull-down network (slows one output edge only),
//! * **external resistive opens** — extra resistance between a gate output
//!   and one of its fan-out branches (degrades both edges' slopes),
//! * **resistive bridges** — a resistor between two signal nets, one of
//!   which is held steady by its driver while the victim switches.
//!
//! The central object is [`BuiltPath`]: a sensitized combinational path
//! (the paper's experiments use 7-gate paths) built as a full transistor
//! netlist, with a stimulus source at the path input and per-stage output
//! nodes exposed for measurement. Faulty resistances are swept without
//! rebuilding via [`BuiltPath::set_fault_resistance`].
//!
//! ```
//! use pulsar_cells::{PathSpec, PathFault, Tech, BuiltPath};
//! use pulsar_analog::Polarity;
//!
//! # fn main() -> Result<(), pulsar_analog::Error> {
//! let tech = Tech::generic_180nm();
//! let spec = PathSpec::inverter_chain(7);
//! let fault = PathFault::ExternalRop { stage: 1, ohms: 30_000.0 };
//! let mut path = BuiltPath::new(&spec, &fault, &vec![tech; 7]);
//!
//! // Propagate a 0→1→0 pulse of 500 ps and observe the dampening.
//! let out = path.propagate_pulse(500e-12, Polarity::PositiveGoing, None)?;
//! assert!(out.output_width < 400e-12, "the defect must dampen the pulse");
//! # Ok(())
//! # }
//! ```

pub mod characterize;
mod flipflop;
mod gates;
mod path;
mod pulsegen;
mod sensing;
mod tech;

pub use characterize::{vtc, Vtc};
pub use flipflop::{characterize_dff, DffTiming};
pub use gates::{CellKind, CmosBuilder, GateHandle, RopSite};
pub use path::{
    pulse_width_only_batch, BuiltPath, CapturePolicy, PathFault, PathSpec, PulseOutcome,
    TransitionOutcome,
};
pub use pulsegen::PulseGenerator;
pub use sensing::TransitionDetector;
pub use tech::Tech;
