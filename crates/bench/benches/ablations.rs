//! Ablation benches for the design choices called out in `DESIGN.md`:
//!
//! * integrator choice (trapezoidal vs backward Euler),
//! * transient step size,
//! * pulse kind *l* (positive-going) vs *h* (negative-going),
//! * internal vs external ROP detectability at equal resistance,
//! * electrical vs logic-level engine cost for the same measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pulsar_analog::{Integrator, Polarity, TranConfig};
use pulsar_cells::{BuiltPath, PathFault, PathSpec, RopSite, Tech};
use pulsar_core::{ModelFault, ModelPath, PathInstance};
use pulsar_timing::{GateTimingModel, PathElement, PathTimingModel};

fn paper_path(fault: PathFault) -> BuiltPath {
    let tech = Tech::generic_180nm();
    BuiltPath::new(&PathSpec::paper_chain(), &fault, &vec![tech; 7])
}

fn ablate_integrator(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/integrator");
    for (name, integ) in [
        ("trapezoidal", Integrator::Trapezoidal),
        ("backward_euler", Integrator::BackwardEuler),
    ] {
        let mut path = paper_path(PathFault::ExternalRop {
            stage: 1,
            ohms: 8e3,
        });
        let cfg = TranConfig::with_integrator(4e-12, 7e-9, integ);
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    path.propagate_pulse(400e-12, Polarity::PositiveGoing, Some(&cfg))
                        .expect("transient"),
                )
            })
        });
    }
    group.finish();
}

fn ablate_step_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/step");
    for step_ps in [2.0f64, 4.0, 8.0] {
        let mut path = paper_path(PathFault::ExternalRop {
            stage: 1,
            ohms: 8e3,
        });
        let cfg = TranConfig::new(step_ps * 1e-12, 7e-9);
        group.bench_with_input(BenchmarkId::from_parameter(step_ps), &step_ps, |b, _| {
            b.iter(|| {
                black_box(
                    path.propagate_pulse(400e-12, Polarity::PositiveGoing, Some(&cfg))
                        .expect("transient"),
                )
            })
        });
    }
    group.finish();
}

fn ablate_pulse_kind(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/pulse_kind");
    for (name, pol) in [
        ("l_positive", Polarity::PositiveGoing),
        ("h_negative", Polarity::NegativeGoing),
    ] {
        let mut path = paper_path(PathFault::InternalRop {
            stage: 1,
            site: RopSite::PullUp,
            ohms: 8e3,
        });
        group.bench_function(name, |b| {
            b.iter(|| black_box(path.propagate_pulse(400e-12, pol, None).expect("transient")))
        });
    }
    group.finish();
}

fn ablate_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/engine");
    let mut analog = paper_path(PathFault::ExternalRop {
        stage: 1,
        ohms: 8e3,
    });
    group.bench_function("electrical", |b| {
        b.iter(|| {
            black_box(
                analog
                    .propagate_pulse(400e-12, Polarity::PositiveGoing, None)
                    .expect("analog"),
            )
        })
    });
    let inv = GateTimingModel::new(95e-12, 75e-12, 70e-12, 260e-12);
    let healthy = PathTimingModel::new(vec![
        PathElement::Gate {
            model: inv,
            inverting: true,
            slow_rise: 0.0,
            slow_fall: 0.0
        };
        7
    ]);
    let mut model = ModelPath::new(
        healthy,
        Some(ModelFault::RcAfter {
            stage: 1,
            c_branch: 13e-15,
        }),
        8e3,
    );
    group.bench_function("logic_level", |b| {
        b.iter(|| {
            black_box(
                model
                    .pulse_width_out(400e-12, Polarity::PositiveGoing)
                    .expect("model"),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    ablate_integrator,
    ablate_step_size,
    ablate_pulse_kind,
    ablate_engine
);
criterion_main!(benches);
