//! Criterion benches for the hot kernels underneath the experiments:
//! DC operating point, transistor-level transient, logic simulation,
//! logic-level pulse propagation and the Monte Carlo driver.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pulsar_analog::{Edge, Polarity};
use pulsar_cells::{BuiltPath, PathFault, PathSpec, Tech};
use pulsar_core::{ModelFault, ModelPath, PathInstance};
use pulsar_logic::{c432_like, simulate};
use pulsar_mc::MonteCarlo;
use pulsar_timing::{GateTimingModel, PathElement, PathTimingModel};

fn bench_dc_op(c: &mut Criterion) {
    let tech = Tech::generic_180nm();
    let spec = PathSpec::paper_chain();
    let path = BuiltPath::new(&spec, &PathFault::None, &vec![tech; 7]);
    c.bench_function("dcop/paper_chain7", |b| {
        b.iter(|| black_box(path.circuit().dc_op().expect("dc op")))
    });
}

fn bench_transient(c: &mut Criterion) {
    let tech = Tech::generic_180nm();
    let spec = PathSpec::paper_chain();
    let fault = PathFault::ExternalRop {
        stage: 1,
        ohms: 8e3,
    };
    let mut path = BuiltPath::new(&spec, &fault, &vec![tech; 7]);
    c.bench_function("transient/pulse_chain7", |b| {
        b.iter(|| {
            black_box(
                path.propagate_pulse(400e-12, Polarity::PositiveGoing, None)
                    .expect("transient"),
            )
        })
    });
    c.bench_function("transient/transition_chain7", |b| {
        b.iter(|| {
            black_box(
                path.propagate_transition(Edge::Rising, None)
                    .expect("transient"),
            )
        })
    });
}

fn bench_logic_sim(c: &mut Criterion) {
    let nl = c432_like();
    let words: Vec<u64> = (0..36)
        .map(|i| 0x9E3779B97F4A7C15u64.wrapping_mul(i + 1))
        .collect();
    c.bench_function("logic/simulate_c432x64", |b| {
        b.iter(|| black_box(simulate(&nl, &words).expect("simulate")))
    });
}

fn bench_model_pulse(c: &mut Criterion) {
    let inv = GateTimingModel::new(95e-12, 75e-12, 70e-12, 260e-12);
    let healthy = PathTimingModel::new(vec![
        PathElement::Gate {
            model: inv,
            inverting: true,
            slow_rise: 0.0,
            slow_fall: 0.0
        };
        7
    ]);
    let mut mp = ModelPath::new(
        healthy,
        Some(ModelFault::RcAfter {
            stage: 1,
            c_branch: 13e-15,
        }),
        8e3,
    );
    c.bench_function("model/pulse_chain7", |b| {
        b.iter(|| {
            black_box(
                mp.pulse_width_out(400e-12, Polarity::PositiveGoing)
                    .expect("model"),
            )
        })
    });
}

fn bench_mc_driver(c: &mut Criterion) {
    c.bench_function("mc/fanout_1k_samples", |b| {
        b.iter(|| {
            let mc = MonteCarlo::new(1000, 7);
            black_box(mc.run(|i, rng| {
                use rand::RngExt;
                i as f64 + rng.random::<f64>()
            }))
        })
    });
}

criterion_group!(
    benches,
    bench_dc_op,
    bench_transient,
    bench_logic_sim,
    bench_model_pulse,
    bench_mc_driver
);
criterion_main!(benches);
