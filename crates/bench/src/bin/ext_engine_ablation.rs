//! Extension experiment: electrical vs logic-level engine on the Fig. 7
//! coverage study. The logic-level engine (the paper's §6 follow-up tool)
//! runs the same Monte Carlo coverage sweep orders of magnitude faster;
//! this ablation prints both engines' `C_pulse(R)` side by side along
//! with their wall-clock costs, so the fidelity/speed trade is explicit.
//!
//! Output: CSV `R, Cpulse_electrical, Cpulse_model` + timing summary.

use pulsar_analog::Polarity;
use pulsar_bench::{log_sweep, rop_put, ExpParams};
use pulsar_cells::Tech;
use pulsar_core::{ModelFault, ModelPulseStudy, PulseStudy};
use pulsar_timing::{calibrate_inverter, PathElement, PathTimingModel, TimingLibrary};
use std::time::Instant;

fn main() {
    let p = ExpParams::from_env(48);
    let rs = log_sweep(300.0, 400e3, 13);

    // Electrical reference.
    let t0 = Instant::now();
    let elec = PulseStudy::new(rop_put(), p.mc(), Polarity::PositiveGoing);
    let ecal = elec.calibrate().expect("electrical calibration");
    let ecov = elec
        .coverage(&ecal, &rs, &[1.0])
        .expect("electrical coverage");
    let t_elec = t0.elapsed();

    // Logic-level engine with a calibrated library: same 7-stage chain
    // with the fan-out derate on the faulted stage.
    let t0 = Instant::now();
    let inv = calibrate_inverter(&Tech::generic_180nm()).expect("calibration");
    let lib = TimingLibrary::calibrated(inv);
    let gate = |fanout: usize| PathElement::Gate {
        model: lib.model(pulsar_logic::GateKind::Not, fanout),
        inverting: true,
        slow_rise: 0.0,
        slow_fall: 0.0,
    };
    let mut elements = vec![gate(1); 7];
    elements[1] = gate(2); // the faulted stage drives the dummy load too
    let healthy = PathTimingModel::new(elements);
    let model = ModelPulseStudy::new(
        healthy,
        ModelFault::RcAfter {
            stage: 1,
            c_branch: 13e-15,
        },
        p.mc(),
        Polarity::PositiveGoing,
    );
    let mcal = model.calibrate().expect("model calibration");
    let mcov = model.coverage(&mcal, &rs, &[1.0]).expect("model coverage");
    let t_model = t0.elapsed();

    println!("# engine ablation: C_pulse(R) at nominal w_th, external ROP");
    println!("# samples = {}, seed = {}", p.samples, p.seed);
    println!(
        "# electrical: w_in0 = {:.3e}, w_th0 = {:.3e}, wall = {:.2?}",
        ecal.w_in, ecal.w_th, t_elec
    );
    println!(
        "# model:      w_in0 = {:.3e}, w_th0 = {:.3e}, wall = {:.2?} (incl. calibration transients)",
        mcal.w_in, mcal.w_th, t_model
    );
    println!("R_ohms,Cpulse_electrical,Cpulse_model");
    for (i, r) in rs.iter().enumerate() {
        println!(
            "{r:.4e},{:.4},{:.4}",
            ecov[0].coverage[i], mcov[0].coverage[i]
        );
    }
}
