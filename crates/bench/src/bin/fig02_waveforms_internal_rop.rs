//! Fig. 2: faulty vs fault-free voltage waveforms for an **internal
//! resistive open** (pull-up, R = 8 kΩ) while a pulse propagates through
//! the paper's 7-gate path. The faulty pulse's rising edges lag and the
//! pulse dies within a few logic levels.
//!
//! Output: CSV with time and per-stage voltages for both circuits.

use pulsar_analog::Polarity;
use pulsar_bench::internal_rop_put;
use pulsar_core::PathInstance as _;

fn main() {
    let put = internal_rop_put();
    let w_in = 600e-12;
    let r = 8e3;

    let mut faulty = put.instantiate_nominal(r);
    faulty
        .set_resistance(r)
        .expect("fault present by construction");
    let (fo, fres) = faulty
        .built_path()
        .propagate_pulse_traced(w_in, Polarity::PositiveGoing, None)
        .expect("faulty transient");

    let techs = vec![put.tech; put.spec.len()];
    let mut clean = put.instantiate_fault_free(&techs);
    let (co, cres) = clean
        .built_path()
        .propagate_pulse_traced(w_in, Polarity::PositiveGoing, None)
        .expect("fault-free transient");

    println!("# Fig 2 reproduction: internal pull-up ROP, R = {r:.0} ohm, w_in = {w_in:.3e} s");
    println!(
        "# faulty stage widths: {:?}",
        fo.stage_widths
            .iter()
            .map(|w| format!("{w:.3e}"))
            .collect::<Vec<_>>()
    );
    println!(
        "# clean  stage widths: {:?}",
        co.stage_widths
            .iter()
            .map(|w| format!("{w:.3e}"))
            .collect::<Vec<_>>()
    );

    let stages = faulty.built_path().stage_outputs().to_vec();
    let input = faulty.built_path().input();
    let cstages = clean.built_path().stage_outputs().to_vec();
    let cinput = clean.built_path().input();

    print!("t,Vin_faulty");
    for i in 0..stages.len() {
        print!(",Vs{i}_faulty");
    }
    print!(",Vin_clean");
    for i in 0..cstages.len() {
        print!(",Vs{i}_clean");
    }
    println!();

    let times = fres.times().to_vec();
    for (k, &t) in times.iter().enumerate() {
        if k % 8 != 0 {
            continue; // thin the CSV: 8x decimation is plenty for plotting
        }
        print!("{t:.5e},{:.4}", fres.trace(input).values()[k]);
        for &s in &stages {
            print!(",{:.4}", fres.trace(s).values()[k]);
        }
        // The clean run shares the breakpoint structure but may differ in
        // accepted points; interpolate on its own trace.
        print!(",{:.4}", cres.trace(cinput).value_at(t));
        for &s in &cstages {
            print!(",{:.4}", cres.trace(s).value_at(t));
        }
        println!();
    }
}
