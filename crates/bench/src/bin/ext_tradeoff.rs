//! Extension experiment: the §4 quality-vs-yield frontier, quantified.
//!
//! Sweeps the calibration margin of both methods and reports, per point,
//! the yield loss (fault-free rejects under instrument fluctuation) and
//! the smallest defect resistance reaching 90 % coverage. The pulse
//! test's *local* generation/detection buys it a gentler frontier than
//! the clock-distribution-bound DF test.
//!
//! Output: CSV `method, margin, yield_loss, r_at_90pct`.

use pulsar_analog::Polarity;
use pulsar_bench::{log_sweep, rop_put, ExpParams};
use pulsar_core::{DfStudy, PulseStudy};

fn main() {
    let p = ExpParams::from_env(64);
    let rs = log_sweep(300.0, 400e3, 15);
    let margins = [0.80, 0.90, 0.95, 1.00, 1.05, 1.10, 1.20];
    let target = 0.9;

    println!("# quality-vs-yield frontier, external ROP, coverage target {target}");
    println!("# samples = {}, seed = {}, sigma = 10%", p.samples, p.seed);
    println!("method,margin,yield_loss,r_at_90pct_ohms");

    let df = DfStudy::new(rop_put(), p.mc());
    for pt in df.tradeoff(&margins, &rs, target).expect("df tradeoff") {
        println!(
            "df,{:.2},{:.4},{}",
            pt.margin,
            pt.yield_loss,
            pt.r_at_target
                .map(|r| format!("{r:.4e}"))
                .unwrap_or_else(|| "unreached".into())
        );
    }

    let pulse = PulseStudy::new(rop_put(), p.mc(), Polarity::PositiveGoing);
    for pt in pulse
        .tradeoff(&margins, &rs, target)
        .expect("pulse tradeoff")
    {
        println!(
            "pulse,{:.2},{:.4},{}",
            pt.margin,
            pt.yield_loss,
            pt.r_at_target
                .map(|r| format!("{r:.4e}"))
                .unwrap_or_else(|| "unreached".into())
        );
    }
}
