//! Figs. 4/5: faulty vs fault-free waveforms for a **resistive bridge**
//! between the victim stage output and a steady aggressor (Fig. 4's
//! circuit). At a resistance above the critical value the victim still
//! reaches its logic levels statically, but the pulse is incomplete and
//! dies within a few logic levels (Fig. 5).
//!
//! Output: CSV with time and per-stage voltages for both circuits.

use pulsar_analog::Polarity;
use pulsar_bench::bridge_put;
use pulsar_core::PathInstance as _;

fn main() {
    let put = bridge_put();
    let w_in = 450e-12;
    let r = 4e3;

    let mut faulty = put.instantiate_nominal(r);
    faulty
        .set_resistance(r)
        .expect("fault present by construction");
    let (fo, fres) = faulty
        .built_path()
        .propagate_pulse_traced(w_in, Polarity::PositiveGoing, None)
        .expect("faulty transient");

    let techs = vec![put.tech; put.spec.len()];
    let mut clean = put.instantiate_fault_free(&techs);
    let (co, cres) = clean
        .built_path()
        .propagate_pulse_traced(w_in, Polarity::PositiveGoing, None)
        .expect("fault-free transient");

    println!(
        "# Fig 5 reproduction: bridge to steady-low aggressor, R = {r:.0} ohm, w_in = {w_in:.3e} s"
    );
    println!(
        "# faulty stage widths: {:?}",
        fo.stage_widths
            .iter()
            .map(|w| format!("{w:.3e}"))
            .collect::<Vec<_>>()
    );
    println!(
        "# clean  stage widths: {:?}",
        co.stage_widths
            .iter()
            .map(|w| format!("{w:.3e}"))
            .collect::<Vec<_>>()
    );

    let stages = faulty.built_path().stage_outputs().to_vec();
    let input = faulty.built_path().input();
    let cstages = clean.built_path().stage_outputs().to_vec();
    let cinput = clean.built_path().input();

    print!("t,Vin_faulty");
    for i in 0..stages.len() {
        print!(",Vs{i}_faulty");
    }
    print!(",Vin_clean");
    for i in 0..cstages.len() {
        print!(",Vs{i}_clean");
    }
    println!();

    let times = fres.times().to_vec();
    for (k, &t) in times.iter().enumerate() {
        if k % 8 != 0 {
            continue;
        }
        print!("{t:.5e},{:.4}", fres.trace(input).values()[k]);
        for &s in &stages {
            print!(",{:.4}", fres.trace(s).values()[k]);
        }
        print!(",{:.4}", cres.trace(cinput).value_at(t));
        for &s in &cstages {
            print!(",{:.4}", cres.trace(s).value_at(t));
        }
        println!();
    }
}
