//! Fig. 6: DF-testing coverage `C_del(R)` for an external resistive open
//! at the output of the path's second gate, at applied clock periods
//! T ∈ {0.9, 1.0, 1.1}·T₀, over a Monte Carlo sample at 10 % sigma.
//!
//! Output: CSV `R, C_del(0.9T0), C_del(T0), C_del(1.1T0)`.

use pulsar_bench::{csv_row, log_sweep, rop_put, ExpParams};
use pulsar_core::DfStudy;

fn main() {
    let p = ExpParams::from_env(48);
    let study = DfStudy::new(rop_put(), p.mc());
    let cal = study.calibrate().expect("fault-free calibration");
    let rs = log_sweep(300.0, 400e3, 13);
    let factors = [0.9, 1.0, 1.1];
    let curves = study.coverage(&cal, &rs, &factors).expect("coverage sweep");

    println!("# Fig 6 reproduction: C_del(R), external ROP at stage 1");
    println!(
        "# samples = {}, seed = {}, sigma = 10%, T0 = {:.4e} s",
        p.samples, p.seed, cal.t0
    );
    println!("R_ohms,Cdel_0.9T0,Cdel_1.0T0,Cdel_1.1T0");
    for (i, r) in rs.iter().enumerate() {
        csv_row(
            format!("{r:.4e}"),
            &[
                curves[0].coverage[i],
                curves[1].coverage[i],
                curves[2].coverage[i],
            ],
        );
    }
}
