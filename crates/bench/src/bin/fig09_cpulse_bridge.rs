//! Fig. 9: pulse-test coverage `C_pulse(R)` for the bridge of Fig. 8.
//! The injected pulse remains dampened far beyond the resistance range
//! where the bridge's *transition* delay has already become negligible —
//! the regime where the pulse method clearly beats DF testing.
//!
//! Output: CSV `R, C_pulse(0.9ωth), C_pulse(ωth), C_pulse(1.1ωth)`.

use pulsar_analog::Polarity;
use pulsar_bench::{bridge_put, csv_row, log_sweep, ExpParams};
use pulsar_core::PulseStudy;

fn main() {
    let p = ExpParams::from_env(48);
    let study = PulseStudy::new(bridge_put(), p.mc(), Polarity::PositiveGoing);
    let cal = study.calibrate().expect("pulse calibration");
    let rs = log_sweep(800.0, 60e3, 13);
    let factors = [0.9, 1.0, 1.1];
    let curves = study.coverage(&cal, &rs, &factors).expect("coverage sweep");

    println!("# Fig 9 reproduction: C_pulse(R), bridge (steady-low aggressor) at stage 1");
    println!(
        "# samples = {}, seed = {}, sigma = 10%, w_in0 = {:.4e} s, w_th0 = {:.4e} s",
        p.samples, p.seed, cal.w_in, cal.w_th
    );
    println!("R_ohms,Cpulse_0.9wth,Cpulse_1.0wth,Cpulse_1.1wth");
    for (i, r) in rs.iter().enumerate() {
        csv_row(
            format!("{r:.4e}"),
            &[
                curves[0].coverage[i],
                curves[1].coverage[i],
                curves[2].coverage[i],
            ],
        );
    }
}
