//! Extension experiment: a full test-generation campaign over the
//! C432-class benchmark — the "large combinational networks" application
//! the paper's conclusion announces. Probes every fault site, reports the
//! sensitizable fraction, the pattern count and the site-level coverage
//! profile as a function of defect resistance.
//!
//! Output: campaign summary + CSV coverage profile.

use pulsar_bench::{log_sweep, ExpParams};
use pulsar_cells::Tech;
use pulsar_core::{
    all_branch_faults, compact_patterns, fault_simulate, Campaign, PulsePattern, SiteOutcome,
};
use pulsar_logic::c432_like;
use pulsar_timing::{calibrate_inverter, TimingLibrary};

fn main() {
    let p = ExpParams::from_env(1); // here: the site stride
    let nl = c432_like();
    let lib = match calibrate_inverter(&Tech::generic_180nm()) {
        Ok(inv) => TimingLibrary::calibrated(inv),
        Err(e) => {
            eprintln!("calibration failed ({e}); using the generic library");
            TimingLibrary::generic()
        }
    };

    let campaign = Campaign {
        stride: p.samples.max(1),
        ..Campaign::default()
    };
    let report = campaign.run(&nl, &lib).expect("campaign");

    println!(
        "# campaign over the C432-like benchmark (stride {})",
        campaign.stride
    );
    for line in report.summary().lines() {
        println!("# {line}");
    }

    println!("R_ohms,site_coverage");
    for r in log_sweep(500.0, 2e6, 18) {
        println!("{r:.4e},{:.4}", report.coverage_at(r));
    }

    // Fault-simulate the generated pattern set against every fan-out
    // branch at a severe defect (the paper's "small amount of test data"
    // argument: per-site patterns sweep up many other faults too).
    let patterns: Vec<PulsePattern> = report
        .sites
        .iter()
        .filter_map(|(_, o)| match o {
            SiteOutcome::Planned(p) => Some(PulsePattern::from_plan(&nl, p)),
            _ => None,
        })
        .collect();
    // Vector-load compaction (§5 application issues): plans with
    // compatible vectors and disjoint cones share one scan load.
    let plans: Vec<_> = report
        .sites
        .iter()
        .filter_map(|(_, o)| match o {
            SiteOutcome::Planned(p) => Some(p.clone()),
            _ => None,
        })
        .collect();
    let sessions = compact_patterns(&nl, &plans);
    println!(
        "# compaction: {} plans -> {} vector-load sessions",
        plans.len(),
        sessions.len()
    );

    let faults = all_branch_faults(&nl);
    match fault_simulate(&nl, &lib, &patterns, &faults, 2e-9) {
        Ok(fsim) => {
            println!(
                "# fault simulation: {} patterns x {} branch faults, coverage {:.3}",
                patterns.len(),
                faults.len(),
                fsim.coverage()
            );
            let best = (0..patterns.len())
                .map(|p| fsim.detections_of_pattern(p))
                .max()
                .unwrap_or(0);
            println!("# most productive pattern detects {best} faults");
        }
        Err(e) => eprintln!("fault simulation failed: {e}"),
    }
}
