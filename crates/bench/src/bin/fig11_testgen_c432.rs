//! Fig. 11: test generation on the C432-class benchmark. For external
//! ROP sites across the circuit, compute each site's best test plan —
//! `(ω_in, ω_th)` chosen by the region-3 rule — and the minimum
//! detectable resistance `R_min`. The paper's scatter (circle radius =
//! R_min over the (ω_in, ω_th) plane) shows the best paths live at low
//! `ω_in`/`ω_th`.
//!
//! Output: one CSV row per fault site's best plan, plus a summary of the
//! overall best path.

use pulsar_bench::ExpParams;
use pulsar_cells::Tech;
use pulsar_core::{plan_for_site, CoreError, TestgenConfig};
use pulsar_logic::c432_like;
use pulsar_timing::{calibrate_inverter, TimingLibrary};

fn main() {
    let p = ExpParams::from_env(40); // here: number of fault sites probed
    let nl = c432_like();
    let tech = Tech::generic_180nm();
    let lib = match calibrate_inverter(&tech) {
        Ok(inv) => TimingLibrary::calibrated(inv),
        Err(e) => {
            eprintln!("calibration failed ({e}); falling back to the generic library");
            TimingLibrary::generic()
        }
    };
    let cfg = TestgenConfig {
        max_paths: 96,
        ..TestgenConfig::default()
    };

    println!("# Fig 11 reproduction: per-site best pulse-test plan, C432-like benchmark");
    println!(
        "# sites probed = {}, paths/site cap = {}",
        p.samples, cfg.max_paths
    );
    println!("site,path_len,polarity,w_in_s,w_th_s,r_min_ohms");

    let mut best: Option<(String, f64, f64, f64)> = None;
    let mut skipped = 0usize;
    // Spread probed sites across the gate list deterministically.
    let stride = (nl.gate_count() / p.samples.max(1)).max(1);
    for gi in (0..nl.gate_count()).step_by(stride).take(p.samples) {
        let site = nl.gates()[gi].output;
        match plan_for_site(&nl, site, &lib, &cfg) {
            Ok(plans) => {
                let plan = &plans[0];
                let rmin = plan.r_min.unwrap_or(f64::INFINITY);
                println!(
                    "{},{},{:?},{:.4e},{:.4e},{:.4e}",
                    nl.signal_name(site),
                    plan.path.len(),
                    plan.polarity,
                    plan.w_in,
                    plan.w_th,
                    rmin
                );
                if plan.r_min.is_some() && best.as_ref().map(|b| rmin < b.3).unwrap_or(true) {
                    best = Some((nl.signal_name(site).to_owned(), plan.w_in, plan.w_th, rmin));
                }
            }
            Err(CoreError::NoSensitizablePath { .. }) => skipped += 1,
            Err(e) => {
                eprintln!("site {}: {e}", nl.signal_name(site));
                skipped += 1;
            }
        }
    }

    println!("# skipped sites (unsensitizable): {skipped}");
    match best {
        Some((site, w_in, w_th, rmin)) => println!(
            "# best path: site {site}, w_in = {w_in:.4e} s, w_th = {w_th:.4e} s, R_min = {rmin:.4e} ohm"
        ),
        None => println!("# no detectable site in the probed set"),
    }
}
