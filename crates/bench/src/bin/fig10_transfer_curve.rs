//! Fig. 10: the pulse-width transfer `w_out = f_p(w_in)` of a 7-gate
//! path — the nominal curve plus Monte Carlo clouds at a handful of
//! injected widths (0.30–0.50 ns in the paper). The attenuation region's
//! large spread is why `ω_in` must sit at the start of region 3.
//!
//! Output: the nominal curve as CSV, then one block of per-sample output
//! widths per probed `w_in`.

use pulsar_analog::Polarity;
use pulsar_bench::{csv_row, rop_put, ExpParams};
use pulsar_core::PulseStudy;

fn main() {
    let p = ExpParams::from_env(32);
    let study = PulseStudy::new(rop_put(), p.mc(), Polarity::PositiveGoing);

    let curve = study.nominal_curve().expect("nominal transfer curve");
    println!("# Fig 10 reproduction: w_out = f(w_in), fault-free 7-gate path");
    println!(
        "# samples per probe = {}, seed = {}, sigma = 10%",
        p.samples, p.seed
    );
    println!("section,w_in_s,w_out_s");
    for (wi, wo) in curve.w_in.iter().zip(&curve.w_out) {
        csv_row("nominal", &[*wi, *wo]);
    }

    // Monte Carlo clouds at the paper's probe widths (scaled into the
    // generic technology's attenuation/asymptotic span).
    let knee = curve.region3_start(0.08, 0.0).unwrap_or(0.4e-9);
    let probes: Vec<f64> = [-0.10e-9, -0.05e-9, 0.0, 0.05e-9, 0.10e-9]
        .iter()
        .map(|d| (knee + d).max(40e-12))
        .collect();
    for w_in in probes {
        // Fixed injected width: Fig. 10 isolates the path's own spread.
        let wouts = study.fault_free_wouts_fixed_width(w_in).expect("MC probe");
        for w_out in wouts {
            csv_row("mc", &[w_in, w_out]);
        }
    }
}
