//! Fig. 3: faulty vs fault-free waveforms for an **external resistive
//! open** (R = 8 kΩ on the fan-out branch B → B·C). Both edges of the
//! branch signal slow down; a pulse comparable to the degraded transition
//! time becomes incomplete and is dampened downstream.
//!
//! Output: CSV with time and per-stage voltages for both circuits.

use pulsar_analog::Polarity;
use pulsar_bench::rop_put;
use pulsar_core::PathInstance as _;

fn main() {
    let put = rop_put();
    // A pulse comparable to the degraded branch transition time (the
    // paper's "behavior 2"): the second edge starts before the first is
    // exhausted, leaving an incomplete pulse that dies downstream.
    let w_in = 250e-12;
    let r = 8e3;

    let mut faulty = put.instantiate_nominal(r);
    faulty
        .set_resistance(r)
        .expect("fault present by construction");
    let (fo, fres) = faulty
        .built_path()
        .propagate_pulse_traced(w_in, Polarity::PositiveGoing, None)
        .expect("faulty transient");

    let techs = vec![put.tech; put.spec.len()];
    let mut clean = put.instantiate_fault_free(&techs);
    let (co, cres) = clean
        .built_path()
        .propagate_pulse_traced(w_in, Polarity::PositiveGoing, None)
        .expect("fault-free transient");

    println!("# Fig 3 reproduction: external ROP on the B->B.C branch, R = {r:.0} ohm, w_in = {w_in:.3e} s");
    println!(
        "# faulty stage widths: {:?}",
        fo.stage_widths
            .iter()
            .map(|w| format!("{w:.3e}"))
            .collect::<Vec<_>>()
    );
    println!(
        "# clean  stage widths: {:?}",
        co.stage_widths
            .iter()
            .map(|w| format!("{w:.3e}"))
            .collect::<Vec<_>>()
    );

    // Include the degraded branch node B·C itself (named "u1.bc").
    let bc = faulty
        .built_path()
        .circuit()
        .find_node("u1.bc")
        .expect("external ROP creates the branch node");
    let stages = faulty.built_path().stage_outputs().to_vec();
    let input = faulty.built_path().input();
    let cstages = clean.built_path().stage_outputs().to_vec();
    let cinput = clean.built_path().input();

    print!("t,Vin_faulty,Vbc_faulty");
    for i in 0..stages.len() {
        print!(",Vs{i}_faulty");
    }
    print!(",Vin_clean");
    for i in 0..cstages.len() {
        print!(",Vs{i}_clean");
    }
    println!();

    let times = fres.times().to_vec();
    for (k, &t) in times.iter().enumerate() {
        if k % 8 != 0 {
            continue;
        }
        print!(
            "{t:.5e},{:.4},{:.4}",
            fres.trace(input).values()[k],
            fres.trace(bc).values()[k]
        );
        for &s in &stages {
            print!(",{:.4}", fres.trace(s).values()[k]);
        }
        print!(",{:.4}", cres.trace(cinput).value_at(t));
        for &s in &cstages {
            print!(",{:.4}", cres.trace(s).value_at(t));
        }
        println!();
    }
}
