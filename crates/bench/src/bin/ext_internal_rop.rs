//! Extension experiment: coverage comparison for an **internal** resistive
//! open (pull-up). The paper runs Figs. 6/7 on the external open because
//! it is "the worst case for our method" (§4); this experiment completes
//! the picture: for internal opens — which attack a single edge and
//! shrink the pulse immediately (Fig. 2) — the pulse test's detectable
//! range extends well below the DF baseline's.
//!
//! Output: CSV `R, C_del(T0), C_pulse(wth0)` plus both pulse kinds'
//! coverage (kind *l* rides the slowed rising edge here, kind *h* the
//! unaffected one, so the kinds split — the §5 pulse-kind selection
//! argument in data).

use pulsar_analog::Polarity;
use pulsar_bench::{internal_rop_put, log_sweep, ExpParams};
use pulsar_core::{DfStudy, PulseStudy};

fn main() {
    let p = ExpParams::from_env(48);
    let rs = log_sweep(300.0, 100e3, 13);

    let df = DfStudy::new(internal_rop_put(), p.mc());
    let dcal = df.calibrate().expect("df calibration");
    let dcov = df.coverage(&dcal, &rs, &[1.0]).expect("df coverage");

    let pulse_l = PulseStudy::new(internal_rop_put(), p.mc(), Polarity::PositiveGoing);
    let lcal = pulse_l.calibrate().expect("pulse calibration (l)");
    let lcov = pulse_l
        .coverage(&lcal, &rs, &[1.0])
        .expect("pulse coverage (l)");

    let pulse_h = PulseStudy::new(internal_rop_put(), p.mc(), Polarity::NegativeGoing);
    let hcal = pulse_h.calibrate().expect("pulse calibration (h)");
    let hcov = pulse_h
        .coverage(&hcal, &rs, &[1.0])
        .expect("pulse coverage (h)");

    println!("# internal pull-up ROP at stage 1: DF vs pulse, both pulse kinds");
    println!("# samples = {}, seed = {}, sigma = 10%", p.samples, p.seed);
    println!(
        "# T0 = {:.3e} s; w_in0(l) = {:.3e} s; w_in0(h) = {:.3e} s",
        dcal.t0, lcal.w_in, hcal.w_in
    );
    println!("R_ohms,Cdel_T0,Cpulse_l,Cpulse_h");
    for (i, r) in rs.iter().enumerate() {
        println!(
            "{r:.4e},{:.4},{:.4},{:.4}",
            dcov[0].coverage[i], lcov[0].coverage[i], hcov[0].coverage[i]
        );
    }
}
