//! Extension experiment: three-way comparison on the external ROP —
//! reduced-clock DF testing (§4 baseline), the self-timed output-ordering
//! method (paper ref.\[7\], discussed in §1) and the pulse test. The
//! ordering method needs no clock, but its reference separation —
//! calibrated flip-free over the Monte Carlo sample — is a structural
//! blind spot for small defects, which is the paper's §1 critique.
//!
//! Output: CSV `R, C_del(T0), C_order, C_pulse(wth0)` plus the
//! calibration constants.

use pulsar_analog::Polarity;
use pulsar_bench::{log_sweep, rop_put, ExpParams};
use pulsar_core::{DfStudy, OrderingStudy, PulseStudy};

fn main() {
    let p = ExpParams::from_env(48);
    let rs = log_sweep(300.0, 400e3, 13);

    let df = DfStudy::new(rop_put(), p.mc());
    let dcal = df.calibrate().expect("df calibration");
    let dcov = df.coverage(&dcal, &rs, &[1.0]).expect("df coverage");

    let ord = OrderingStudy::new(rop_put(), p.mc());
    let ocal = ord.calibrate().expect("ordering calibration");
    let ocov = ord.coverage(&ocal, &rs).expect("ordering coverage");

    let pulse = PulseStudy::new(rop_put(), p.mc(), Polarity::PositiveGoing);
    let pcal = pulse.calibrate().expect("pulse calibration");
    let pcov = pulse.coverage(&pcal, &rs, &[1.0]).expect("pulse coverage");

    println!("# three-way method comparison, external ROP at stage 1");
    println!("# samples = {}, seed = {}, sigma = 10%", p.samples, p.seed);
    println!("# df: T0 = {:.3e} s", dcal.t0);
    println!(
        "# ordering: reference = {} stages, flip-free margin = {:.3e} s",
        ocal.ref_stages, ocal.min_margin
    );
    println!(
        "# pulse: w_in0 = {:.3e} s, w_th0 = {:.3e} s",
        pcal.w_in, pcal.w_th
    );
    println!("R_ohms,Cdel_T0,Corder,Cpulse_wth0");
    for (i, r) in rs.iter().enumerate() {
        println!(
            "{r:.4e},{:.4},{:.4},{:.4}",
            dcov[0].coverage[i], ocov.coverage[i], pcov[0].coverage[i]
        );
    }
}
