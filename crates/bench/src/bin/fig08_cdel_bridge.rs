//! Fig. 8: DF-testing coverage `C_del(R)` for an external resistive
//! bridge at the second gate's output. Above the critical resistance the
//! bridge-induced delay collapses quickly with R, and so does `C_del`.
//!
//! Output: CSV `R, C_del(0.9T0), C_del(T0), C_del(1.1T0)`.

use pulsar_bench::{bridge_put, csv_row, log_sweep, ExpParams};
use pulsar_core::{critical_resistance, DfStudy};

fn main() {
    let p = ExpParams::from_env(48);
    let put = bridge_put();
    // Nominal critical resistance: the sweep's physical left edge (the
    // paper reports ≈ 2 kΩ for its bridge).
    match critical_resistance(&put, 50.0, 20e3, 25.0) {
        Ok(Some(rc)) => println!("# nominal critical resistance = {rc:.0} ohm"),
        Ok(None) => println!("# nominal critical resistance above 20 kohm"),
        Err(e) => eprintln!("critical-resistance search failed: {e}"),
    }
    let study = DfStudy::new(put, p.mc());
    let cal = study.calibrate().expect("fault-free calibration");
    let rs = log_sweep(800.0, 60e3, 13);
    let factors = [0.9, 1.0, 1.1];
    let curves = study.coverage(&cal, &rs, &factors).expect("coverage sweep");

    println!("# Fig 8 reproduction: C_del(R), bridge (steady-low aggressor) at stage 1");
    println!(
        "# samples = {}, seed = {}, sigma = 10%, T0 = {:.4e} s",
        p.samples, p.seed, cal.t0
    );
    println!("R_ohms,Cdel_0.9T0,Cdel_1.0T0,Cdel_1.1T0");
    for (i, r) in rs.iter().enumerate() {
        csv_row(
            format!("{r:.4e}"),
            &[
                curves[0].coverage[i],
                curves[1].coverage[i],
                curves[2].coverage[i],
            ],
        );
    }
}
