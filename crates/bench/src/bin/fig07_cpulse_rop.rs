//! Fig. 7: pulse-test coverage `C_pulse(R)` for the same external
//! resistive open as Fig. 6, at sensing thresholds
//! ω_th ∈ {0.9, 1.0, 1.1}·ω_th⁰.
//!
//! Output: CSV `R, C_pulse(0.9ωth), C_pulse(ωth), C_pulse(1.1ωth)`.

use pulsar_analog::Polarity;
use pulsar_bench::{csv_row, log_sweep, rop_put, ExpParams};
use pulsar_core::PulseStudy;

fn main() {
    let p = ExpParams::from_env(48);
    let study = PulseStudy::new(rop_put(), p.mc(), Polarity::PositiveGoing);
    let cal = study.calibrate().expect("pulse calibration");
    let rs = log_sweep(300.0, 400e3, 13);
    let factors = [0.9, 1.0, 1.1];
    let curves = study.coverage(&cal, &rs, &factors).expect("coverage sweep");

    println!("# Fig 7 reproduction: C_pulse(R), external ROP at stage 1");
    println!(
        "# samples = {}, seed = {}, sigma = 10%, w_in0 = {:.4e} s, w_th0 = {:.4e} s",
        p.samples, p.seed, cal.w_in, cal.w_th
    );
    println!("R_ohms,Cpulse_0.9wth,Cpulse_1.0wth,Cpulse_1.1wth");
    for (i, r) in rs.iter().enumerate() {
        csv_row(
            format!("{r:.4e}"),
            &[
                curves[0].coverage[i],
                curves[1].coverage[i],
                curves[2].coverage[i],
            ],
        );
    }
}
