//! Extension experiment: the method triangle for bridging faults.
//!
//! Classical detection of bridges is I_DDQ (paper §2: bridges change "the
//! static and dynamic current"), but background leakage caps its
//! resolution in deep submicron. This experiment sweeps one bridge's
//! resistance through all three methods — I_DDQ (with a realistic 2 mA
//! fluctuating background), reduced-clock DF and the pulse test — to show
//! where each hands over to the next.
//!
//! Output: CSV `R, C_iddq, C_del(T0), C_pulse(wth0)`.

use pulsar_analog::Polarity;
use pulsar_bench::{bridge_put, log_sweep, ExpParams};
use pulsar_core::{DfStudy, IddqStudy, PulseStudy};

fn main() {
    let p = ExpParams::from_env(48);
    let rs = log_sweep(300.0, 60e3, 13);

    let iddq = IddqStudy::new(bridge_put(), p.mc());
    let th = iddq.calibrate().expect("iddq calibration");
    let icov = iddq.coverage(th, &rs).expect("iddq coverage");

    let df = DfStudy::new(bridge_put(), p.mc());
    let dcal = df.calibrate().expect("df calibration");
    let dcov = df.coverage(&dcal, &rs, &[1.0]).expect("df coverage");

    let pulse = PulseStudy::new(bridge_put(), p.mc(), Polarity::PositiveGoing);
    let pcal = pulse.calibrate().expect("pulse calibration");
    let pcov = pulse.coverage(&pcal, &rs, &[1.0]).expect("pulse coverage");

    println!("# bridge method triangle: iddq vs reduced-clock DF vs pulse");
    println!(
        "# samples = {}, seed = {}, sigma = 10%, background = {:.1e} A, iddq threshold = {:.3e} A",
        p.samples, p.seed, iddq.background_mean, th
    );
    println!("R_ohms,Ciddq,Cdel_T0,Cpulse_wth0");
    for (i, r) in rs.iter().enumerate() {
        println!(
            "{r:.4e},{:.4},{:.4},{:.4}",
            icov.coverage[i], dcov[0].coverage[i], pcov[0].coverage[i]
        );
    }
}
