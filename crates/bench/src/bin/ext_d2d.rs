//! Extension experiment: die-to-die vs within-die variation (the paper's
//! ref.\[8\], Bowman et al., and the §3 argument).
//!
//! §3 claims "the standard deviation on path's propagation delay is
//! larger than that on the size of pulses which can be propagated" —
//! path delay *accumulates* per-stage fluctuations while the pulse width
//! only carries per-stage *edge-skew differences*. Correlated
//! (die-to-die) variation makes the contrast starker: delays of
//! correlated gates add coherently (σ ∝ n), the skew differences still
//! largely cancel. This experiment measures both observables' relative
//! spread under pure within-die and Bowman-split variation, and the
//! quality each method retains after zero-false-positive calibration.
//!
//! Output: CSV `model, sigma_delay_rel, sigma_width_rel, df_r50, pulse_r50`.

use pulsar_analog::Polarity;
use pulsar_bench::{log_sweep, rop_put, ExpParams};
use pulsar_core::{DfStudy, McConfig, PulseStudy, VariationModel};
use pulsar_mc::Summary;

fn crossover(rs: &[f64], cov: &[f64]) -> Option<f64> {
    rs.iter()
        .zip(cov)
        .find(|(_, c)| **c >= 0.5)
        .map(|(r, _)| *r)
}

fn main() {
    let p = ExpParams::from_env(64);
    let rs = log_sweep(300.0, 400e3, 15);

    println!("# within-die vs die-to-die variation: observable spreads and method quality");
    println!("# samples = {}, seed = {}", p.samples, p.seed);
    println!("model,sigma_delay_rel,sigma_width_rel,df_r50_ohms,pulse_r50_ohms");

    for (name, variation) in [
        ("wid_10pct", VariationModel::paper()),
        ("bowman_7_7", VariationModel::paper_d2d()),
    ] {
        let mc = McConfig {
            variation,
            ..p.mc()
        };

        let df = DfStudy::new(rop_put(), mc.clone());
        let needs = df.fault_free_needs().expect("fault-free delays");
        let s_delay = Summary::of(&needs);
        let dcal = df.calibrate().expect("df calibration");
        let dcov = &df.coverage(&dcal, &rs, &[1.0]).expect("df coverage")[0].coverage;

        let pulse = PulseStudy::new(rop_put(), mc, Polarity::PositiveGoing);
        let pcal = pulse.calibrate().expect("pulse calibration");
        let wouts = pulse
            .fault_free_wouts_fixed_width(pcal.w_in)
            .expect("fault-free widths");
        let s_width = Summary::of(&wouts);
        let pcov = &pulse.coverage(&pcal, &rs, &[1.0]).expect("pulse coverage")[0].coverage;

        println!(
            "{name},{:.4},{:.4},{},{}",
            s_delay.sigma / s_delay.mean,
            s_width.sigma / s_width.mean,
            crossover(&rs, dcov)
                .map(|r| format!("{r:.4e}"))
                .unwrap_or_else(|| "unreached".into()),
            crossover(&rs, pcov)
                .map(|r| format!("{r:.4e}"))
                .unwrap_or_else(|| "unreached".into()),
        );
    }
    println!("# sigma_delay_rel vs sigma_width_rel is the paper's §3 claim, per variation model");
}
