//! Hot-path micro-benchmark: workspace-reusing solver vs the preserved
//! allocation-per-step baseline engine, plus the sparse MNA engine vs the
//! dense reuse engine, all measured in the same process.
//!
//! Ten kernels are timed (median wall-clock ns/op plus a heap-allocation
//! count from a counting global allocator):
//!
//! 1. **single_transient** — one pulse propagation through the paper's
//!    7-gate external-ROP path.
//! 2. **transfer_point** — one transfer-curve point: retune the defect
//!    resistance, re-run the pulse. The workspace (and, in a separate
//!    variant, the DC warm start) amortizes across the sweep.
//! 3. **mc_coverage_point** — one 64-sample Monte Carlo coverage point
//!    at threads = 1 / 2 / 4.
//! 4. **sparse_single_transient** — one pulse transient through 8-, 16-
//!    and 32-gate inverter chains: the PR2 dense reuse engine
//!    (`ForceDense`) vs the sparse engine with cached symbolic
//!    factorization (`ForceSparse`, exact Newton — Jacobian reuse is an
//!    opt-in robustness escalation and is exercised by the test suite,
//!    not the timing arms).
//! 5. **sparse_mc_coverage** — the Monte Carlo coverage point on the
//!    32-gate chain at 1 thread, symbolic analysis primed once and
//!    adopted by every sample.
//! 6. **obs_overhead** — the 7-gate MC coverage point with the
//!    observability recorder absent, installed-but-disabled, and
//!    enabled (per-sample fork + retire, the `McConfig` wiring). All
//!    three arms are asserted bit-identical before timing: recording
//!    never changes arithmetic. Written to `BENCH_pr5.json`
//!    (`--obs-only` runs just this kernel and writes only that file).
//! 7. **checkpoint_overhead** — the 7-gate MC coverage point through the
//!    durable entry point with no checkpoint vs a live checkpoint file
//!    (create + one fsync-free append-and-flush per sample). Both arms
//!    are asserted bit-identical before timing: durability never changes
//!    arithmetic. Written to `BENCH_pr6.json` (`--durable-only` runs
//!    just this kernel and writes only that file).
//! 8. **batched_mc_coverage** — the PR7 scoreboard: `PulseStudy`'s
//!    faulty-width MC coverage point on a dense-eligible 8-gate chain
//!    (12 MNA unknowns, under the sparse crossover, so every lane runs
//!    the structure-of-arrays batch engine instead of ejecting), scalar
//!    retry ladder vs the batched engine at the auto width. Both arms
//!    are asserted bit-identical sample-for-sample — and across 1 vs 2
//!    threads — before timing, and a recorder-enabled probe asserts the
//!    batch engine actually solved lanes with zero ejections, so the
//!    timing cannot silently measure the scalar fallback. Written to
//!    `BENCH_pr7.json` (`--batched-only` runs just this kernel and
//!    writes only that file).
//! 9. **adaptive_mc_coverage** — the PR9 scoreboard: a full
//!    `DfStudy` coverage-curve sweep (12 log-spaced resistances × 3
//!    clock factors on the 8-gate chain), fixed N=200 samples per grid
//!    point vs the adaptive early-stopping engine asked for the same
//!    worst-case Wilson half-width a fixed run guarantees. The adaptive
//!    arm is asserted bit-identical across 1 vs 2 threads before
//!    timing, and every per-point `{requested, achieved}` half-width is
//!    asserted from the *rendered obs manifest* (parsed back with the
//!    crate's own JSON parser), not from in-memory state. Written to
//!    `BENCH_pr9.json` (`--adaptive-only` runs just this kernel and
//!    writes only that file).
//! 10. **serve_submission** — the PR10 scoreboard: an in-process
//!     `pulsar-serve` daemon answering repeated study submissions over
//!     its Unix socket. The *cold* arm submits a fresh config digest per
//!     round (every cache misses, the study computes); the *warm* arm
//!     resubmits an identical digest (whole-result cache hit, zero
//!     transient solves — asserted from the daemon's own stats
//!     counters). The daemon's answer is asserted byte-identical to the
//!     one-shot `pulsar study` CLI before timing. Written to
//!     `BENCH_pr10.json` (`--serve-only` runs just this kernel and
//!     writes only that file).
//!
//! The baseline is not a guess: `BuiltPath::set_workspace_reuse(false)`
//! routes every simulation through `Circuit::transient_baseline`, the
//! pre-optimization engine preserved verbatim (per-call allocations,
//! indexed scalar LU). Dense arms are asserted **bit-identical** to that
//! baseline before any timing; the sparse arm is asserted to agree within
//! solver tolerance (measured pulse widths within 2 ps), because the
//! permuted factorization legitimately stops at a slightly different
//! point inside the Newton convergence ball.
//!
//! Baseline and optimized ops are *interleaved* within one measurement
//! loop (A, B, A, B, ...) and summarized by their medians: on a shared
//! host, machine speed drifts more between two back-to-back phases than
//! the effect under measurement, and interleaving makes both engines see
//! the same drift.
//!
//! `--smoke` runs a tiny configuration for CI (no JSON output); the full
//! run writes `BENCH_pr4.json` at the repository root and records whether
//! the speedup targets (PR2's ≥2× MC aspiration; PR4's ≥2× on the
//! 32-gate transient and ≥1.5× on the sparse MC kernel) were met on this
//! machine (the measured numbers are reported either way). With
//! `PULSAR_FORCE_DENSE=1` in the environment the sparse arms silently run
//! dense; the kernels then assert bitwise identity instead of a speedup.

// Kernel 5 deliberately reads the process-wide legacy counter view: it
// asserts totals across an MC fan-out whose samples never share a
// workspace, which is exactly what the shim still exists for.
#[allow(deprecated)]
use pulsar_analog::solver_counters;
use pulsar_analog::{ObsCounter, Polarity, Recorder, SolverMode, SymbolicCache};
use pulsar_bench::{auto_batch, log_sweep, rop_put};
use pulsar_cells::{PathSpec, PulseOutcome, Tech};
use pulsar_core::{
    AdaptivePolicy, CancelToken, Checkpoint, CheckpointSpec, DefectKind, DfStudy, IntervalRule,
    McConfig, PathInstance, PathUnderTest, PulseStudy, VariationModel,
};
use pulsar_mc::MonteCarlo;
use pulsar_obs::{json::Json, RunManifest};
use pulsar_serve::{
    Client as ServeClient, Daemon as ServeDaemon, JobSpec as ServeJobSpec, ServeConfig,
    StudyKind as ServeStudyKind,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counts heap allocations (alloc + realloc calls) as an allocation-rate
/// proxy; timing-neutral enough for a relative comparison since both
/// engines run under the same allocator.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation unchanged to the system allocator;
// the counter is a relaxed atomic with no effect on allocation behavior.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // ordering: Relaxed — pure event counter read on the same
        // thread that drove the measured ops; no publication.
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // ordering: Relaxed — same single-threaded event counter.
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn median(mut ns: Vec<u64>) -> u64 {
    ns.sort_unstable();
    ns[ns.len() / 2]
}

/// Allocation calls made by one invocation of `f` (deterministic per op
/// once warm, so a single sample suffices).
fn allocs_per_op(mut f: impl FnMut()) -> u64 {
    // ordering: Relaxed — both reads are on the thread that ran `f`.
    let a0 = ALLOC_CALLS.load(Ordering::Relaxed);
    f();
    ALLOC_CALLS.load(Ordering::Relaxed) - a0 // ordering: see above
}

/// Times `baseline` and `reuse` *interleaved* (one of each per round) for
/// `iters` rounds and returns the medians. Interleaving is what makes the
/// ratio trustworthy on a drifting shared host: both engines sample the
/// same machine-speed trajectory.
fn measure_pair(iters: usize, mut baseline: impl FnMut(), mut reuse: impl FnMut()) -> KernelResult {
    assert!(iters >= 1);
    // Warm-up round: page in code, fill the workspace buffers.
    baseline();
    reuse();
    let baseline_allocs = allocs_per_op(&mut baseline);
    let reuse_allocs = allocs_per_op(&mut reuse);
    let mut bns = Vec::with_capacity(iters);
    let mut rns = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        baseline();
        bns.push(t.elapsed().as_nanos() as u64);
        let t = Instant::now();
        reuse();
        rns.push(t.elapsed().as_nanos() as u64);
    }
    KernelResult {
        baseline_ns: median(bns),
        baseline_allocs,
        reuse_ns: median(rns),
        reuse_allocs,
    }
}

fn bits(outcome: &PulseOutcome) -> (u64, u64, Vec<u64>) {
    (
        outcome.output_width.to_bits(),
        outcome.peak_fraction.to_bits(),
        outcome.stage_widths.iter().map(|w| w.to_bits()).collect(),
    )
}

const W_IN: f64 = 450e-12;
const R_POINT: f64 = 8e3;
const SWEEP: [f64; 4] = [1e3, 3e3, 8e3, 20e3];

/// Agreement bound between the sparse and dense engines on a measured
/// pulse width. Both engines converge every Newton solve to VNTOL, but a
/// chord (Jacobian-reuse) step stops at a different point inside the
/// convergence ball; the resulting vdd/2 crossing shift is well under a
/// picosecond (see `crates/analog/tests/sparse_solver.rs`).
const TOL_WIDTH: f64 = 2e-12;

struct KernelResult {
    baseline_ns: u64,
    baseline_allocs: u64,
    reuse_ns: u64,
    reuse_allocs: u64,
}

impl KernelResult {
    fn speedup(&self) -> f64 {
        self.baseline_ns as f64 / self.reuse_ns as f64
    }
}

/// Kernel 1: one pulse-propagation transient, baseline vs reuse, outputs
/// asserted bit-identical.
fn single_transient(put: &PathUnderTest, iters: usize) -> KernelResult {
    let mut base = put.instantiate_nominal(R_POINT);
    base.built_path().set_workspace_reuse(false);
    let mut fast = put.instantiate_nominal(R_POINT);

    let run = |p: &mut pulsar_core::AnalogPath| {
        p.built_path()
            .propagate_pulse(W_IN, Polarity::PositiveGoing, None)
            .expect("pulse run")
    };
    let ob = run(&mut base);
    let of = run(&mut fast);
    assert_eq!(
        bits(&ob),
        bits(&of),
        "engines disagree on the single-transient kernel"
    );

    measure_pair(
        iters,
        || {
            run(&mut base);
        },
        || {
            run(&mut fast);
        },
    )
}

/// Kernel 2: one transfer-curve point — set the defect resistance, run the
/// pulse — cycling through a resistance sweep so the workspace amortizes.
/// Also times the opt-in DC warm start (tolerance-equal, not bit-equal,
/// so it is compared within solver tolerance instead).
fn transfer_point(put: &PathUnderTest, iters: usize) -> (KernelResult, u64, f64) {
    let mut base = put.instantiate_nominal(SWEEP[0]);
    base.built_path().set_workspace_reuse(false);
    let mut fast = put.instantiate_nominal(SWEEP[0]);
    let mut warm = put.instantiate_nominal(SWEEP[0]);
    warm.built_path().set_dc_warm_start(true);

    let point = |p: &mut pulsar_core::AnalogPath, k: usize| {
        let r = SWEEP[k % SWEEP.len()];
        p.set_resistance(r).expect("sweep resistance");
        p.pulse_width_out(W_IN, Polarity::PositiveGoing)
            .expect("sweep point")
    };
    for k in 0..SWEEP.len() {
        let wb = point(&mut base, k);
        let wf = point(&mut fast, k);
        let ww = point(&mut warm, k);
        assert_eq!(
            wb.to_bits(),
            wf.to_bits(),
            "engines disagree on transfer point {k}"
        );
        assert!(
            (ww - wb).abs() < 2e-12,
            "warm start off-tolerance at point {k}: {ww} vs {wb}"
        );
    }

    // Three arms interleaved per round (the warm-start arm rides in the
    // same loop so its ratio shares the baseline's drift too).
    let (mut kb, mut kf, mut kw) = (0usize, 0usize, 0usize);
    let baseline_allocs = allocs_per_op(|| {
        point(&mut base, kb);
        kb += 1;
    });
    let reuse_allocs = allocs_per_op(|| {
        point(&mut fast, kf);
        kf += 1;
    });
    let mut bns = Vec::with_capacity(iters);
    let mut rns = Vec::with_capacity(iters);
    let mut wns = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        point(&mut base, kb);
        kb += 1;
        bns.push(t.elapsed().as_nanos() as u64);
        let t = Instant::now();
        point(&mut fast, kf);
        kf += 1;
        rns.push(t.elapsed().as_nanos() as u64);
        let t = Instant::now();
        point(&mut warm, kw);
        kw += 1;
        wns.push(t.elapsed().as_nanos() as u64);
    }
    let baseline_ns = median(bns);
    let warm_ns = median(wns);
    (
        KernelResult {
            baseline_ns,
            baseline_allocs,
            reuse_ns: median(rns),
            reuse_allocs,
        },
        warm_ns,
        baseline_ns as f64 / warm_ns as f64,
    )
}

/// One Monte Carlo coverage-point run: `samples` instances of the path at
/// resistance [`R_POINT`], each drawn exactly like
/// `PulseStudy::try_faulty_wouts` draws it, returning output pulse widths.
fn mc_point(
    put: &PathUnderTest,
    variation: &VariationModel,
    samples: usize,
    threads: usize,
    reuse: bool,
) -> Vec<f64> {
    MonteCarlo::new(samples, 2007)
        .with_threads(threads)
        .run(|_, rng| {
            let techs = variation.sample_techs(&put.tech, put.spec.len(), rng);
            let gen_factor = variation.sample_sensor(1.0, rng);
            let mut p = put.instantiate(&techs, R_POINT);
            if !reuse {
                p.built_path().set_workspace_reuse(false);
            }
            p.pulse_width_out(W_IN * gen_factor, Polarity::PositiveGoing)
                .expect("mc sample")
        })
}

struct McThreadResult {
    threads: usize,
    result: KernelResult,
}

/// Kernel 3: the 64-sample coverage point at each thread count, baseline
/// vs reuse, with every sample's output width asserted bit-identical
/// across engines *and* across thread counts.
fn mc_coverage_point(
    put: &PathUnderTest,
    variation: &VariationModel,
    samples: usize,
    thread_counts: &[usize],
    iters: usize,
) -> Vec<McThreadResult> {
    let reference = mc_point(put, variation, samples, 1, true);
    let ref_bits: Vec<u64> = reference.iter().map(|w| w.to_bits()).collect();

    thread_counts
        .iter()
        .map(|&t| {
            for reuse in [false, true] {
                let wouts = mc_point(put, variation, samples, t, reuse);
                let got: Vec<u64> = wouts.iter().map(|w| w.to_bits()).collect();
                assert_eq!(
                    ref_bits, got,
                    "mc kernel diverged (threads={t}, reuse={reuse})"
                );
            }
            let result = measure_pair(
                iters,
                || {
                    mc_point(put, variation, samples, t, false);
                },
                || {
                    mc_point(put, variation, samples, t, true);
                },
            );
            McThreadResult { threads: t, result }
        })
        .collect()
}

/// A straight `n`-stage inverter chain with the paper's external-ROP
/// defect at stage 1 — the scaling axis for the sparse-vs-dense
/// comparison. MNA dimension grows with `n`: 8 gates = 12 unknowns
/// (below the `Auto` crossover), 32 gates = 36 (above it).
fn chain_put(n: usize) -> PathUnderTest {
    PathUnderTest {
        spec: PathSpec::inverter_chain(n),
        defect: DefectKind::ExternalRop,
        stage: 1,
        tech: Tech::generic_180nm(),
    }
}

/// Asserts the sparse arm agrees with the dense arm: bitwise when
/// `PULSAR_FORCE_DENSE=1` collapsed both arms onto the dense engine,
/// within [`TOL_WIDTH`] otherwise.
fn assert_sparse_agrees(dense: &PulseOutcome, sparse: &PulseOutcome, forced: bool, what: &str) {
    if forced {
        assert_eq!(
            bits(dense),
            bits(sparse),
            "PULSAR_FORCE_DENSE=1: both {what} arms ran dense and must agree bitwise"
        );
        return;
    }
    assert!(
        (dense.output_width - sparse.output_width).abs() < TOL_WIDTH,
        "sparse engine off-tolerance on {what}: {} vs {}",
        sparse.output_width,
        dense.output_width
    );
    for (d, s) in dense.stage_widths.iter().zip(&sparse.stage_widths) {
        assert!(
            (d - s).abs() < TOL_WIDTH,
            "sparse stage width off-tolerance on {what}: {s} vs {d}"
        );
    }
}

/// Kernel 4: one pulse transient through an `n`-gate chain, PR2 dense
/// reuse engine vs the sparse engine (exact Newton). The dense arm
/// is first asserted bit-identical to the preserved baseline engine, and
/// the sparse arm asserted within tolerance of the dense arm, before any
/// timing runs. Here "baseline" in the result means the *dense reuse*
/// engine — the thing PR4 claims to beat.
fn sparse_transient(n: usize, iters: usize, forced_dense: bool) -> KernelResult {
    let put = chain_put(n);
    let mut check = put.instantiate_nominal(R_POINT);
    check.built_path().set_workspace_reuse(false);
    let mut dense = put.instantiate_nominal(R_POINT);
    dense.built_path().set_solver_mode(SolverMode::ForceDense);
    // Timed in the default exact-Newton configuration: Jacobian reuse is
    // an opt-in robustness escalation, and at these dimensions (zero-fill
    // factorizations of ~170 nonzeros) the chord iterations it adds cost
    // more than the refactorizations it saves.
    let mut sparse = put.instantiate_nominal(R_POINT);
    sparse.built_path().set_solver_mode(SolverMode::ForceSparse);

    let run = |p: &mut pulsar_core::AnalogPath| {
        p.built_path()
            .propagate_pulse(W_IN, Polarity::PositiveGoing, None)
            .expect("pulse run")
    };
    let oc = run(&mut check);
    let od = run(&mut dense);
    let os = run(&mut sparse);
    assert!(
        od.output_width > 0.0,
        "pulse died in the {n}-gate chain; the kernel would time nothing"
    );
    assert_eq!(
        bits(&oc),
        bits(&od),
        "dense reuse engine diverged from the baseline engine at {n} gates"
    );
    assert_sparse_agrees(&od, &os, forced_dense, &format!("{n}-gate transient"));

    measure_pair(
        iters,
        || {
            run(&mut dense);
        },
        || {
            run(&mut sparse);
        },
    )
}

/// One Monte Carlo coverage-point run on a chain path, with the linear
/// engine per sample chosen by `arm`.
#[derive(Clone, Copy, PartialEq)]
enum McArm {
    /// Preserved allocation-per-step engine (always dense).
    Baseline,
    /// PR2 workspace-reuse engine, pinned dense.
    DenseReuse,
    /// Sparse engine (exact Newton), adopting the primed symbolic.
    Sparse,
}

fn chain_mc_point(
    put: &PathUnderTest,
    variation: &VariationModel,
    symbolic: &Option<SymbolicCache>,
    samples: usize,
    threads: usize,
    arm: McArm,
) -> Vec<f64> {
    MonteCarlo::new(samples, 2007)
        .with_threads(threads)
        .run(|_, rng| {
            let techs = variation.sample_techs(&put.tech, put.spec.len(), rng);
            let gen_factor = variation.sample_sensor(1.0, rng);
            let mut p = put.instantiate(&techs, R_POINT);
            match arm {
                McArm::Baseline => p.built_path().set_workspace_reuse(false),
                McArm::DenseReuse => p.built_path().set_solver_mode(SolverMode::ForceDense),
                McArm::Sparse => {
                    p.built_path().set_solver_mode(SolverMode::ForceSparse);
                    if let Some(c) = symbolic {
                        p.built_path().adopt_symbolic(c);
                    }
                }
            }
            p.pulse_width_out(W_IN * gen_factor, Polarity::PositiveGoing)
                .expect("mc sample")
        })
}

/// Kernel 5: the Monte Carlo coverage point on the 32-gate chain at one
/// thread, dense reuse engine vs sparse + adopted symbolic. Before
/// timing: the dense arm is asserted bit-identical to the baseline
/// engine *and* across 1 vs 2 threads; every sparse sample is asserted
/// within tolerance of its dense twin; and the timed sparse arm is
/// asserted to run **zero** fresh symbolic analyses (the adopted cache
/// covers the whole point) and zero dense fallbacks.
#[allow(deprecated)] // process-wide `solver_counters` view; see the import note
fn sparse_mc_coverage(
    n: usize,
    variation: &VariationModel,
    samples: usize,
    iters: usize,
    forced_dense: bool,
) -> KernelResult {
    let put = chain_put(n);
    // One symbolic analysis for the whole kernel, primed on a nominal
    // instance and shared with every sample.
    let mut nominal = put.instantiate_nominal(R_POINT);
    nominal
        .built_path()
        .set_solver_mode(SolverMode::ForceSparse);
    let symbolic = nominal.built_path().prime_symbolic();
    assert_eq!(
        symbolic.is_none(),
        forced_dense,
        "prime_symbolic must yield a cache exactly when the sparse engine is live"
    );

    let base = chain_mc_point(&put, variation, &symbolic, samples, 1, McArm::Baseline);
    let d1 = chain_mc_point(&put, variation, &symbolic, samples, 1, McArm::DenseReuse);
    let d2 = chain_mc_point(&put, variation, &symbolic, samples, 2, McArm::DenseReuse);
    let base_bits: Vec<u64> = base.iter().map(|w| w.to_bits()).collect();
    let d1_bits: Vec<u64> = d1.iter().map(|w| w.to_bits()).collect();
    let d2_bits: Vec<u64> = d2.iter().map(|w| w.to_bits()).collect();
    assert_eq!(
        base_bits, d1_bits,
        "dense reuse diverged from baseline in MC"
    );
    assert_eq!(
        d1_bits, d2_bits,
        "dense MC arm diverged across thread counts"
    );

    let before = solver_counters();
    let s1 = chain_mc_point(&put, variation, &symbolic, samples, 1, McArm::Sparse);
    let delta = solver_counters().since(&before);
    for (k, (d, s)) in d1.iter().zip(&s1).enumerate() {
        if forced_dense {
            assert_eq!(
                d.to_bits(),
                s.to_bits(),
                "forced-dense MC sample {k} diverged"
            );
        } else {
            assert!(
                (d - s).abs() < TOL_WIDTH,
                "sparse MC sample {k} off-tolerance: {s} vs {d}"
            );
        }
    }
    if !forced_dense {
        assert_eq!(
            delta.symbolic_analyses, 0,
            "adopted symbolic cache must cover every MC sample: {delta:?}"
        );
        assert!(
            delta.sparse_solves > 0,
            "sparse arm never ran sparse: {delta:?}"
        );
        assert_eq!(
            delta.dense_fallbacks, 0,
            "sparse arm fell back to dense: {delta:?}"
        );
    }

    measure_pair(
        iters,
        || {
            chain_mc_point(&put, variation, &symbolic, samples, 1, McArm::DenseReuse);
        },
        || {
            chain_mc_point(&put, variation, &symbolic, samples, 1, McArm::Sparse);
        },
    )
}

/// The MC coverage point with an explicit observability recorder: one
/// fork per sample installed on the instance before the pulse run, every
/// shard retired afterwards — the same wiring `McConfig::obs` uses.
fn mc_point_obs(
    put: &PathUnderTest,
    variation: &VariationModel,
    samples: usize,
    rec: &Recorder,
) -> Vec<f64> {
    let sample_recs: Vec<Recorder> = (0..samples).map(|_| rec.fork()).collect();
    let wouts = MonteCarlo::new(samples, 2007)
        .with_threads(1)
        .run(|i, rng| {
            let techs = variation.sample_techs(&put.tech, put.spec.len(), rng);
            let gen_factor = variation.sample_sensor(1.0, rng);
            let mut p = put.instantiate(&techs, R_POINT);
            p.built_path().set_recorder(sample_recs[i].clone());
            p.pulse_width_out(W_IN * gen_factor, Polarity::PositiveGoing)
                .expect("mc sample")
        });
    for r in &sample_recs {
        r.retire();
    }
    wouts
}

struct ObsOverheadResult {
    plain_ns: u64,
    plain_allocs: u64,
    disabled_ns: u64,
    disabled_allocs: u64,
    enabled_ns: u64,
    enabled_allocs: u64,
}

impl ObsOverheadResult {
    /// Cost of carrying the disabled recorder (fork/clone/retire plus one
    /// `Option` branch per instrumentation site) over the plain kernel.
    fn disabled_overhead(&self) -> f64 {
        self.disabled_ns as f64 / self.plain_ns as f64 - 1.0
    }

    /// Cost of actually recording (atomics, clock reads, shard merges)
    /// over the disabled path.
    fn enabled_overhead(&self) -> f64 {
        self.enabled_ns as f64 / self.disabled_ns as f64 - 1.0
    }
}

/// Kernel 6: observability overhead on the 7-gate MC coverage point.
/// Three arms, interleaved per round like the other kernels: *plain*
/// (recorder never touched — the PR2/PR4 hot path), *disabled* (per-sample
/// fork + install + retire of a disabled recorder), *enabled* (same wiring,
/// recorder live). Bit-identity across all three arms is asserted before
/// timing; the enabled arm is additionally asserted to have recorded real
/// solver work, so the timing can't silently measure a no-op.
fn obs_overhead(
    put: &PathUnderTest,
    variation: &VariationModel,
    samples: usize,
    iters: usize,
) -> ObsOverheadResult {
    let plain = mc_point(put, variation, samples, 1, true);
    let disabled = mc_point_obs(put, variation, samples, &Recorder::disabled());
    let live = Recorder::enabled();
    let enabled = mc_point_obs(put, variation, samples, &live);
    let plain_bits: Vec<u64> = plain.iter().map(|w| w.to_bits()).collect();
    let disabled_bits: Vec<u64> = disabled.iter().map(|w| w.to_bits()).collect();
    let enabled_bits: Vec<u64> = enabled.iter().map(|w| w.to_bits()).collect();
    assert_eq!(
        plain_bits, disabled_bits,
        "disabled recorder changed the MC results"
    );
    assert_eq!(
        plain_bits, enabled_bits,
        "enabled recorder changed the MC results"
    );
    let snap = live.snapshot();
    assert!(
        snap.counter(ObsCounter::NewtonIterations) > 0,
        "enabled recorder saw no Newton work; the kernel would time a no-op"
    );

    let mut run_plain = || {
        mc_point(put, variation, samples, 1, true);
    };
    let mut run_disabled = || {
        mc_point_obs(put, variation, samples, &Recorder::disabled());
    };
    let mut run_enabled = || {
        mc_point_obs(put, variation, samples, &Recorder::enabled());
    };
    // Warm-up round.
    run_plain();
    run_disabled();
    run_enabled();
    let plain_allocs = allocs_per_op(&mut run_plain);
    let disabled_allocs = allocs_per_op(&mut run_disabled);
    let enabled_allocs = allocs_per_op(&mut run_enabled);
    let mut pns = Vec::with_capacity(iters);
    let mut dns = Vec::with_capacity(iters);
    let mut ens = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        run_plain();
        pns.push(t.elapsed().as_nanos() as u64);
        let t = Instant::now();
        run_disabled();
        dns.push(t.elapsed().as_nanos() as u64);
        let t = Instant::now();
        run_enabled();
        ens.push(t.elapsed().as_nanos() as u64);
    }
    ObsOverheadResult {
        plain_ns: median(pns),
        plain_allocs,
        disabled_ns: median(dns),
        disabled_allocs,
        enabled_ns: median(ens),
        enabled_allocs,
    }
}

/// Prints the kernel-6 summary line and, unless `smoke`, writes
/// `BENCH_pr5.json` with the measured numbers and an honest MET / NOT MET
/// verdict on the ≤ 2 % disabled-path overhead contract.
fn report_obs_overhead(k6: &ObsOverheadResult, samples: usize, iters: usize, smoke: bool) {
    eprintln!(
        "obs_overhead: plain {} ns, disabled {} ns ({:+.2}%), enabled {} ns \
         ({:+.2}% vs disabled), allocs {} / {} / {}",
        k6.plain_ns,
        k6.disabled_ns,
        100.0 * k6.disabled_overhead(),
        k6.enabled_ns,
        100.0 * k6.enabled_overhead(),
        k6.plain_allocs,
        k6.disabled_allocs,
        k6.enabled_allocs
    );
    if smoke {
        return;
    }
    let disabled_met = k6.disabled_overhead() <= 0.02;
    let json = format!(
        "{{\n  \"pr\": 5,\n  \"description\": \"observability overhead on the 7-gate MC \
coverage kernel: plain hot path (recorder never touched) vs a per-sample installed-but-disabled \
recorder vs an enabled recorder (fork + retire per sample, the McConfig wiring); all three arms \
asserted bit-identical before timing\",\n  \
\"config\": {{\"w_in_s\": {W_IN:e}, \"r_point_ohm\": {R_POINT}, \"samples\": {samples}, \
\"iters\": {iters}, \"threads\": 1}},\n  \
\"mc_coverage_point_obs\": {{\"plain_median_ns\": {}, \"disabled_median_ns\": {}, \
\"enabled_median_ns\": {}, \"plain_allocs_per_op\": {}, \"disabled_allocs_per_op\": {}, \
\"enabled_allocs_per_op\": {}}},\n  \
\"disabled_overhead\": {{\"target_max\": 0.02, \"measured\": {:.4}, \"met\": {disabled_met}, \
\"note\": \"disabled recorder vs the plain hot path; one Option branch per instrumentation \
site plus per-sample fork/retire\"}},\n  \
\"enabled_overhead_vs_disabled\": {{\"measured\": {:.4}, \"note\": \"no target: the enabled \
recorder pays for atomics, monotonic clock reads and journal assembly by design\"}}\n}}\n",
        k6.plain_ns,
        k6.disabled_ns,
        k6.enabled_ns,
        k6.plain_allocs,
        k6.disabled_allocs,
        k6.enabled_allocs,
        k6.disabled_overhead(),
        k6.enabled_overhead()
    );
    std::fs::write("BENCH_pr5.json", &json).expect("write BENCH_pr5.json");
    eprintln!("wrote BENCH_pr5.json");
    if !disabled_met {
        eprintln!(
            "note: disabled-recorder overhead target (<= 2%) was not met on this \
             machine ({:+.2}%); the JSON records the measured value honestly rather \
             than failing the run",
            100.0 * k6.disabled_overhead()
        );
    }
}

/// One durable MC coverage-point run ([`McConfig::try_run_samples_durable`]),
/// optionally checkpointed, returning every sample's output width.
fn durable_mc_point(
    mc: &McConfig,
    put: &PathUnderTest,
    variation: &VariationModel,
    checkpoint: Option<&Checkpoint<f64>>,
) -> Vec<f64> {
    let run = mc
        .try_run_samples_durable(
            "bench",
            &CancelToken::new(),
            checkpoint,
            |_, _, rng, _, _| {
                let techs = variation.sample_techs(&put.tech, put.spec.len(), rng);
                let gen_factor = variation.sample_sensor(1.0, rng);
                let mut p = put.instantiate(&techs, R_POINT);
                p.pulse_width_out(W_IN * gen_factor, Polarity::PositiveGoing)
            },
        )
        .expect("durable mc point");
    assert!(run.is_complete(), "bench kernel must finish every sample");
    run.resolved_indexed().map(|(_, w)| *w).collect()
}

/// Kernel 7: checkpoint overhead on the 7-gate durable MC coverage point.
/// The checkpointed arm pays for one file creation plus one
/// append-and-flush per sample; each op writes a fresh file so every round
/// measures the worst case (nothing to resume, everything recorded). Both
/// arms are asserted bit-identical — to each other *and* to the plain
/// kernel-3 hot path — before timing.
fn checkpoint_overhead(
    put: &PathUnderTest,
    variation: &VariationModel,
    samples: usize,
    iters: usize,
) -> KernelResult {
    let mc = McConfig {
        threads: Some(1),
        ..McConfig::paper(samples, 2007)
    };
    let spec = CheckpointSpec {
        config_digest: 0xBE7C_0007,
        seed: 2007,
        samples,
    };
    let dir = std::env::temp_dir().join("pulsar-bench-ckpt");
    std::fs::create_dir_all(&dir).expect("bench temp dir");
    let mut seq = 0usize;
    let mut ckpt_op = || {
        seq += 1;
        let path = dir.join(format!("{}-{seq}.ckpt", std::process::id()));
        let ck = Checkpoint::create(&path, spec).expect("create checkpoint");
        let wouts = durable_mc_point(&mc, put, variation, Some(&ck));
        let _ = std::fs::remove_file(&path);
        wouts
    };

    let plain = mc_point(put, variation, samples, 1, true);
    let off = durable_mc_point(&mc, put, variation, None);
    let on = ckpt_op();
    let plain_bits: Vec<u64> = plain.iter().map(|w| w.to_bits()).collect();
    let off_bits: Vec<u64> = off.iter().map(|w| w.to_bits()).collect();
    let on_bits: Vec<u64> = on.iter().map(|w| w.to_bits()).collect();
    assert_eq!(
        plain_bits, off_bits,
        "durable entry point changed the MC results"
    );
    assert_eq!(off_bits, on_bits, "checkpointing changed the MC results");

    measure_pair(
        iters,
        || {
            durable_mc_point(&mc, put, variation, None);
        },
        || {
            ckpt_op();
        },
    )
}

/// Prints the kernel-7 summary line and, unless `smoke`, writes
/// `BENCH_pr6.json` with the measured numbers and an honest MET / NOT MET
/// verdict on the ≤ 2 % checkpoint-overhead contract.
fn report_checkpoint_overhead(k7: &KernelResult, samples: usize, iters: usize, smoke: bool) {
    // For this kernel the `KernelResult` arms are: baseline = durable run
    // without a checkpoint, reuse = durable run with a live checkpoint.
    let overhead = k7.reuse_ns as f64 / k7.baseline_ns as f64 - 1.0;
    eprintln!(
        "checkpoint_overhead: off {} ns, on {} ns ({:+.2}%), allocs {} -> {}",
        k7.baseline_ns,
        k7.reuse_ns,
        100.0 * overhead,
        k7.baseline_allocs,
        k7.reuse_allocs
    );
    if smoke {
        return;
    }
    let met = overhead <= 0.02;
    let json = format!(
        "{{\n  \"pr\": 6,\n  \"description\": \"checkpoint overhead on the 7-gate durable MC \
coverage kernel: the durable entry point with no checkpoint vs a live checkpoint file (create \
plus one append-and-flush per completed sample, fresh file per op so nothing resumes); both \
arms asserted bit-identical to each other and to the plain kernel-3 hot path before timing\",\n  \
\"config\": {{\"w_in_s\": {W_IN:e}, \"r_point_ohm\": {R_POINT}, \"samples\": {samples}, \
\"iters\": {iters}, \"threads\": 1}},\n  \
\"mc_coverage_point_durable\": {{\"checkpoint_off_median_ns\": {}, \
\"checkpoint_on_median_ns\": {}, \"checkpoint_off_allocs_per_op\": {}, \
\"checkpoint_on_allocs_per_op\": {}}},\n  \
\"checkpoint_overhead\": {{\"target_max\": 0.02, \"measured\": {:.4}, \"met\": {met}, \
\"note\": \"worst case: every sample is computed and recorded; a resumed run only gets \
cheaper as restored samples skip both the solve and the append\"}}\n}}\n",
        k7.baseline_ns, k7.reuse_ns, k7.baseline_allocs, k7.reuse_allocs, overhead
    );
    std::fs::write("BENCH_pr6.json", &json).expect("write BENCH_pr6.json");
    eprintln!("wrote BENCH_pr6.json");
    if !met {
        eprintln!(
            "note: checkpoint overhead target (<= 2%) was not met on this machine \
             ({:+.2}%); the JSON records the measured value honestly rather than \
             failing the run",
            100.0 * overhead
        );
    }
}

/// Defect-resistance sweep for the kernel-8 batched coverage point: one
/// hard short and one marginal defect, so each sample exercises both a
/// wide and a narrow surviving pulse through the batch engine.
const BATCH_SWEEP: [f64; 2] = [1e3, 20e3];

/// One `PulseStudy::try_faulty_wouts` coverage point over [`BATCH_SWEEP`]
/// with the given batch width (`0` = the scalar retry ladder), returning
/// every sample's width row. Panics if any sample fails to resolve: this
/// kernel times clean runs only.
fn batched_study_point(
    put: &PathUnderTest,
    samples: usize,
    batch: usize,
    threads: usize,
    rec: Option<&Recorder>,
) -> Vec<Vec<f64>> {
    let mut mc = McConfig {
        batch,
        threads: Some(threads),
        ..McConfig::paper(samples, 2007)
    };
    if let Some(r) = rec {
        mc.obs = r.clone();
    }
    let study = PulseStudy::new(put.clone(), mc, Polarity::PositiveGoing);
    let run = study
        .try_faulty_wouts(W_IN, &BATCH_SWEEP)
        .expect("batched mc point");
    let rows: Vec<Vec<f64>> = run.resolved().cloned().collect();
    assert_eq!(
        rows.len(),
        samples,
        "bench kernel must resolve every sample"
    );
    rows
}

/// Kernel 8: the batched-Monte-Carlo scoreboard. The circuit is an
/// 8-gate inverter chain with the external-ROP defect — 12 MNA unknowns,
/// under the sparse crossover, so under [`SolverMode::Auto`] every lane
/// qualifies for the dense batch engine instead of ejecting to scalar
/// (the paper's 7-gate fan-out path runs sparse at MC scale and ejects;
/// the equivalence tests cover that arm, this kernel times the engaged
/// one). Before timing: scalar and batched results are asserted
/// bit-identical sample-for-sample and across 1 vs 2 threads, and a
/// recorder-enabled probe asserts lanes actually went through the batch
/// engine with zero ejections. With `batch < 2` the "batched" arm
/// degenerates to scalar by design; identity still holds and the probe
/// is skipped.
fn batched_mc_coverage(samples: usize, batch: usize, iters: usize) -> KernelResult {
    let put = chain_put(8);
    let scalar = batched_study_point(&put, samples, 0, 1, None);
    let batched = batched_study_point(&put, samples, batch, 1, None);
    let batched_t2 = batched_study_point(&put, samples, batch, 2, None);
    let sb: Vec<Vec<u64>> = scalar
        .iter()
        .map(|row| row.iter().map(|w| w.to_bits()).collect())
        .collect();
    let bb: Vec<Vec<u64>> = batched
        .iter()
        .map(|row| row.iter().map(|w| w.to_bits()).collect())
        .collect();
    let b2: Vec<Vec<u64>> = batched_t2
        .iter()
        .map(|row| row.iter().map(|w| w.to_bits()).collect())
        .collect();
    assert_eq!(sb, bb, "batched arm diverged from the scalar retry ladder");
    assert_eq!(bb, b2, "batched arm diverged across thread counts");

    if batch >= 2 {
        let live = Recorder::enabled();
        batched_study_point(&put, samples, batch, 1, Some(&live));
        let snap = live.snapshot();
        assert!(
            snap.counter(ObsCounter::BatchedLaneSolves) > 0,
            "the dense 8-gate chain must engage the batch engine; \
             the timing would otherwise measure the scalar fallback twice"
        );
        assert_eq!(
            snap.counter(ObsCounter::BatchEjections),
            0,
            "a clean dense run must not eject lanes mid-batch"
        );
    }

    let result = measure_pair(
        iters,
        || {
            batched_study_point(&put, samples, 0, 1, None);
        },
        || {
            batched_study_point(&put, samples, batch, 1, None);
        },
    );
    if batch >= 2 {
        // The PR9 allocation fix: lane scratch (solution vectors, cap
        // state, breakpoint lists) is pooled inside `BatchWorkspace` and
        // the workspace itself is pooled across batch groups, so the
        // batched arm may no longer out-allocate the scalar ladder it
        // replaces (it used to run ~4% over; it now runs under).
        assert!(
            result.reuse_allocs <= result.baseline_allocs,
            "batched arm allocation regression: {} allocs/op vs {} scalar",
            result.reuse_allocs,
            result.baseline_allocs
        );
    }
    result
}

/// Prints the kernel-8 summary line and, unless `smoke`, writes
/// `BENCH_pr7.json` with the measured numbers and an honest MET / NOT MET
/// verdict on the ≥ 2× batched-speedup aspiration.
fn report_batched_mc(k8: &KernelResult, samples: usize, batch: usize, iters: usize, smoke: bool) {
    // For this kernel the `KernelResult` arms are: baseline = scalar
    // retry ladder (batch = 0), reuse = batched engine at `batch` lanes.
    let speedup = k8.speedup();
    eprintln!(
        "batched_mc_coverage[batch={batch}]: scalar {} ns, batched {} ns ({:.2}x), allocs {} -> {}",
        k8.baseline_ns, k8.reuse_ns, speedup, k8.baseline_allocs, k8.reuse_allocs
    );
    if smoke {
        return;
    }
    let met = speedup >= 2.0;
    let json = format!(
        "{{\n  \"pr\": 7,\n  \"description\": \"batched Monte Carlo device-eval/assembly: \
PulseStudy faulty-width coverage point on a dense-eligible 8-gate chain (12 MNA unknowns), \
scalar per-sample retry ladder vs the structure-of-arrays BatchWorkspace engine solving K \
lanes lock-step through one slot-table walk; both arms asserted bit-identical \
sample-for-sample and across thread counts before timing, and the batched arm asserted to \
run zero ejections via the observability counters\",\n  \
\"config\": {{\"w_in_s\": {W_IN:e}, \"r_sweep_ohm\": [{:.0}, {:.0}], \"samples\": {samples}, \
\"iters\": {iters}, \"threads\": 1, \"chain_gates\": 8, \"batch\": {batch}}},\n  \
\"mc_coverage_point_batched\": {},\n  \
\"batched_speedup_target\": {{\"target\": 2.0, \"measured\": {speedup:.3}, \"met\": {met}, \
\"note\": \"bit-identity pins every lane's floating-point sequence, so on a single-core \
host the batched engine's ceiling is scalar parity minus bookkeeping; the lane-major SoA \
layout reaches that parity, and the batch's headroom is cross-lane locality plus future \
multicore/SIMD lanes. The engine engages on dense-eligible lanes only; sparse circuits \
(like the paper's 7-gate fan-out path at MC scale) eject to the scalar path \
bit-identically, which the equivalence suite covers\"}}\n}}\n",
        BATCH_SWEEP[0],
        BATCH_SWEEP[1],
        json_ab(k8, "scalar", "batched")
    );
    std::fs::write("BENCH_pr7.json", &json).expect("write BENCH_pr7.json");
    eprintln!("wrote BENCH_pr7.json");
    if !met {
        eprintln!(
            "note: batched speedup target (>= 2.0x) was not met on this machine \
             ({speedup:.2}x); the JSON records the measured value honestly rather \
             than failing the run"
        );
    }
}

/// The kernel-9 scoreboard: wall clock plus the evaluation-count and
/// achieved-precision accounting pulled from the adaptive report.
struct AdaptiveKernel {
    /// Arms: baseline = fixed-budget sweep, reuse = adaptive engine.
    result: KernelResult,
    /// Requested CI half-width — what fixed N guarantees worst-case.
    precision: f64,
    /// `(sample, grid-point)` transient evaluations of the fixed arm.
    fixed_evals: u64,
    /// Evaluations the adaptive arm actually spent (both phases).
    adaptive_evals: u64,
    /// Of those, evaluations spent by the crossover-refinement pass.
    refine_evals: u64,
    /// Worst per-point achieved half-width of the fixed arm.
    worst_fixed_hw: f64,
    /// Worst per-point achieved half-width of the adaptive arm.
    worst_adaptive_hw: f64,
    /// Grid size and how its points stopped.
    points: usize,
    stopped_early: usize,
    refined: usize,
}

/// Kernel 9: the PR9 scoreboard — a full `DfStudy` coverage-curve sweep
/// over `r_points` log-spaced resistances × 3 clock factors on the dense
/// 8-gate chain, fixed `fixed_samples` per grid point vs the adaptive
/// engine asked for the worst-case (p̂ = 1/2) Wilson half-width the fixed
/// budget guarantees — so the adaptive arm cannot buy its savings with a
/// looser interval. Before timing: the adaptive sweep is asserted
/// bit-identical across 1 vs 2 threads, and every per-point
/// `{requested, achieved}` half-width is asserted from the *rendered*
/// obs manifest, parsed back with the crate's own JSON parser — the
/// record an operator actually sees, not in-memory state.
fn adaptive_mc_coverage(fixed_samples: usize, r_points: usize, iters: usize) -> AdaptiveKernel {
    let put = chain_put(8);
    let rs = log_sweep(1e3, 200e3, r_points);
    let factors = [0.9, 1.0, 1.1];
    let study = |threads: usize| {
        DfStudy::new(
            put.clone(),
            McConfig {
                threads: Some(threads),
                ..McConfig::paper(fixed_samples, 2007)
            },
        )
    };
    let s1 = study(1);
    let calib = s1.calibrate().expect("calibration");
    let n = fixed_samples as u64;
    let precision = IntervalRule::Wilson { z: 1.96 }
        .interval(n / 2, n)
        .halfwidth();
    // Reinvest only a slice of the phase-1 savings into refinement: the
    // full-savings default is budget-neutral (precision upgrade, no
    // speedup), while a small fraction keeps the crossover region
    // refined and banks the rest as a net solve reduction.
    let policy = AdaptivePolicy {
        refine_fraction: 0.15,
        ..AdaptivePolicy::new(precision, fixed_samples)
    };

    let report = s1
        .coverage_adaptive(&calib, &rs, &factors, &policy, None)
        .expect("adaptive sweep");
    // Determinism guard: stopping decisions are taken on ordered stream
    // prefixes, so the thread count must not change a single bit.
    let r2 = study(2)
        .coverage_adaptive(&calib, &rs, &factors, &policy, None)
        .expect("adaptive sweep at 2 threads");
    let fp = |r: &pulsar_core::AdaptiveReport| -> Vec<(u64, u64, u64, u64, bool)> {
        r.points
            .iter()
            .map(|p| {
                (
                    p.coverage.to_bits(),
                    p.interval.lo.to_bits(),
                    p.interval.hi.to_bits(),
                    p.accuracy.samples_spent,
                    p.accuracy.stopped_early,
                )
            })
            .collect()
    };
    assert_eq!(
        fp(&report),
        fp(&r2),
        "adaptive sweep diverged across thread counts"
    );

    // Fixed-budget reference arm: same grid, N samples everywhere; its
    // achieved half-width per point comes from the same interval rule.
    let fixed = s1.coverage(&calib, &rs, &factors).expect("fixed sweep");
    let mut worst_fixed_hw = 0.0f64;
    for c in &fixed {
        assert_eq!(c.unresolved, 0.0, "bench kernel must resolve every sample");
        for &cov in &c.coverage {
            let k = (cov * fixed_samples as f64).round() as u64;
            worst_fixed_hw = worst_fixed_hw.max(policy.interval(k, n).halfwidth());
        }
    }

    // Per-point achieved precision, asserted from the rendered manifest.
    let mut manifest = RunManifest::new("study", 0);
    manifest.adaptive = Some(report.to_manifest());
    let doc = pulsar_obs::json::parse(&manifest.render_json()).expect("manifest parses");
    let pts = match doc.get("adaptive").and_then(|a| a.get("points")) {
        Some(Json::Arr(pts)) => pts,
        _ => panic!("manifest lost the adaptive points block"),
    };
    assert_eq!(
        pts.len(),
        report.points.len(),
        "manifest must carry one record per grid point"
    );
    let mut worst_adaptive_hw = 0.0f64;
    for (j, p) in pts.iter().enumerate() {
        let req = p
            .get("requested_halfwidth")
            .and_then(Json::as_num)
            .expect("requested_halfwidth");
        let ach = p
            .get("achieved_halfwidth")
            .and_then(Json::as_num)
            .expect("achieved_halfwidth");
        let stopped = matches!(p.get("stopped_early"), Some(Json::Bool(true)));
        // f64 `Display` round-trips exactly, so the manifest must agree
        // with the in-memory report to the bit.
        assert_eq!(
            ach.to_bits(),
            report.points[j].accuracy.achieved_halfwidth.to_bits(),
            "manifest diverged from the report at point {j}"
        );
        if stopped {
            assert!(
                ach <= req,
                "point {j} claims an early stop at {ach} > requested {req}"
            );
        }
        worst_adaptive_hw = worst_adaptive_hw.max(ach);
    }

    let result = measure_pair(
        iters,
        || {
            s1.coverage(&calib, &rs, &factors).expect("fixed sweep");
        },
        || {
            s1.coverage_adaptive(&calib, &rs, &factors, &policy, None)
                .expect("adaptive sweep");
        },
    );

    AdaptiveKernel {
        result,
        precision,
        fixed_evals: report.fixed_budget_evals,
        adaptive_evals: report.evals,
        refine_evals: report.refine_evals,
        worst_fixed_hw,
        worst_adaptive_hw,
        points: report.points.len(),
        stopped_early: report
            .points
            .iter()
            .filter(|p| p.accuracy.stopped_early)
            .count(),
        refined: report.points.iter().filter(|p| p.refined).count(),
    }
}

/// Prints the kernel-9 summary lines and, unless `smoke`, writes
/// `BENCH_pr9.json` with the measured numbers and honest MET / NOT MET
/// verdicts on the ≥ 2× solve-reduction target at matched precision.
fn report_adaptive_mc(
    k9: &AdaptiveKernel,
    fixed_samples: usize,
    r_points: usize,
    iters: usize,
    smoke: bool,
) {
    let reduction = k9.fixed_evals as f64 / k9.adaptive_evals as f64;
    let speedup = k9.result.speedup();
    eprintln!(
        "adaptive_mc_coverage[{r_points}x3 grid, N={fixed_samples}]: fixed {} ns, adaptive {} ns \
         ({speedup:.2}x), evals {} -> {} ({reduction:.2}x fewer, {} spent refining)",
        k9.result.baseline_ns,
        k9.result.reuse_ns,
        k9.fixed_evals,
        k9.adaptive_evals,
        k9.refine_evals
    );
    eprintln!(
        "adaptive precision: requested hw {:.4}, worst achieved {:.4} (fixed arm {:.4}); \
         {} of {} points stopped early, {} refined",
        k9.precision,
        k9.worst_adaptive_hw,
        k9.worst_fixed_hw,
        k9.stopped_early,
        k9.points,
        k9.refined
    );
    if smoke {
        return;
    }
    let met_solves = reduction >= 2.0;
    let matched = k9.worst_adaptive_hw <= k9.precision;
    let json = format!(
        "{{\n  \"pr\": 9,\n  \"description\": \"adaptive sequential sampling: a full DfStudy \
coverage-curve sweep (log-spaced resistance grid x 3 clock factors on the dense 8-gate chain), \
fixed N samples per grid point vs Wilson early stopping over ordered stream prefixes with \
crossover refinement, at matched worst-case CI half-width; the adaptive arm asserted \
bit-identical across 1 vs 2 threads and every per-point achieved half-width asserted from the \
rendered obs manifest before timing\",\n  \
\"config\": {{\"chain_gates\": 8, \"r_points\": {r_points}, \"r_lo_ohm\": 1e3, \
\"r_hi_ohm\": 2e5, \"factors\": [0.9, 1.0, 1.1], \"fixed_samples\": {fixed_samples}, \
\"requested_halfwidth\": {:.6}, \"refine_fraction\": 0.15, \"iters\": {iters}, \
\"threads\": 1, \"seed\": 2007}},\n  \
\"coverage_curve_sweep\": {},\n  \
\"transient_solves\": {{\"fixed\": {}, \"adaptive\": {}, \"refinement\": {}, \
\"reduction\": {reduction:.3}, \"target_min\": 2.0, \"met\": {met_solves}}},\n  \
\"achieved_precision\": {{\"requested_halfwidth\": {:.6}, \
\"worst_adaptive_halfwidth\": {:.6}, \"worst_fixed_halfwidth\": {:.6}, \
\"matched_or_better\": {matched}, \"points\": {}, \"stopped_early\": {}, \
\"refined\": {}}},\n  \
\"note\": \"the requested half-width is the worst-case (p-hat = 1/2) Wilson interval a fixed \
N-sample estimate guarantees, so the adaptive arm is held to the fixed arm's precision \
contract; extreme-coverage points stop within a few chunks, attenuation-region points run to \
the cap, and the refinement pass reinvests refine_fraction of the savings into points \
straddling the coverage threshold or neighboring a crossover, at half the requested width\"\n}}\n",
        k9.precision,
        json_ab(&k9.result, "fixed", "adaptive"),
        k9.fixed_evals,
        k9.adaptive_evals,
        k9.refine_evals,
        k9.precision,
        k9.worst_adaptive_hw,
        k9.worst_fixed_hw,
        k9.points,
        k9.stopped_early,
        k9.refined
    );
    std::fs::write("BENCH_pr9.json", &json).expect("write BENCH_pr9.json");
    eprintln!("wrote BENCH_pr9.json");
    if !met_solves {
        eprintln!(
            "note: adaptive solve-reduction target (>= 2.0x) was not met on this machine \
             ({reduction:.2}x); the JSON records the measured value honestly rather than \
             failing the run"
        );
    }
}

/// The kernel-10 scoreboard: daemon round-trip latencies plus the
/// cache-effect evidence read back from the daemon's stats counters.
struct ServeKernel {
    /// baseline = cold submission (fresh digest, full compute);
    /// reuse = warm submission (identical digest, whole-result hit).
    result: KernelResult,
    /// Median one-shot `pulsar study` dispatch, for context.
    one_shot_ns: u64,
    /// Transient solves the daemon performed across the post-timing
    /// warm resubmissions (must be zero).
    warm_solves: u64,
    /// Whole-result cache hits the daemon reported at shutdown.
    result_cache_hits: u64,
}

/// Reads one counter out of the daemon's `stats` payload (absent means
/// the counter never fired, i.e. zero).
fn serve_stat(payload: &str, name: &str) -> u64 {
    let doc = pulsar_obs::json::parse(payload).expect("daemon stats must be valid JSON");
    doc.get("counters")
        .and_then(|c| c.get(name))
        .and_then(Json::as_num)
        .unwrap_or(0.0) as u64
}

fn serve_solves(payload: &str) -> u64 {
    serve_stat(payload, "sparse_solves") + serve_stat(payload, "dense_solves")
}

fn df_spec(samples: usize, seed: u64) -> ServeJobSpec {
    ServeJobSpec::Study {
        kind: ServeStudyKind::Df,
        samples,
        seed,
        rs: vec![1e3, 30e3, 100e3],
        factors: vec![0.9, 1.1],
    }
}

/// Submits `spec` and blocks for the result text; panics on any
/// non-`done` outcome (a bench must not time a failure).
fn serve_round_trip(client: &mut ServeClient, spec: &ServeJobSpec) -> String {
    let (job, _digest, _cached) = client.submit(spec).expect("serve submit");
    let outcome = client.wait(job).expect("serve wait");
    assert_eq!(outcome.state, "done", "serve job {job} did not complete");
    outcome.result.expect("done job carries its result")
}

/// Kernel 10: cold vs warm repeated submission against an in-process
/// serve daemon, with the one-shot CLI as the bit-identity reference.
fn serve_submission(samples: usize, iters: usize) -> ServeKernel {
    const SEED: u64 = 2007;
    let dir = std::env::temp_dir().join(format!("pulsar-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("serve bench temp dir");
    let mut cfg = ServeConfig::new(dir.join("bench.sock"));
    cfg.workers = 2;
    let daemon = ServeDaemon::start(cfg).expect("start serve daemon");

    // One-shot CLI arm: the whole `pulsar study` dispatch, recomputing
    // everything per call — the workflow the daemon replaces.
    let cli_args: Vec<String> = [
        "study",
        "df",
        "--samples",
        &samples.to_string(),
        "--seed",
        "2007",
        "--r",
        "1e3,30e3,100e3",
        "--factors",
        "0.9,1.1",
    ]
    .iter()
    .map(|s| (*s).to_owned())
    .collect();
    let reference = pulsar_cli::dispatch(&cli_args).expect("one-shot study");
    let mut one_ns = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        let out = pulsar_cli::dispatch(&cli_args).expect("one-shot study");
        one_ns.push(t.elapsed().as_nanos() as u64);
        assert_eq!(out, reference, "one-shot study is not deterministic");
    }

    // Bit-identity gate before any daemon timing: the daemon's cold
    // answer for the same flags must equal the one-shot CLI byte for
    // byte (shared digest ⇒ same experiment ⇒ same bytes).
    let mut probe = ServeClient::connect(daemon.socket()).expect("connect probe client");
    let served = serve_round_trip(&mut probe, &df_spec(samples, SEED));
    assert_eq!(
        served, reference,
        "served result differs from the one-shot CLI"
    );

    // Cold arm: a fresh digest per round (seed varies), so every cache
    // misses and the study computes. Warm arm: the identical digest,
    // answered from the whole-result cache. Interleaved like every
    // other kernel.
    let mut cold_client = ServeClient::connect(daemon.socket()).expect("connect cold client");
    let mut warm_client = ServeClient::connect(daemon.socket()).expect("connect warm client");
    let mut next_seed = 31_000u64;
    let result = measure_pair(
        iters,
        move || {
            next_seed += 1;
            let _ = serve_round_trip(&mut cold_client, &df_spec(samples, next_seed));
        },
        move || {
            let text = serve_round_trip(&mut warm_client, &df_spec(samples, SEED));
            assert_eq!(text, reference, "warm hit returned different bytes");
        },
    );

    // Zero-solve evidence, from the daemon's own counters: three more
    // warm resubmissions may not add a single transient solve.
    let before = probe.stats().expect("stats before warm probes");
    for _ in 0..3 {
        let _ = serve_round_trip(&mut probe, &df_spec(samples, SEED));
    }
    let after = probe.stats().expect("stats after warm probes");
    let warm_solves = serve_solves(&after) - serve_solves(&before);
    let result_cache_hits = serve_stat(&after, "serve_result_cache_hits");

    probe.shutdown().expect("daemon shutdown");
    let summary = daemon.join().expect("daemon join");
    assert_eq!(summary.jobs_failed, 0, "bench jobs may not fail");
    let _ = std::fs::remove_dir_all(&dir);

    ServeKernel {
        result,
        one_shot_ns: median(one_ns),
        warm_solves,
        result_cache_hits,
    }
}

/// Prints the kernel-10 summary lines and, unless `smoke`, writes
/// `BENCH_pr10.json`.
fn report_serve(k: &ServeKernel, samples: usize, iters: usize, smoke: bool) {
    let speedup = k.result.speedup();
    let met = speedup >= 1.5;
    eprintln!(
        "serve_submission: cold {} ns, warm {} ns ({speedup:.2}x), one-shot CLI {} ns, \
         warm solves added {} (hits {})",
        k.result.baseline_ns, k.result.reuse_ns, k.one_shot_ns, k.warm_solves, k.result_cache_hits
    );
    assert_eq!(
        k.warm_solves, 0,
        "a warm identical-digest submission performed transient solves"
    );
    eprintln!(
        "serve warm-submission speedup: {speedup:.2}x (target >= 1.5x: {})",
        if met { "MET" } else { "NOT MET" }
    );
    if smoke {
        eprintln!("smoke run: skipping BENCH_pr10.json");
        return;
    }
    let json = format!(
        "{{\n  \"pr\": 10,\n  \"description\": \"serve daemon repeated-submission latency: an \
in-process pulsar-serve daemon over its Unix socket, cold submissions (fresh config digest per \
round, every cache misses) vs warm submissions (identical digest, whole-result cache hit), \
with the daemon's answer asserted byte-identical to the one-shot pulsar study CLI before \
timing and the warm arm asserted to add zero transient solves from the daemon's own stats \
counters\",\n  \
\"config\": {{\"kind\": \"df\", \"samples\": {samples}, \"r_points\": 3, \"factors\": 2, \
\"seed\": 2007, \"iters\": {iters}, \"workers\": 2}},\n  \
\"serve_submission\": {},\n  \
\"one_shot_cli\": {{\"median_ns\": {}}},\n  \
\"warm_zero_solves\": {{\"solves_added\": {}, \"result_cache_hits\": {}, \
\"bit_identical_to_cli\": true}},\n  \
\"speedup_target\": {{\"target\": 1.5, \"measured\": {speedup:.3}, \"met\": {met}}},\n  \
\"note\": \"cold pays the full study (lint preflight, calibration, N-sample Monte Carlo per \
grid point); warm pays one JSONL round trip over the socket plus a cache lookup, so the \
speedup is bounded by compute cost over socket latency and grows with job size; the honest \
one-shot CLI median is recorded for the end-to-end comparison the daemon replaces\"\n}}\n",
        json_ab(&k.result, "cold", "warm"),
        k.one_shot_ns,
        k.warm_solves,
        k.result_cache_hits
    );
    std::fs::write("BENCH_pr10.json", &json).expect("write BENCH_pr10.json");
    eprintln!("wrote BENCH_pr10.json");
    if !met {
        eprintln!(
            "note: serve warm-submission target (>= 1.5x) was not met on this machine \
             ({speedup:.2}x); the JSON records the measured value honestly rather than \
             failing the run"
        );
    }
}

/// Serializes one A/B kernel result with caller-chosen arm names.
fn json_ab(r: &KernelResult, a: &str, b: &str) -> String {
    format!(
        "{{\"{a}_median_ns\": {}, \"{b}_median_ns\": {}, \
         \"speedup\": {:.3}, \"{a}_allocs_per_op\": {}, \
         \"{b}_allocs_per_op\": {}}}",
        r.baseline_ns,
        r.reuse_ns,
        r.speedup(),
        r.baseline_allocs,
        r.reuse_allocs
    )
}

fn json_kernel(r: &KernelResult) -> String {
    json_ab(r, "baseline", "reuse")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let obs_only = std::env::args().any(|a| a == "--obs-only");
    let durable_only = std::env::args().any(|a| a == "--durable-only");
    let batched_only = std::env::args().any(|a| a == "--batched-only");
    let adaptive_only = std::env::args().any(|a| a == "--adaptive-only");
    let serve_only = std::env::args().any(|a| a == "--serve-only");
    let (samples, iters, mc_iters, thread_counts): (usize, usize, usize, Vec<usize>) = if smoke {
        (8, 3, 1, vec![1, 2])
    } else {
        (64, 15, 3, vec![1, 2, 4])
    };

    let put = rop_put();
    let variation = VariationModel::paper();

    // Kernel 6 gets its own iteration count: its per-op cost is small
    // enough that the shared `mc_iters` would leave the median noisy.
    let obs_iters = if smoke { 3 } else { 7 };

    // Kernel 8's batch width: the auto width unless `PULSAR_BATCH`
    // overrides it (the CI matrix sets `PULSAR_BATCH=0` to exercise the
    // off arm; the kernel then degenerates to scalar-vs-scalar and
    // asserts identity only).
    let batch_width = match std::env::var("PULSAR_BATCH").ok().as_deref() {
        None | Some("auto") => auto_batch(samples),
        Some(v) => v.parse().unwrap_or_else(|_| auto_batch(samples)),
    };

    if batched_only {
        eprintln!(
            "# kernel 8 only: batched {samples}-sample MC coverage point, \
             batch={batch_width} ({mc_iters} iters)"
        );
        let k8 = batched_mc_coverage(samples, batch_width, mc_iters);
        report_batched_mc(&k8, samples, batch_width, mc_iters, smoke);
        if smoke {
            assert!(
                k8.speedup() > 0.8,
                "batched MC engine materially slower than the scalar ladder in smoke run"
            );
        }
        return;
    }

    // Kernel 9's own scale: the ISSUE's fixed N=200 reference on the full
    // 12-point sweep for the recorded run, a small grid for CI smoke.
    let (adaptive_samples, adaptive_r_points) = if smoke { (24, 4) } else { (200, 12) };

    if adaptive_only {
        eprintln!(
            "# kernel 9 only: adaptive vs fixed {adaptive_samples}-sample coverage sweep, \
             {adaptive_r_points}x3 grid ({mc_iters} iters)"
        );
        let k9 = adaptive_mc_coverage(adaptive_samples, adaptive_r_points, mc_iters);
        report_adaptive_mc(&k9, adaptive_samples, adaptive_r_points, mc_iters, smoke);
        if smoke {
            assert!(
                k9.result.speedup() > 0.8,
                "adaptive engine materially slower than the fixed-budget sweep in smoke run"
            );
        }
        return;
    }

    // Kernel 10's own scale: the cold arm recomputes a full 3x2-grid
    // study per round, so a handful of rounds is plenty of signal.
    let (serve_samples, serve_iters) = if smoke { (4, 2) } else { (24, 5) };

    if serve_only {
        eprintln!(
            "# kernel 10 only: serve cold vs warm {serve_samples}-sample submission \
             ({serve_iters} iters)"
        );
        let k10 = serve_submission(serve_samples, serve_iters);
        report_serve(&k10, serve_samples, serve_iters, smoke);
        if smoke {
            assert!(
                k10.result.speedup() > 0.8,
                "warm serve submission materially slower than cold in smoke run"
            );
        }
        return;
    }

    if obs_only {
        eprintln!("# kernel 6 only: observability overhead, {samples}-sample MC point ({obs_iters} iters)");
        let k6 = obs_overhead(&put, &variation, samples, obs_iters);
        report_obs_overhead(&k6, samples, obs_iters, smoke);
        return;
    }

    if durable_only {
        eprintln!("# kernel 7 only: checkpoint overhead, {samples}-sample durable MC point ({obs_iters} iters)");
        let k7 = checkpoint_overhead(&put, &variation, samples, obs_iters);
        report_checkpoint_overhead(&k7, samples, obs_iters, smoke);
        return;
    }

    eprintln!("# kernel 1: single transient ({iters} iters)");
    let k1 = single_transient(&put, iters);
    eprintln!(
        "single_transient: baseline {} ns, reuse {} ns ({:.2}x), allocs {} -> {}",
        k1.baseline_ns,
        k1.reuse_ns,
        k1.speedup(),
        k1.baseline_allocs,
        k1.reuse_allocs
    );

    eprintln!("# kernel 2: transfer-curve point ({iters} iters)");
    let (k2, warm_ns, warm_speedup) = transfer_point(&put, iters);
    eprintln!(
        "transfer_point: baseline {} ns, reuse {} ns ({:.2}x), warm {} ns ({:.2}x), allocs {} -> {}",
        k2.baseline_ns,
        k2.reuse_ns,
        k2.speedup(),
        warm_ns,
        warm_speedup,
        k2.baseline_allocs,
        k2.reuse_allocs
    );

    eprintln!("# kernel 3: {samples}-sample MC coverage point ({mc_iters} iters/thread-count)");
    let k3 = mc_coverage_point(&put, &variation, samples, &thread_counts, mc_iters);
    for t in &k3 {
        eprintln!(
            "mc_coverage_point[threads={}]: baseline {} ns, reuse {} ns ({:.2}x)",
            t.threads,
            t.result.baseline_ns,
            t.result.reuse_ns,
            t.result.speedup()
        );
    }

    let single_thread_speedup = k3
        .iter()
        .find(|t| t.threads == 1)
        .map(|t| t.result.speedup())
        .unwrap_or(0.0);
    let meets_target = single_thread_speedup >= 2.0;
    eprintln!(
        "mc coverage kernel speedup at 1 thread: {single_thread_speedup:.2}x \
         (target >= 2.0x: {})",
        if meets_target { "MET" } else { "NOT MET" }
    );

    // PULSAR_FORCE_DENSE=1 collapses the sparse arms onto the dense
    // engine (same check the solver latches on first read); the kernels
    // still run — asserting bitwise identity — but speedups are ~1.0 and
    // the ratio asserts/targets are skipped.
    let forced_dense = std::env::var("PULSAR_FORCE_DENSE")
        .map(|v| v == "1")
        .unwrap_or(false);
    if forced_dense {
        eprintln!("PULSAR_FORCE_DENSE=1: sparse arms run dense; asserting identity, not speed");
    }

    // 64 gates is past the ISSUE's 32-gate target point; it is measured
    // anyway because it shows where the sparse engine's win actually
    // starts (the 32-gate matrix factors with zero fill, so shared
    // device evaluation dominates both arms there — see DESIGN.md §5.4).
    let chain_sizes: [usize; 4] = [8, 16, 32, 64];
    eprintln!("# kernel 4: sparse vs dense single transient ({iters} iters)");
    let k4: Vec<(usize, KernelResult)> = chain_sizes
        .iter()
        .map(|&n| (n, sparse_transient(n, iters, forced_dense)))
        .collect();
    for (n, r) in &k4 {
        eprintln!(
            "sparse_single_transient[{n} gates]: dense {} ns, sparse {} ns ({:.2}x), allocs {} -> {}",
            r.baseline_ns,
            r.reuse_ns,
            r.speedup(),
            r.baseline_allocs,
            r.reuse_allocs
        );
    }

    let mc_chain = 32;
    eprintln!("# kernel 5: sparse {samples}-sample MC coverage point, {mc_chain}-gate chain, 1 thread ({mc_iters} iters)");
    let k5 = sparse_mc_coverage(mc_chain, &variation, samples, mc_iters, forced_dense);
    eprintln!(
        "sparse_mc_coverage[1 thread]: dense {} ns, sparse {} ns ({:.2}x)",
        k5.baseline_ns,
        k5.reuse_ns,
        k5.speedup()
    );

    let sparse32_speedup = k4
        .iter()
        .find(|(n, _)| *n == mc_chain)
        .map(|(_, r)| r.speedup())
        .unwrap_or(0.0);
    let sparse32_met = sparse32_speedup >= 2.0;
    let sparse_mc_speedup = k5.speedup();
    let sparse_mc_met = sparse_mc_speedup >= 1.5;
    if !forced_dense {
        eprintln!(
            "sparse 32-gate transient speedup: {sparse32_speedup:.2}x (target >= 2.0x: {})",
            if sparse32_met { "MET" } else { "NOT MET" }
        );
        eprintln!(
            "sparse MC coverage speedup at 1 thread: {sparse_mc_speedup:.2}x \
             (target >= 1.5x: {})",
            if sparse_mc_met { "MET" } else { "NOT MET" }
        );
    }

    eprintln!("# kernel 6: observability overhead, {samples}-sample MC point ({obs_iters} iters)");
    let k6 = obs_overhead(&put, &variation, samples, obs_iters);
    report_obs_overhead(&k6, samples, obs_iters, smoke);

    eprintln!(
        "# kernel 7: checkpoint overhead, {samples}-sample durable MC point ({obs_iters} iters)"
    );
    let k7 = checkpoint_overhead(&put, &variation, samples, obs_iters);
    report_checkpoint_overhead(&k7, samples, obs_iters, smoke);

    eprintln!(
        "# kernel 8: batched {samples}-sample MC coverage point, 8-gate chain, \
         batch={batch_width} ({mc_iters} iters)"
    );
    let k8 = batched_mc_coverage(samples, batch_width, mc_iters);
    report_batched_mc(&k8, samples, batch_width, mc_iters, smoke);

    eprintln!(
        "# kernel 9: adaptive vs fixed {adaptive_samples}-sample coverage sweep, \
         {adaptive_r_points}x3 grid ({mc_iters} iters)"
    );
    let k9 = adaptive_mc_coverage(adaptive_samples, adaptive_r_points, mc_iters);
    report_adaptive_mc(&k9, adaptive_samples, adaptive_r_points, mc_iters, smoke);

    eprintln!(
        "# kernel 10: serve cold vs warm {serve_samples}-sample submission ({serve_iters} iters)"
    );
    let k10 = serve_submission(serve_samples, serve_iters);
    report_serve(&k10, serve_samples, serve_iters, smoke);

    if smoke {
        eprintln!("smoke run: skipping BENCH_pr4.json");
        // Regression guards, not the speedup aspirations: neither
        // optimized engine may be materially *slower* than what it
        // replaces. (The slack below 1.0 absorbs scheduler noise on
        // loaded CI runners; the full run records the real numbers in
        // the JSON.)
        assert!(
            single_thread_speedup > 0.8,
            "workspace engine materially slower than baseline in smoke run"
        );
        if !forced_dense {
            assert!(
                sparse32_speedup > 0.8,
                "sparse engine materially slower than dense on the 32-gate chain"
            );
        }
        // Disabled-recorder overhead must stay within noise of the PR2/PR4
        // hot path (full runs record the real number in BENCH_pr5.json; the
        // slack absorbs scheduler noise on loaded CI runners), and an
        // enabled recorder must not blow past any reasonable bound.
        assert!(
            (k6.disabled_ns as f64) < 1.25 * k6.plain_ns as f64,
            "disabled-recorder path materially slower than the plain hot path in smoke run"
        );
        assert!(
            (k6.enabled_ns as f64) < 2.0 * k6.disabled_ns as f64,
            "enabled-recorder overhead far beyond expectation in smoke run"
        );
        // Checkpointing must stay within noise of the checkpoint-free
        // durable run (the full run records the real number in
        // BENCH_pr6.json).
        assert!(
            (k7.reuse_ns as f64) < 1.25 * k7.baseline_ns as f64,
            "checkpointed durable run materially slower than checkpoint-free in smoke run"
        );
        // Batching may not win on a smoke-sized run, but it must never be
        // materially slower than the scalar ladder it replaces (the full
        // run records the real number in BENCH_pr7.json).
        assert!(
            k8.speedup() > 0.8,
            "batched MC engine materially slower than the scalar ladder in smoke run"
        );
        // The adaptive engine saves whole samples, so even a smoke-sized
        // sweep must not run materially slower than the fixed budget.
        assert!(
            k9.result.speedup() > 0.8,
            "adaptive engine materially slower than the fixed-budget sweep in smoke run"
        );
        // A warm whole-result hit is a socket round trip; it must never
        // lose to a full recompute (the full run records the number in
        // BENCH_pr10.json).
        assert!(
            k10.result.speedup() > 0.8,
            "warm serve submission materially slower than cold in smoke run"
        );
        return;
    }

    let threads_json: Vec<String> = k3
        .iter()
        .map(|t| format!("\"{}\": {}", t.threads, json_kernel(&t.result)))
        .collect();
    let sparse_json: Vec<String> = k4
        .iter()
        .map(|(n, r)| format!("\"{}\": {}", n, json_ab(r, "dense", "sparse")))
        .collect();
    let json = format!(
        "{{\n  \"pr\": 4,\n  \"description\": \"hot-path solver benchmark: workspace-reusing \
engine vs preserved allocation-per-step baseline (bit-identical), and sparse MNA engine with \
cached symbolic factorization vs the dense reuse engine (within solver \
tolerance), same process, agreement asserted before timing\",\n  \
\"config\": {{\"w_in_s\": {W_IN:e}, \"r_point_ohm\": {R_POINT}, \"samples\": {samples}, \
\"iters\": {iters}, \"mc_iters\": {mc_iters}, \"forced_dense\": {forced_dense}}},\n  \
\"single_transient\": {},\n  \
\"transfer_point\": {},\n  \
\"transfer_point_warm_start\": {{\"median_ns\": {warm_ns}, \"speedup_vs_baseline\": {warm_speedup:.3}, \
\"note\": \"opt-in; equals cold solves within solver tolerance, not bitwise\"}},\n  \
\"mc_coverage_point\": {{\n    {}\n  }},\n  \
\"mc_speedup_target\": {{\"target\": 2.0, \"measured_1_thread\": {single_thread_speedup:.3}, \
\"met\": {meets_target}, \"note\": \"PR2 aspiration on the 7-gate paper path, dense reuse vs \
baseline; re-measured here\"}},\n  \
\"sparse_single_transient\": {{\n    {}\n  }},\n  \
\"sparse_mc_coverage_1_thread\": {},\n  \
\"sparse_speedup_targets\": {{\n    \
\"single_transient_32_gates\": {{\"target\": 2.0, \"measured\": {sparse32_speedup:.3}, \"met\": {sparse32_met}}},\n    \
\"mc_coverage_1_thread\": {{\"target\": 1.5, \"measured\": {sparse_mc_speedup:.3}, \"met\": {sparse_mc_met}}},\n    \
\"note\": \"the 32-gate chain (36 unknowns) factors with zero fill, so both engines are \
dominated by the shared device-evaluation/assembly cost and the dense zero-skipping LU is \
already near-optimal there; the sparse win starts at the 64-gate point (see \
sparse_single_transient) and grows with dimension\"\n  }}\n}}\n",
        json_kernel(&k1),
        json_kernel(&k2),
        threads_json.join(",\n    "),
        sparse_json.join(",\n    "),
        json_ab(&k5, "dense", "sparse")
    );
    std::fs::write("BENCH_pr4.json", &json).expect("write BENCH_pr4.json");
    eprintln!("wrote BENCH_pr4.json");
    for (name, met, measured) in [
        ("PR2 mc 2.0x", meets_target, single_thread_speedup),
        ("sparse 32-gate 2.0x", sparse32_met, sparse32_speedup),
        ("sparse mc 1.5x", sparse_mc_met, sparse_mc_speedup),
    ] {
        if !met && !forced_dense {
            eprintln!(
                "note: target {name} was not met on this machine ({measured:.2}x); \
                 the JSON records the measured value honestly rather than \
                 failing the run"
            );
        }
    }
}
