//! Hot-path micro-benchmark: workspace-reusing solver vs the preserved
//! allocation-per-step baseline engine, measured in the same process.
//!
//! Three kernels are timed (median wall-clock ns/op plus a heap-allocation
//! count from a counting global allocator):
//!
//! 1. **single_transient** — one pulse propagation through the paper's
//!    7-gate external-ROP path.
//! 2. **transfer_point** — one transfer-curve point: retune the defect
//!    resistance, re-run the pulse. The workspace (and, in a separate
//!    variant, the DC warm start) amortizes across the sweep.
//! 3. **mc_coverage_point** — one 64-sample Monte Carlo coverage point
//!    at threads = 1 / 2 / 4.
//!
//! The baseline is not a guess: `BuiltPath::set_workspace_reuse(false)`
//! routes every simulation through `Circuit::transient_baseline`, the
//! pre-optimization engine preserved verbatim (per-call allocations,
//! indexed scalar LU). Both engines run here back to back and every
//! measured quantity is asserted **bit-identical** between them before
//! any timing is reported, so the speedup numbers compare equal answers.
//!
//! Baseline and optimized ops are *interleaved* within one measurement
//! loop (A, B, A, B, ...) and summarized by their medians: on a shared
//! host, machine speed drifts more between two back-to-back phases than
//! the effect under measurement, and interleaving makes both engines see
//! the same drift.
//!
//! `--smoke` runs a tiny configuration for CI (no JSON output); the full
//! run writes `BENCH_pr2.json` at the repository root and records whether
//! the PR's ≥2× aspiration on the Monte Carlo coverage kernel was met on
//! this machine (the measured number is reported either way).

use pulsar_analog::Polarity;
use pulsar_bench::rop_put;
use pulsar_cells::PulseOutcome;
use pulsar_core::{PathInstance, PathUnderTest, VariationModel};
use pulsar_mc::MonteCarlo;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counts heap allocations (alloc + realloc calls) as an allocation-rate
/// proxy; timing-neutral enough for a relative comparison since both
/// engines run under the same allocator.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation unchanged to the system allocator;
// the counter is a relaxed atomic with no effect on allocation behavior.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn median(mut ns: Vec<u64>) -> u64 {
    ns.sort_unstable();
    ns[ns.len() / 2]
}

/// Allocation calls made by one invocation of `f` (deterministic per op
/// once warm, so a single sample suffices).
fn allocs_per_op(mut f: impl FnMut()) -> u64 {
    let a0 = ALLOC_CALLS.load(Ordering::Relaxed);
    f();
    ALLOC_CALLS.load(Ordering::Relaxed) - a0
}

/// Times `baseline` and `reuse` *interleaved* (one of each per round) for
/// `iters` rounds and returns the medians. Interleaving is what makes the
/// ratio trustworthy on a drifting shared host: both engines sample the
/// same machine-speed trajectory.
fn measure_pair(iters: usize, mut baseline: impl FnMut(), mut reuse: impl FnMut()) -> KernelResult {
    assert!(iters >= 1);
    // Warm-up round: page in code, fill the workspace buffers.
    baseline();
    reuse();
    let baseline_allocs = allocs_per_op(&mut baseline);
    let reuse_allocs = allocs_per_op(&mut reuse);
    let mut bns = Vec::with_capacity(iters);
    let mut rns = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        baseline();
        bns.push(t.elapsed().as_nanos() as u64);
        let t = Instant::now();
        reuse();
        rns.push(t.elapsed().as_nanos() as u64);
    }
    KernelResult {
        baseline_ns: median(bns),
        baseline_allocs,
        reuse_ns: median(rns),
        reuse_allocs,
    }
}

fn bits(outcome: &PulseOutcome) -> (u64, u64, Vec<u64>) {
    (
        outcome.output_width.to_bits(),
        outcome.peak_fraction.to_bits(),
        outcome.stage_widths.iter().map(|w| w.to_bits()).collect(),
    )
}

const W_IN: f64 = 450e-12;
const R_POINT: f64 = 8e3;
const SWEEP: [f64; 4] = [1e3, 3e3, 8e3, 20e3];

struct KernelResult {
    baseline_ns: u64,
    baseline_allocs: u64,
    reuse_ns: u64,
    reuse_allocs: u64,
}

impl KernelResult {
    fn speedup(&self) -> f64 {
        self.baseline_ns as f64 / self.reuse_ns as f64
    }
}

/// Kernel 1: one pulse-propagation transient, baseline vs reuse, outputs
/// asserted bit-identical.
fn single_transient(put: &PathUnderTest, iters: usize) -> KernelResult {
    let mut base = put.instantiate_nominal(R_POINT);
    base.built_path().set_workspace_reuse(false);
    let mut fast = put.instantiate_nominal(R_POINT);

    let run = |p: &mut pulsar_core::AnalogPath| {
        p.built_path()
            .propagate_pulse(W_IN, Polarity::PositiveGoing, None)
            .expect("pulse run")
    };
    let ob = run(&mut base);
    let of = run(&mut fast);
    assert_eq!(
        bits(&ob),
        bits(&of),
        "engines disagree on the single-transient kernel"
    );

    measure_pair(
        iters,
        || {
            run(&mut base);
        },
        || {
            run(&mut fast);
        },
    )
}

/// Kernel 2: one transfer-curve point — set the defect resistance, run the
/// pulse — cycling through a resistance sweep so the workspace amortizes.
/// Also times the opt-in DC warm start (tolerance-equal, not bit-equal,
/// so it is compared within solver tolerance instead).
fn transfer_point(put: &PathUnderTest, iters: usize) -> (KernelResult, u64, f64) {
    let mut base = put.instantiate_nominal(SWEEP[0]);
    base.built_path().set_workspace_reuse(false);
    let mut fast = put.instantiate_nominal(SWEEP[0]);
    let mut warm = put.instantiate_nominal(SWEEP[0]);
    warm.built_path().set_dc_warm_start(true);

    let point = |p: &mut pulsar_core::AnalogPath, k: usize| {
        let r = SWEEP[k % SWEEP.len()];
        p.set_resistance(r).expect("sweep resistance");
        p.pulse_width_out(W_IN, Polarity::PositiveGoing)
            .expect("sweep point")
    };
    for k in 0..SWEEP.len() {
        let wb = point(&mut base, k);
        let wf = point(&mut fast, k);
        let ww = point(&mut warm, k);
        assert_eq!(
            wb.to_bits(),
            wf.to_bits(),
            "engines disagree on transfer point {k}"
        );
        assert!(
            (ww - wb).abs() < 2e-12,
            "warm start off-tolerance at point {k}: {ww} vs {wb}"
        );
    }

    // Three arms interleaved per round (the warm-start arm rides in the
    // same loop so its ratio shares the baseline's drift too).
    let (mut kb, mut kf, mut kw) = (0usize, 0usize, 0usize);
    let baseline_allocs = allocs_per_op(|| {
        point(&mut base, kb);
        kb += 1;
    });
    let reuse_allocs = allocs_per_op(|| {
        point(&mut fast, kf);
        kf += 1;
    });
    let mut bns = Vec::with_capacity(iters);
    let mut rns = Vec::with_capacity(iters);
    let mut wns = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        point(&mut base, kb);
        kb += 1;
        bns.push(t.elapsed().as_nanos() as u64);
        let t = Instant::now();
        point(&mut fast, kf);
        kf += 1;
        rns.push(t.elapsed().as_nanos() as u64);
        let t = Instant::now();
        point(&mut warm, kw);
        kw += 1;
        wns.push(t.elapsed().as_nanos() as u64);
    }
    let baseline_ns = median(bns);
    let warm_ns = median(wns);
    (
        KernelResult {
            baseline_ns,
            baseline_allocs,
            reuse_ns: median(rns),
            reuse_allocs,
        },
        warm_ns,
        baseline_ns as f64 / warm_ns as f64,
    )
}

/// One Monte Carlo coverage-point run: `samples` instances of the path at
/// resistance [`R_POINT`], each drawn exactly like
/// `PulseStudy::try_faulty_wouts` draws it, returning output pulse widths.
fn mc_point(
    put: &PathUnderTest,
    variation: &VariationModel,
    samples: usize,
    threads: usize,
    reuse: bool,
) -> Vec<f64> {
    MonteCarlo::new(samples, 2007)
        .with_threads(threads)
        .run(|_, rng| {
            let techs = variation.sample_techs(&put.tech, put.spec.len(), rng);
            let gen_factor = variation.sample_sensor(1.0, rng);
            let mut p = put.instantiate(&techs, R_POINT);
            if !reuse {
                p.built_path().set_workspace_reuse(false);
            }
            p.pulse_width_out(W_IN * gen_factor, Polarity::PositiveGoing)
                .expect("mc sample")
        })
}

struct McThreadResult {
    threads: usize,
    result: KernelResult,
}

/// Kernel 3: the 64-sample coverage point at each thread count, baseline
/// vs reuse, with every sample's output width asserted bit-identical
/// across engines *and* across thread counts.
fn mc_coverage_point(
    put: &PathUnderTest,
    variation: &VariationModel,
    samples: usize,
    thread_counts: &[usize],
    iters: usize,
) -> Vec<McThreadResult> {
    let reference = mc_point(put, variation, samples, 1, true);
    let ref_bits: Vec<u64> = reference.iter().map(|w| w.to_bits()).collect();

    thread_counts
        .iter()
        .map(|&t| {
            for reuse in [false, true] {
                let wouts = mc_point(put, variation, samples, t, reuse);
                let got: Vec<u64> = wouts.iter().map(|w| w.to_bits()).collect();
                assert_eq!(
                    ref_bits, got,
                    "mc kernel diverged (threads={t}, reuse={reuse})"
                );
            }
            let result = measure_pair(
                iters,
                || {
                    mc_point(put, variation, samples, t, false);
                },
                || {
                    mc_point(put, variation, samples, t, true);
                },
            );
            McThreadResult { threads: t, result }
        })
        .collect()
}

fn json_kernel(r: &KernelResult) -> String {
    format!(
        "{{\"baseline_median_ns\": {}, \"reuse_median_ns\": {}, \
         \"speedup\": {:.3}, \"baseline_allocs_per_op\": {}, \
         \"reuse_allocs_per_op\": {}}}",
        r.baseline_ns,
        r.reuse_ns,
        r.speedup(),
        r.baseline_allocs,
        r.reuse_allocs
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (samples, iters, mc_iters, thread_counts): (usize, usize, usize, Vec<usize>) = if smoke {
        (8, 3, 1, vec![1, 2])
    } else {
        (64, 15, 3, vec![1, 2, 4])
    };

    let put = rop_put();
    let variation = VariationModel::paper();

    eprintln!("# kernel 1: single transient ({iters} iters)");
    let k1 = single_transient(&put, iters);
    eprintln!(
        "single_transient: baseline {} ns, reuse {} ns ({:.2}x), allocs {} -> {}",
        k1.baseline_ns,
        k1.reuse_ns,
        k1.speedup(),
        k1.baseline_allocs,
        k1.reuse_allocs
    );

    eprintln!("# kernel 2: transfer-curve point ({iters} iters)");
    let (k2, warm_ns, warm_speedup) = transfer_point(&put, iters);
    eprintln!(
        "transfer_point: baseline {} ns, reuse {} ns ({:.2}x), warm {} ns ({:.2}x), allocs {} -> {}",
        k2.baseline_ns,
        k2.reuse_ns,
        k2.speedup(),
        warm_ns,
        warm_speedup,
        k2.baseline_allocs,
        k2.reuse_allocs
    );

    eprintln!("# kernel 3: {samples}-sample MC coverage point ({mc_iters} iters/thread-count)");
    let k3 = mc_coverage_point(&put, &variation, samples, &thread_counts, mc_iters);
    for t in &k3 {
        eprintln!(
            "mc_coverage_point[threads={}]: baseline {} ns, reuse {} ns ({:.2}x)",
            t.threads,
            t.result.baseline_ns,
            t.result.reuse_ns,
            t.result.speedup()
        );
    }

    let single_thread_speedup = k3
        .iter()
        .find(|t| t.threads == 1)
        .map(|t| t.result.speedup())
        .unwrap_or(0.0);
    let meets_target = single_thread_speedup >= 2.0;
    eprintln!(
        "mc coverage kernel speedup at 1 thread: {single_thread_speedup:.2}x \
         (target >= 2.0x: {})",
        if meets_target { "MET" } else { "NOT MET" }
    );

    if smoke {
        eprintln!("smoke run: skipping BENCH_pr2.json");
        // Regression guard, not the 2x aspiration: the reuse engine must
        // never be materially *slower* than the baseline it replaces.
        // (The slack below 1.0 absorbs scheduler noise on loaded CI
        // runners; the full run records the real number in the JSON.)
        assert!(
            single_thread_speedup > 0.8,
            "workspace engine materially slower than baseline in smoke run"
        );
        return;
    }

    let threads_json: Vec<String> = k3
        .iter()
        .map(|t| format!("\"{}\": {}", t.threads, json_kernel(&t.result)))
        .collect();
    let json = format!(
        "{{\n  \"pr\": 2,\n  \"description\": \"hot-path solver workspace benchmark: \
workspace-reusing engine vs preserved allocation-per-step baseline, same process, \
outputs asserted bit-identical before timing\",\n  \
\"config\": {{\"w_in_s\": {W_IN:e}, \"r_point_ohm\": {R_POINT}, \"samples\": {samples}, \
\"iters\": {iters}, \"mc_iters\": {mc_iters}}},\n  \
\"single_transient\": {},\n  \
\"transfer_point\": {},\n  \
\"transfer_point_warm_start\": {{\"median_ns\": {warm_ns}, \"speedup_vs_baseline\": {warm_speedup:.3}, \
\"note\": \"opt-in; equals cold solves within solver tolerance, not bitwise\"}},\n  \
\"mc_coverage_point\": {{\n    {}\n  }},\n  \
\"mc_speedup_target\": {{\"target\": 2.0, \"measured_1_thread\": {single_thread_speedup:.3}, \
\"met\": {meets_target}}}\n}}\n",
        json_kernel(&k1),
        json_kernel(&k2),
        threads_json.join(",\n    ")
    );
    std::fs::write("BENCH_pr2.json", &json).expect("write BENCH_pr2.json");
    eprintln!("wrote BENCH_pr2.json");
    if !meets_target {
        eprintln!(
            "note: the 2.0x aspiration was not met on this machine \
             ({single_thread_speedup:.2}x); the JSON records the measured \
             value honestly rather than failing the run — see the \
             README benchmark section for what bounds the ratio here"
        );
    }
}
