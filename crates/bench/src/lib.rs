#![warn(missing_docs)]
// Library code must surface failures as typed errors or documented
// panics, never ad-hoc unwraps; #[cfg(test)] modules opt back in.
#![warn(clippy::unwrap_used)]

//! # pulsar-bench
//!
//! Experiment harness regenerating every figure of *Favalli & Metra,
//! DATE 2007*, plus Criterion benches for the simulator kernels.
//!
//! Each `fig*` binary prints one figure's data as CSV to stdout (series
//! per column), with the experiment's parameters on `#`-prefixed header
//! lines. Sample counts are scaled by the `PULSAR_SAMPLES` environment
//! variable (or `--samples N`) so the same binaries serve quick smoke
//! runs and publication-scale sweeps. See `EXPERIMENTS.md` at the
//! repository root for the recorded paper-vs-measured comparison.

use pulsar_cells::RopSite;
use pulsar_cells::{PathSpec, Tech};
use pulsar_core::{DefectKind, McConfig, PathUnderTest};

/// Shared experiment parameters, resolved from the environment/CLI.
#[derive(Debug, Clone, Copy)]
pub struct ExpParams {
    /// Monte Carlo sample count.
    pub samples: usize,
    /// Master seed.
    pub seed: u64,
    /// Batched device-eval width for the MC studies (0 = off). Batching
    /// is a pure optimization — results are bit-identical either way —
    /// so this only changes wall clock.
    pub batch: usize,
}

/// The auto batch width for `--batch auto`: wide enough to amortize the
/// slot-table walk, small enough that one divergent lane's ejection
/// wastes little, and never wider than the sample count.
pub fn auto_batch(samples: usize) -> usize {
    samples.min(8)
}

impl ExpParams {
    /// Resolves parameters: `--samples N` / `--seed S` / `--batch N|auto`
    /// CLI flags override `PULSAR_SAMPLES` / `PULSAR_SEED` /
    /// `PULSAR_BATCH`, which override the defaults (batching defaults to
    /// off so timings stay comparable with earlier recorded runs).
    pub fn from_env(default_samples: usize) -> Self {
        let mut samples = std::env::var("PULSAR_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default_samples);
        let mut seed = std::env::var("PULSAR_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(2007);
        let mut batch_arg = std::env::var("PULSAR_BATCH").ok();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i + 1 < args.len() {
            match args[i].as_str() {
                "--samples" => samples = args[i + 1].parse().unwrap_or(samples),
                "--seed" => seed = args[i + 1].parse().unwrap_or(seed),
                "--batch" => batch_arg = Some(args[i + 1].clone()),
                _ => {}
            }
            i += 1;
        }
        let batch = match batch_arg.as_deref() {
            None => 0,
            Some("auto") => auto_batch(samples),
            Some(v) => v.parse().unwrap_or(0),
        };
        ExpParams {
            samples,
            seed,
            batch,
        }
    }

    /// Monte Carlo configuration at the paper's 10 % sigma.
    pub fn mc(&self) -> McConfig {
        McConfig {
            batch: self.batch,
            ..McConfig::paper(self.samples, self.seed)
        }
    }
}

/// The paper's §4 path: 7 gates, fan-out branch at the faulted stage.
pub fn paper_put(defect: DefectKind) -> PathUnderTest {
    PathUnderTest {
        spec: PathSpec::paper_chain(),
        defect,
        stage: 1,
        tech: Tech::generic_180nm(),
    }
}

/// The external-ROP path under test used by Figs. 6/7 (the worst case for
/// the pulse method per §4).
pub fn rop_put() -> PathUnderTest {
    paper_put(DefectKind::ExternalRop)
}

/// The internal-ROP variant (Fig. 2 waveforms, ablations).
pub fn internal_rop_put() -> PathUnderTest {
    paper_put(DefectKind::InternalRop {
        site: RopSite::PullUp,
    })
}

/// The bridge path under test used by Figs. 8/9 (aggressor steady low).
pub fn bridge_put() -> PathUnderTest {
    paper_put(DefectKind::Bridge {
        aggressor_high: false,
    })
}

/// Logarithmic resistance sweep: `n` points from `lo` to `hi` inclusive.
pub fn log_sweep(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2 && lo > 0.0 && hi > lo, "need a non-degenerate sweep");
    (0..n)
        .map(|k| (lo.ln() + (hi.ln() - lo.ln()) * k as f64 / (n - 1) as f64).exp())
        .collect()
}

/// Prints one CSV row of floats with a leading label column.
pub fn csv_row(label: impl std::fmt::Display, values: &[f64]) {
    print!("{label}");
    for v in values {
        print!(",{v:.6e}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn log_sweep_endpoints_and_monotonicity() {
        let s = log_sweep(100.0, 10_000.0, 5);
        assert_eq!(s.len(), 5);
        assert!((s[0] - 100.0).abs() < 1e-9);
        assert!((s[4] - 10_000.0).abs() < 1e-6);
        for w in s.windows(2) {
            assert!(w[1] > w[0]);
        }
        // Log spacing: constant ratio.
        let r1 = s[1] / s[0];
        let r2 = s[3] / s[2];
        assert!((r1 - r2).abs() < 1e-9);
    }

    #[test]
    fn puts_have_the_paper_shape() {
        let p = rop_put();
        assert_eq!(p.spec.len(), 7);
        assert_eq!(p.stage, 1);
        assert_eq!(p.spec.fanout_loads[1], 1);
    }

    #[test]
    #[should_panic(expected = "non-degenerate")]
    fn degenerate_sweep_panics() {
        log_sweep(10.0, 10.0, 5);
    }
}
