//! Thin shim around [`pulsar_cli::dispatch`]: collect args, print, exit.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match pulsar_cli::dispatch(&args) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("pulsar: {e}");
            std::process::exit(e.code);
        }
    }
}
