//! Thin shim around [`pulsar_cli::dispatch`]: collect args, print, exit.
//!
//! Every failure — usage, lint, sim, campaign — is rendered through the
//! one structured formatter ([`pulsar_cli::CliError::render`]): error
//! kind, source chain, and the exit-code table.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match pulsar_cli::dispatch(&args) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("{}", e.render());
            std::process::exit(e.code);
        }
    }
}
