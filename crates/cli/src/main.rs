//! Thin shim around [`pulsar_cli::dispatch_with_cancel`]: install the
//! SIGINT bridge, collect args, print, exit.
//!
//! Every failure — usage, lint, sim, campaign, interrupt — is rendered
//! through the one structured formatter
//! ([`pulsar_cli::CliError::render`]): error kind, source chain, and the
//! exit-code table. An interrupted run (exit 130) first prints its
//! partial report to stdout, so `pulsar campaign … | tee` keeps what was
//! computed before the Ctrl-C.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let token = pulsar_cli::interrupt::install();
    match pulsar_cli::dispatch_with_cancel(&args, &token) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            if let Some(partial) = &e.partial {
                print!("{partial}");
            }
            eprintln!("{}", e.render());
            std::process::exit(e.code);
        }
    }
}
