#![warn(missing_docs)]
// Library code must surface failures as typed errors or documented
// panics, never ad-hoc unwraps; #[cfg(test)] modules opt back in.
#![warn(clippy::unwrap_used)]

//! # pulsar-cli
//!
//! Command-line front end for the pulsar toolchain. One binary,
//! seven subcommands:
//!
//! ```text
//! pulsar sim <deck.sp> [--nodes a,b] [--vcd out.vcd] [--csv out.csv] [--no-lint]
//! pulsar lint <deck.sp>... [--json] [--deny-warnings]
//! pulsar testgen <netlist.bench> [--site NAME] [--max-paths N]
//! pulsar campaign <netlist.bench> [--stride N]
//! pulsar faultsim <netlist.bench> [--tau SECONDS]
//! pulsar study <df|pulse> [--samples N] [--adaptive] [--precision EPS]
//! pulsar serve <socket> [daemon flags | one client operation]
//! ```
//!
//! `sim` drives the SPICE-flavoured deck parser and transient engine and
//! exports waveforms; `lint` runs the static verification pass from
//! `pulsar-lint` without solving anything; the netlist commands parse
//! ISCAS-85 text and run the pulse-test generation / campaign /
//! fault-simulation flows; `study` runs the paper's Monte Carlo coverage
//! experiments on the built-in 7-gate path, with `--adaptive` switching
//! the fixed per-point budget to the early-stopping engine; `serve`
//! runs the same studies and campaigns as a long-lived daemon behind a
//! JSONL-over-Unix-socket protocol with cross-job caches (see
//! `pulsar-serve`). The command
//! implementations are a library (this crate) so they are testable
//! without spawning processes; `main.rs` is a thin shim.

use std::fmt::Write as _;
use std::fs;
use std::time::{Duration, Instant, SystemTime};

use pulsar_analog::{
    parse_deck, to_csv, to_vcd, NodeId, Polarity, Recorder, SolverWorkspace, TraceCapture,
    TranConfig,
};
use pulsar_cells::{PathSpec, Tech};
use pulsar_core::{
    all_branch_faults, campaign_digest_repr, fault_simulate, plan_for_site, study_digest_repr,
    AdaptivePolicy, AdaptiveReport, Campaign, CoverageCurve, DefectKind, DfStudy, McConfig,
    PathUnderTest, PulsePattern, PulseStudy, ResilienceConfig, SiteOutcome, TestgenConfig,
};
use pulsar_logic::parse_iscas85;
use pulsar_obs::{
    config_digest, render_journal, CancelReason, CancelToken, Counter as ObsCounter, Event,
    RunManifest,
};
use pulsar_serve::{
    Client as ServeClient, Daemon as ServeDaemon, JobOutcome, JobSpec, ServeConfig,
    StudyKind as ServeStudyKind,
};
use pulsar_timing::TimingLibrary;

/// CLI-level error: a message ready for stderr plus an error kind, the
/// source chain that produced it, and a process exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Suggested process exit code.
    pub code: i32,
    /// Stable error-kind label: `"usage"`, `"runtime"`, or
    /// `"interrupted"`.
    pub kind: &'static str,
    /// Underlying causes, outermost first (empty when the message says
    /// it all).
    pub chain: Vec<String>,
    /// Partial stdout to print *before* the error — an interrupted
    /// campaign's honest partial report. `None` for ordinary failures.
    pub partial: Option<String>,
}

impl CliError {
    fn usage(msg: impl Into<String>) -> CliError {
        CliError {
            message: msg.into(),
            code: 2,
            kind: "usage",
            chain: Vec::new(),
            partial: None,
        }
    }

    fn run(msg: impl Into<String>) -> CliError {
        CliError {
            message: msg.into(),
            code: 1,
            kind: "runtime",
            chain: Vec::new(),
            partial: None,
        }
    }

    /// An operator interrupt (SIGINT): exit 130 = 128 + SIGINT, the shell
    /// convention. The partial report still reaches stdout; `message`
    /// tells the operator how to resume.
    fn interrupted(msg: impl Into<String>, partial: String) -> CliError {
        CliError {
            message: msg.into(),
            code: 130,
            kind: "interrupted",
            chain: Vec::new(),
            partial: Some(partial),
        }
    }

    /// A runtime error wrapping `e`: the message is `context: e` and the
    /// chain collects `e`'s `source()` ancestry.
    fn run_err(context: &str, e: &dyn std::error::Error) -> CliError {
        let mut chain = Vec::new();
        let mut cause = e.source();
        while let Some(c) = cause {
            chain.push(c.to_string());
            cause = c.source();
        }
        CliError {
            message: format!("{context}: {e}"),
            code: 1,
            kind: "runtime",
            chain,
            partial: None,
        }
    }

    /// The structured stderr rendering used by the `pulsar` binary for
    /// every diagnostic — lint, sim, and campaign failures all route
    /// through here:
    ///
    /// ```text
    /// pulsar: error[runtime]: transient: no convergence at t=1e-9
    ///   caused by: ...
    /// exit code 1 (0 = success, 1 = runtime failure, 2 = usage error)
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "pulsar: error[{}]: {}", self.kind, self.message);
        if !out.ends_with('\n') {
            out.push('\n');
        }
        for cause in &self.chain {
            let _ = writeln!(out, "  caused by: {cause}");
        }
        let _ = write!(
            out,
            "exit code {} (0 = success, 1 = runtime failure, 2 = usage error, 130 = interrupted)",
            self.code
        );
        out
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

/// Top-level usage text.
pub const USAGE: &str = "\
pulsar — pulse-propagation testing toolchain

USAGE:
  pulsar sim <deck.sp> [--nodes a,b] [--vcd FILE] [--csv FILE] [--no-lint] [--stats]
             [--trace-out FILE] [--metrics FILE]
  pulsar lint <deck.sp>... [--json] [--deny-warnings]
  pulsar testgen <netlist.bench> [--site NAME] [--max-paths N]
  pulsar campaign <netlist.bench> [--stride N] [--trace-out FILE] [--metrics FILE]
                  [--checkpoint FILE] [--resume FILE] [--deadline SECONDS]
                  [--contain-panics]
  pulsar faultsim <netlist.bench> [--tau SECONDS]
  pulsar study <df|pulse> [--samples N] [--seed S] [--r LIST] [--factors LIST]
               [--adaptive] [--precision EPS] [--max-samples N]
               [--trace-out FILE] [--metrics FILE]
  pulsar serve <socket> [--workers N] [--queue-depth N] [--spool DIR]
               [--tenant-budget N] [--metrics FILE]
  pulsar serve <socket> --submit <df|pulse|campaign> [--samples N] [--seed S]
               [--r LIST] [--factors LIST] [--netlist FILE] [--stride N]
               [--tenant NAME] [--deadline SECONDS] [--failure-budget F]
  pulsar serve <socket> --run <df|pulse|campaign> [same flags as --submit]
  pulsar serve <socket> <--wait JOB | --status JOB | --cancel JOB |
               --stream JOB | --stats | --shutdown>

  --trace-out FILE   write the structured JSONL event journal of the run
  --metrics FILE     write the run manifest (config digest, wall clock,
                     metric snapshot) as JSON
  --adaptive         early-stopping Monte Carlo: stop each grid point once
                     its coverage CI half-width meets --precision, then
                     refine crossover points with the saved budget
  --precision EPS    requested CI half-width for --adaptive (default 0.15)
  --max-samples N    per-point first-pass budget for --adaptive
                     (default: --samples)
  --checkpoint FILE  append per-site completion records to FILE; an
                     existing compatible checkpoint is resumed
  --resume FILE      like --checkpoint, but FILE must already exist
  --deadline SECONDS stop the campaign after a wall-clock budget and
                     report the honest partial result (exit 0)
  --contain-panics   turn a panicking worker into a failed site instead
                     of aborting the whole campaign

serve flags (daemon mode — no client operation given):
  --workers N        sharded worker pool size (default 2)
  --queue-depth N    bounded job queue depth; a full queue rejects new
                     submissions with a typed `busy` error (default 8)
  --spool DIR        checkpoint spool; drained and resumed jobs restart
                     bit-identically from here after a daemon restart
  --tenant-budget N  per-tenant failed-job budget; an over-budget tenant
                     gets typed `tenant-budget` rejections
serve flags (client operations):
  --submit KIND      enqueue a df/pulse study or campaign job, print its
                     id and config digest, return immediately
  --run KIND         submit, wait for the result, print it (exit 1 if
                     the job fails)
  --tenant NAME      attribute the job to a tenant for budget accounting
  --deadline SECONDS per-job wall-clock deadline
  --failure-budget F per-job tolerated site-failure fraction (0..=1)
  --wait/--status/--cancel/--stream JOB
                     block on / report / cancel / follow the journal of
                     a job by id; --stats and --shutdown take no value

Exit codes: 0 = success, 1 = runtime failure, 2 = usage error,
130 = interrupted (SIGINT; checkpointed work is resumable with --resume,
and an interrupted serve daemon resumes drained jobs from its --spool).
Typed serve rejections (busy, tenant-budget, shutdown) exit 1.
";

/// Dispatches a full argument vector (without the program name). Returns
/// the text to print on stdout. Long-running commands observe a fresh
/// (never-tripped) cancellation token; use [`dispatch_with_cancel`] to
/// wire a real interrupt source.
///
/// # Errors
///
/// [`CliError`] with a usage (exit 2) or runtime (exit 1) failure.
pub fn dispatch(args: &[String]) -> Result<String, CliError> {
    dispatch_with_cancel(args, &CancelToken::new())
}

/// [`dispatch`] with an explicit run-cancellation token, tripped by the
/// binary's SIGINT handler (see [`interrupt::install`]). An interrupted
/// run flushes its `--trace-out` / `--metrics` outputs and any
/// checkpoint, then fails with exit code 130 while still carrying the
/// partial report in [`CliError::partial`].
///
/// # Errors
///
/// As for [`dispatch`], plus the interrupted (exit 130) failure.
pub fn dispatch_with_cancel(args: &[String], token: &CancelToken) -> Result<String, CliError> {
    match args.first().map(String::as_str) {
        Some("sim") => cmd_sim(&args[1..], token),
        Some("lint") => cmd_lint(&args[1..]),
        Some("testgen") => cmd_testgen(&args[1..]),
        Some("campaign") => cmd_campaign(&args[1..], token),
        Some("faultsim") => cmd_faultsim(&args[1..]),
        Some("study") => cmd_study(&args[1..]),
        Some("serve") => cmd_serve(&args[1..], token),
        Some("--help" | "-h" | "help") | None => Ok(USAGE.to_owned()),
        Some(other) => Err(CliError::usage(format!(
            "unknown subcommand `{other}`\n\n{USAGE}"
        ))),
    }
}

/// SIGINT wiring for the `pulsar` binary.
///
/// The raw handler does the only async-signal-safe thing — one relaxed
/// atomic store — and a bridge thread turns the flag into a
/// [`CancelToken`] trip, which the solver step loops observe
/// cooperatively. A second Ctrl-C therefore still reaches the default
/// disposition path only after the run has flushed its checkpoint.
pub mod interrupt {
    use pulsar_obs::{CancelReason, CancelToken};
    use std::sync::atomic::{AtomicBool, Ordering};

    static INTERRUPTED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_sigint(_sig: i32) {
        // ordering: Relaxed is enough — the flag is a monotonic bool
        // polled by the bridge thread; no other data is published
        // through it (the CancelToken trip does its own Release).
        INTERRUPTED.store(true, Ordering::Relaxed);
    }

    /// Installs the SIGINT handler and returns the token it trips
    /// (with [`CancelReason::User`]). Call once, from `main`, before
    /// dispatching; the bridge thread is detached and dies with the
    /// process.
    pub fn install() -> CancelToken {
        let token = CancelToken::new();
        // SAFETY: `signal(2)` with a handler that only performs an
        // atomic store is async-signal-safe; no Rust state is touched
        // inside the handler.
        unsafe {
            signal(SIGINT, on_sigint);
        }
        let bridge = token.clone();
        // spawn: intentionally detached — the bridge polls a
        // process-global flag and dies with the process; there is no
        // earlier point at which joining it would be meaningful.
        std::thread::spawn(move || loop {
            // ordering: Relaxed — see `on_sigint`; monotonic flag only.
            if INTERRUPTED.load(Ordering::Relaxed) {
                bridge.cancel(CancelReason::User);
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
        });
        token
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Flags that do not consume a value; everything else starting with
/// `--` is assumed to take the following token as its value.
const BOOL_FLAGS: &[&str] = &[
    "--json",
    "--deny-warnings",
    "--no-lint",
    "--stats",
    "--contain-panics",
    "--adaptive",
    "--shutdown",
];

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn positionals(args: &[String]) -> Vec<&str> {
    // Tokens that are neither flags nor flag values.
    let mut out = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = !BOOL_FLAGS.contains(&a.as_str());
            continue;
        }
        out.push(a.as_str());
    }
    out
}

fn positional(args: &[String]) -> Option<&str> {
    positionals(args).first().copied()
}

fn read(path: &str) -> Result<String, CliError> {
    fs::read_to_string(path).map_err(|e| CliError::run(format!("cannot read `{path}`: {e}")))
}

fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// Completes a manifest with the run's clock fields and final journal /
/// metric state, writes it, and appends a "wrote" line to `out`.
fn write_manifest(
    mut manifest: RunManifest,
    rec: &Recorder,
    started_unix_ms: u64,
    t0: Instant,
    path: &str,
    out: &mut String,
) -> Result<(), CliError> {
    manifest.started_unix_ms = started_unix_ms;
    manifest.wall_ms = u64::try_from(t0.elapsed().as_millis()).unwrap_or(u64::MAX);
    manifest.events = rec.event_count();
    manifest.metrics = rec.snapshot();
    let mut doc = manifest.render_json();
    doc.push('\n');
    fs::write(path, doc).map_err(|e| CliError::run(format!("write {path}: {e}")))?;
    let _ = writeln!(out, "wrote {path}");
    Ok(())
}

/// Writes the recorder's journal as JSONL and appends a "wrote" line.
fn write_journal(rec: &Recorder, path: &str, out: &mut String) -> Result<(), CliError> {
    let events = rec.events();
    fs::write(path, render_journal(&events))
        .map_err(|e| CliError::run(format!("write {path}: {e}")))?;
    let _ = writeln!(out, "wrote {path} ({} events)", events.len());
    Ok(())
}

/// `pulsar sim`: lint a deck, run its `.tran`, export waveforms.
///
/// The static lint pass runs before any transient: error-severity
/// findings abort the run (bypass with `--no-lint`); warnings are
/// printed but do not block.
fn cmd_sim(args: &[String], token: &CancelToken) -> Result<String, CliError> {
    let path = positional(args).ok_or_else(|| CliError::usage("sim: missing deck path"))?;
    let text = read(path)?;
    let mut warnings = String::new();
    let deck = if has_flag(args, "--no-lint") {
        parse_deck(&text).map_err(|e| CliError::run_err("parse", &e))?
    } else {
        match pulsar_lint::load_deck(&text, &pulsar_lint::LintOptions::default()) {
            Ok((deck, report)) => {
                if !report.is_clean() {
                    warnings = report.render_human();
                }
                deck
            }
            Err(report) => {
                return Err(CliError::run(format!(
                    "{}(use `pulsar lint {path}` for details, --no-lint to bypass)",
                    report.render_human()
                )))
            }
        }
    };
    let tran: TranConfig = deck
        .tran
        .clone()
        .ok_or_else(|| CliError::run("deck has no .tran directive"))?;

    // Per-run observability: enabled only when some output needs it, so a
    // plain `pulsar sim` keeps the recorder on its branch-only fast path.
    let metrics_out = flag_value(args, "--metrics");
    let trace_out = flag_value(args, "--trace-out");
    let want_obs = has_flag(args, "--stats") || metrics_out.is_some() || trace_out.is_some();
    let rec = if want_obs {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    };
    let started_unix_ms = unix_ms();
    let t0 = Instant::now();
    let mut ws = SolverWorkspace::new();
    ws.set_recorder(rec.clone());
    ws.set_cancel_token(token.clone());
    let result = match deck
        .circuit
        .transient_with(&tran, &mut ws, &TraceCapture::All)
    {
        Ok(r) => r,
        Err(e @ pulsar_analog::Error::Cancelled { .. }) => {
            // Ctrl-C mid-solve: flush the requested observability outputs
            // before reporting the interrupt, so nothing is lost.
            let mut partial = String::new();
            if let Some(f) = trace_out {
                write_journal(&rec, f, &mut partial)?;
            }
            if let Some(f) = metrics_out {
                let manifest = RunManifest::new("sim", config_digest(&text));
                write_manifest(manifest, &rec, started_unix_ms, t0, f, &mut partial)?;
            }
            return Err(CliError::interrupted(format!("transient: {e}"), partial));
        }
        Err(e) => return Err(CliError::run_err("transient", &e)),
    };
    let snap = rec.snapshot();
    if rec.is_enabled() {
        let mut ev = Event::new("transient", 0);
        ev.label = Some(path.to_owned());
        ev.counters = snap.nonzero_counters();
        rec.event(ev);
    }

    // Node selection: --nodes a,b or every named node.
    let nodes: Vec<NodeId> = match flag_value(args, "--nodes") {
        Some(list) => list
            .split(',')
            .map(|n| {
                deck.node(n.trim())
                    .ok_or_else(|| CliError::run(format!("unknown node `{n}`")))
            })
            .collect::<Result<_, _>>()?,
        None => deck.circuit.nodes(),
    };
    if nodes.is_empty() {
        return Err(CliError::run("no nodes to dump"));
    }

    let mut out = warnings;
    let _ = writeln!(
        out,
        "simulated {} time points over {:.3e} s ({} nodes)",
        result.len(),
        tran.stop,
        nodes.len()
    );
    if has_flag(args, "--stats") {
        // Counters scoped to this run's recorder — concurrent runs in the
        // same process no longer bleed into each other. Which engine ran
        // depends on the MNA dimension (`Auto` crossover) and the
        // PULSAR_FORCE_DENSE environment override.
        let _ = writeln!(
            out,
            "solver stats: {} sparse solves ({} symbolic analyses, {} numeric factorizations, \
             {} Jacobian reuses), {} dense solves ({} iterations), {} dense fallbacks",
            snap.counter(ObsCounter::SparseSolves),
            snap.counter(ObsCounter::SymbolicAnalyses),
            snap.counter(ObsCounter::NumericFactorizations),
            snap.counter(ObsCounter::JacobianReuses),
            snap.counter(ObsCounter::DenseSolves),
            snap.counter(ObsCounter::DenseIterations),
            snap.counter(ObsCounter::DenseFallbacks)
        );
        let _ = writeln!(
            out,
            "transient stats: {} steps accepted, {} LTE rejections, {} Newton retries, \
             {} Newton iterations",
            snap.counter(ObsCounter::StepsAccepted),
            snap.counter(ObsCounter::LteRejections),
            snap.counter(ObsCounter::NewtonRetries),
            snap.counter(ObsCounter::NewtonIterations)
        );
    }
    if let Some(f) = flag_value(args, "--vcd") {
        fs::write(f, to_vcd(&deck.circuit, &result, &nodes))
            .map_err(|e| CliError::run(format!("write {f}: {e}")))?;
        let _ = writeln!(out, "wrote {f}");
    }
    if let Some(f) = flag_value(args, "--csv") {
        fs::write(f, to_csv(&deck.circuit, &result, &nodes))
            .map_err(|e| CliError::run(format!("write {f}: {e}")))?;
        let _ = writeln!(out, "wrote {f}");
    }
    // Without export flags, print final node voltages.
    if flag_value(args, "--vcd").is_none() && flag_value(args, "--csv").is_none() {
        for &n in &nodes {
            let _ = writeln!(
                out,
                "{} = {:.4} V",
                deck.circuit.node_name(n),
                result.trace(n).last_value()
            );
        }
    }
    if let Some(f) = trace_out {
        write_journal(&rec, f, &mut out)?;
    }
    if let Some(f) = metrics_out {
        let manifest = RunManifest::new("sim", config_digest(&text));
        write_manifest(manifest, &rec, started_unix_ms, t0, f, &mut out)?;
    }
    Ok(out)
}

/// `pulsar lint`: static verification of one or more decks, no solve.
///
/// Human-readable by default, one JSON document per deck with `--json`.
/// Exits non-zero when any deck has error-severity findings, or any
/// findings at all under `--deny-warnings`.
fn cmd_lint(args: &[String]) -> Result<String, CliError> {
    let paths = positionals(args);
    if paths.is_empty() {
        return Err(CliError::usage("lint: missing deck path"));
    }
    let json = has_flag(args, "--json");
    let deny = has_flag(args, "--deny-warnings");
    let mut out = String::new();
    let mut blocking = false;
    for path in &paths {
        let report = pulsar_lint::lint_deck(&read(path)?);
        blocking |= report.has_blocking(deny);
        if json {
            let _ = writeln!(out, "{}", report.render_json());
        } else {
            if paths.len() > 1 {
                let _ = writeln!(out, "== {path}");
            }
            out.push_str(&report.render_human());
        }
    }
    if blocking {
        return Err(CliError::run(out));
    }
    Ok(out)
}

/// `pulsar testgen`: plans for one site (or the first gate output).
fn cmd_testgen(args: &[String]) -> Result<String, CliError> {
    let path = positional(args).ok_or_else(|| CliError::usage("testgen: missing netlist path"))?;
    let nl = parse_iscas85(&read(path)?).map_err(|e| CliError::run_err("parse", &e))?;
    let mut cfg = TestgenConfig::default();
    if let Some(n) = flag_value(args, "--max-paths").and_then(|v| v.parse().ok()) {
        cfg.max_paths = n;
    }
    let site = match flag_value(args, "--site") {
        Some(name) => nl
            .find_signal(name)
            .ok_or_else(|| CliError::run(format!("no signal named `{name}`")))?,
        None => nl
            .gates()
            .first()
            .map(|g| g.output)
            .ok_or_else(|| CliError::run("netlist has no gates"))?,
    };

    let lib = TimingLibrary::generic();
    let plans =
        plan_for_site(&nl, site, &lib, &cfg).map_err(|e| CliError::run_err("testgen", &e))?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "site {}: {} sensitized path(s)",
        nl.signal_name(site),
        plans.len()
    );
    for (k, p) in plans.iter().take(10).enumerate() {
        let _ = writeln!(
            out,
            "  #{k}: {} gates from {}, {:?}, w_in {:.0} ps, w_th {:.0} ps, R_min {}",
            p.path.len(),
            nl.signal_name(p.path.from),
            p.polarity,
            p.w_in * 1e12,
            p.w_th * 1e12,
            p.r_min
                .map(|r| format!("{:.1} kohm", r / 1e3))
                .unwrap_or_else(|| "not in bracket".into()),
        );
    }
    Ok(out)
}

/// `pulsar campaign`: whole-netlist summary. Runs through the durable
/// path (cooperative cancellation, optional checkpoint/resume, wall-clock
/// deadline, panic containment) — without any of those flags the result
/// is outcome-identical to the plain in-process run.
fn cmd_campaign(args: &[String], token: &CancelToken) -> Result<String, CliError> {
    let path = positional(args).ok_or_else(|| CliError::usage("campaign: missing netlist path"))?;
    let text = read(path)?;
    let nl = parse_iscas85(&text).map_err(|e| CliError::run_err("parse", &e))?;
    let stride = flag_value(args, "--stride")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let metrics_out = flag_value(args, "--metrics");
    let trace_out = flag_value(args, "--trace-out");
    let deadline = match flag_value(args, "--deadline") {
        Some(v) => Some(Duration::from_secs_f64(v.parse().map_err(|_| {
            CliError::usage(format!(
                "campaign: --deadline `{v}` is not a number of seconds"
            ))
        })?)),
        None => None,
    };
    let checkpoint_path = match (
        flag_value(args, "--checkpoint"),
        flag_value(args, "--resume"),
    ) {
        (Some(_), Some(_)) => {
            return Err(CliError::usage(
                "campaign: --checkpoint and --resume are mutually exclusive (both name the \
                 checkpoint file; --resume just requires it to exist)",
            ))
        }
        (Some(c), None) => Some(c),
        (None, Some(r)) => {
            if !std::path::Path::new(r).exists() {
                return Err(CliError::run(format!(
                    "campaign: --resume checkpoint `{r}` does not exist \
                     (use --checkpoint to start a fresh durable run)"
                )));
            }
            Some(r)
        }
        (None, None) => None,
    };
    let rec = if metrics_out.is_some() || trace_out.is_some() {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    };
    let started_unix_ms = unix_ms();
    let t0 = Instant::now();
    let campaign = Campaign {
        stride,
        obs: rec.clone(),
        resilience: ResilienceConfig {
            deadline,
            contain_panics: has_flag(args, "--contain-panics"),
            ..ResilienceConfig::default()
        },
        ..Campaign::default()
    };
    let lib = TimingLibrary::generic();
    let report = match checkpoint_path {
        Some(p) => campaign.resume_from(&nl, &lib, token, std::path::Path::new(p)),
        None => campaign.run_durable(&nl, &lib, token, None),
    }
    .map_err(|e| CliError::run_err("campaign", &e))?;

    let mut out = report.render_report(&nl, checkpoint_path);
    if rec.is_enabled() {
        let snap = rec.snapshot();
        let _ = writeln!(
            out,
            "observability: {} site events journaled ({} planned, {} unsensitizable, {} failed)",
            rec.event_count(),
            snap.counter(ObsCounter::SitesPlanned),
            snap.counter(ObsCounter::SitesUnsensitizable),
            snap.counter(ObsCounter::SitesFailed)
        );
    }
    if let Some(f) = trace_out {
        write_journal(&rec, f, &mut out)?;
    }
    if let Some(f) = metrics_out {
        let mut manifest = RunManifest::new(
            "campaign",
            config_digest(&campaign_digest_repr(stride, &text)),
        );
        manifest.threads = campaign.threads;
        write_manifest(manifest, &rec, started_unix_ms, t0, f, &mut out)?;
    }
    // Ctrl-C: every output above (partial report, journal, manifest, and
    // the checkpoint itself) is already flushed — exit 130 with a resume
    // hint. Deadline truncation is a *successful* partial run (exit 0):
    // the operator asked for a budget and got everything it bought.
    if token.cancelled() == Some(CancelReason::User) {
        let msg = match checkpoint_path {
            Some(p) => {
                format!("campaign interrupted: checkpoint at {p} — continue with --resume {p}")
            }
            None => "campaign interrupted (no checkpoint; partial report above is all there is)"
                .to_owned(),
        };
        return Err(CliError::interrupted(msg, out));
    }
    Ok(out)
}

/// `pulsar faultsim`: campaign patterns vs every branch fault.
fn cmd_faultsim(args: &[String]) -> Result<String, CliError> {
    let path = positional(args).ok_or_else(|| CliError::usage("faultsim: missing netlist path"))?;
    let nl = parse_iscas85(&read(path)?).map_err(|e| CliError::run_err("parse", &e))?;
    let tau = flag_value(args, "--tau")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2e-9);

    let lib = TimingLibrary::generic();
    let report = Campaign::default()
        .run(&nl, &lib)
        .map_err(|e| CliError::run_err("campaign", &e))?;
    let patterns: Vec<PulsePattern> = report
        .sites
        .iter()
        .filter_map(|(_, o)| match o {
            SiteOutcome::Planned(p) => Some(PulsePattern::from_plan(&nl, p)),
            _ => None,
        })
        .collect();
    let faults = all_branch_faults(&nl);
    let fsim = fault_simulate(&nl, &lib, &patterns, &faults, tau)
        .map_err(|e| CliError::run_err("fault simulation", &e))?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} patterns x {} branch faults (tau = {tau:.2e} s): coverage {:.3}",
        patterns.len(),
        faults.len(),
        fsim.coverage()
    );
    let undetected = fsim.undetected();
    let _ = writeln!(out, "undetected branches: {}", undetected.len());
    for f in undetected.iter().take(8) {
        let _ = writeln!(
            out,
            "  pin {} of gate driving {}",
            f.pin,
            nl.signal_name(nl.gate(f.gate).output)
        );
    }
    Ok(out)
}

fn parse_f64_list(s: &str, flag: &str) -> Result<Vec<f64>, CliError> {
    s.split(',')
        .map(|v| {
            v.trim()
                .parse::<f64>()
                .map_err(|_| CliError::usage(format!("study: {flag} value `{v}` is not a number")))
        })
        .collect()
}

fn render_curves(out: &mut String, curves: &[CoverageCurve]) {
    // One renderer for every consumer (CLI, serve daemon, bench asserts):
    // same digest ⇒ byte-identical curve text, by construction.
    out.push_str(&CoverageCurve::render_set(curves));
}

fn render_adaptive(out: &mut String, report: &AdaptiveReport) {
    let _ = writeln!(
        out,
        "adaptive: spent {} of {} fixed-budget evals ({:.2}x fewer), {} on refinement",
        report.evals,
        report.fixed_budget_evals,
        report.fixed_budget_evals as f64 / report.evals.max(1) as f64,
        report.refine_evals
    );
    for p in &report.points {
        let _ = writeln!(
            out,
            "  f={:.2} r={:.1e}: coverage {:.3}, achieved hw {:.3} (requested {:.3}), n={}{}{}",
            p.factor,
            p.resistance,
            p.coverage,
            p.accuracy.achieved_halfwidth,
            p.accuracy.requested_halfwidth,
            p.accuracy.samples_spent,
            if p.accuracy.stopped_early {
                ", stopped early"
            } else {
                ""
            },
            if p.refined { ", refined" } else { "" }
        );
    }
}

/// `pulsar study`: the paper's Monte Carlo coverage experiment on the
/// built-in 7-gate path — `C_del(T, R)` (`df`) or `C_pulse(ω_th, R)`
/// (`pulse`). `--adaptive` switches the fixed per-point budget to the
/// early-stopping engine; the summary and the `--metrics` manifest then
/// carry the measured per-point `{requested, achieved}` precision.
fn cmd_study(args: &[String]) -> Result<String, CliError> {
    let kind = positional(args).ok_or_else(|| CliError::usage("study: missing kind (df|pulse)"))?;
    if kind != "df" && kind != "pulse" {
        return Err(CliError::usage(format!(
            "study: unknown kind `{kind}` (expected df or pulse)"
        )));
    }
    let samples: usize = match flag_value(args, "--samples") {
        Some(v) => v
            .parse()
            .map_err(|_| CliError::usage(format!("study: --samples `{v}` is not a count")))?,
        None => 24,
    };
    let seed: u64 = match flag_value(args, "--seed") {
        Some(v) => v
            .parse()
            .map_err(|_| CliError::usage(format!("study: --seed `{v}` is not an integer")))?,
        None => 2007,
    };
    let rs = parse_f64_list(flag_value(args, "--r").unwrap_or("1e3,30e3,100e3"), "--r")?;
    let factors = parse_f64_list(
        flag_value(args, "--factors").unwrap_or("0.9,1.1"),
        "--factors",
    )?;
    let adaptive = has_flag(args, "--adaptive");
    let precision: f64 = match flag_value(args, "--precision") {
        Some(v) => v
            .parse()
            .map_err(|_| CliError::usage(format!("study: --precision `{v}` is not a number")))?,
        None => 0.15,
    };
    let max_samples: usize = match flag_value(args, "--max-samples") {
        Some(v) => v
            .parse()
            .map_err(|_| CliError::usage(format!("study: --max-samples `{v}` is not a count")))?,
        None => samples,
    };
    let policy = AdaptivePolicy::new(precision, max_samples);

    let metrics_out = flag_value(args, "--metrics");
    let trace_out = flag_value(args, "--trace-out");
    let rec = if metrics_out.is_some() || trace_out.is_some() {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    };
    let started_unix_ms = unix_ms();
    let t0 = Instant::now();

    let put = PathUnderTest {
        spec: PathSpec::paper_chain(),
        defect: DefectKind::ExternalRop,
        stage: 1,
        tech: Tech::generic_180nm(),
    };
    let mc = McConfig {
        obs: rec.clone(),
        ..McConfig::paper(samples, seed)
    };

    let mut out = String::new();
    let report: Option<AdaptiveReport>;
    let curves: Vec<CoverageCurve>;
    if kind == "df" {
        let study = DfStudy::new(put, mc);
        let calib = study
            .calibrate()
            .map_err(|e| CliError::run_err("study calibration", &e))?;
        let _ = writeln!(
            out,
            "df study on the paper path: T0 = {:.3e} s, {} resistances x {} clock factors, \
             N = {samples}, seed {seed}",
            calib.t0,
            rs.len(),
            factors.len()
        );
        if adaptive {
            let r = study
                .coverage_adaptive(&calib, &rs, &factors, &policy, None)
                .map_err(|e| CliError::run_err("adaptive study", &e))?;
            curves = r.curves.clone();
            report = Some(r);
        } else {
            curves = study
                .coverage(&calib, &rs, &factors)
                .map_err(|e| CliError::run_err("study", &e))?;
            report = None;
        }
    } else {
        let study = PulseStudy::new(put, mc, Polarity::PositiveGoing);
        let calib = study
            .calibrate()
            .map_err(|e| CliError::run_err("study calibration", &e))?;
        let _ = writeln!(
            out,
            "pulse study on the paper path: w_in = {:.3e} s, w_th = {:.3e} s, {} resistances \
             x {} threshold factors, N = {samples}, seed {seed}",
            calib.w_in,
            calib.w_th,
            rs.len(),
            factors.len()
        );
        if adaptive {
            let r = study
                .coverage_adaptive(&calib, &rs, &factors, &policy, None)
                .map_err(|e| CliError::run_err("adaptive study", &e))?;
            curves = r.curves.clone();
            report = Some(r);
        } else {
            curves = study
                .coverage(&calib, &rs, &factors)
                .map_err(|e| CliError::run_err("study", &e))?;
            report = None;
        }
    }
    render_curves(&mut out, &curves);
    if let Some(r) = &report {
        render_adaptive(&mut out, r);
    }
    if let Some(f) = trace_out {
        write_journal(&rec, f, &mut out)?;
    }
    if let Some(f) = metrics_out {
        let mut manifest = RunManifest::new(
            "study",
            config_digest(&study_digest_repr(
                kind, samples, seed, &rs, &factors, adaptive, &policy,
            )),
        );
        manifest.seed = Some(seed);
        manifest.samples = Some(samples);
        manifest.tech = Some("generic_180nm".to_owned());
        if let Some(r) = &report {
            manifest.adaptive = Some(r.to_manifest());
        }
        write_manifest(manifest, &rec, started_unix_ms, t0, f, &mut out)?;
    }
    Ok(out)
}

/// The serve client operations that are mutually exclusive on one
/// invocation. `--stats` and `--shutdown` are boolean; the rest consume
/// a value (a job id or a spec kind).
const SERVE_OPS: &[&str] = &[
    "--submit",
    "--run",
    "--wait",
    "--status",
    "--cancel",
    "--stream",
    "--stats",
    "--shutdown",
];

/// `pulsar serve`: the async campaign daemon and its protocol client.
///
/// Without a client operation the command *is* the daemon: it binds the
/// Unix socket, serves submitted jobs on a sharded worker pool with
/// cross-job caches, and on SIGINT or a client `--shutdown` drains
/// in-flight jobs through the checkpoint path before exiting. With a
/// client operation it connects to an already-running daemon instead.
fn cmd_serve(args: &[String], token: &CancelToken) -> Result<String, CliError> {
    let socket = positional(args).ok_or_else(|| CliError::usage("serve: missing socket path"))?;
    let sock = std::path::PathBuf::from(socket);
    let ops: Vec<&str> = SERVE_OPS
        .iter()
        .copied()
        .filter(|f| has_flag(args, f))
        .collect();
    if ops.len() > 1 {
        return Err(CliError::usage(format!(
            "serve: at most one client operation per invocation (got {})",
            ops.join(" ")
        )));
    }
    match ops.first().copied() {
        None => serve_daemon(args, sock, token),
        Some(op) => serve_client(op, args, &sock),
    }
}

/// Daemon mode: start, bridge SIGINT into the daemon token, join.
fn serve_daemon(
    args: &[String],
    sock: std::path::PathBuf,
    token: &CancelToken,
) -> Result<String, CliError> {
    let mut cfg = ServeConfig::new(sock);
    if let Some(v) = flag_value(args, "--workers") {
        cfg.workers = v
            .parse()
            .map_err(|_| CliError::usage(format!("serve: --workers `{v}` is not a count")))?;
    }
    if let Some(v) = flag_value(args, "--queue-depth") {
        cfg.queue_depth = v
            .parse()
            .map_err(|_| CliError::usage(format!("serve: --queue-depth `{v}` is not a count")))?;
    }
    cfg.spool = flag_value(args, "--spool").map(std::path::PathBuf::from);
    cfg.metrics_out = flag_value(args, "--metrics").map(std::path::PathBuf::from);
    if let Some(v) = flag_value(args, "--tenant-budget") {
        cfg.tenant_budget = Some(v.parse().map_err(|_| {
            CliError::usage(format!("serve: --tenant-budget `{v}` is not a count"))
        })?);
    }
    let workers = cfg.workers;
    let depth = cfg.queue_depth;
    let daemon = ServeDaemon::start(cfg)
        .map_err(|e| CliError::run(format!("serve: cannot start daemon: {e}")))?;
    // Readiness goes to stderr so stdout stays a clean summary stream.
    eprintln!(
        "pulsar serve: listening on {} ({workers} workers, queue depth {depth})",
        daemon.socket().display()
    );

    let sig = token.clone();
    let dtoken = daemon.token().clone();
    // spawn: detached SIGINT bridge — it exits when either token trips,
    // and the process exits right after `join` returns regardless.
    std::thread::spawn(move || loop {
        if sig.is_cancelled() {
            dtoken.cancel(CancelReason::User);
            return;
        }
        if dtoken.is_cancelled() {
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    });

    let summary = daemon
        .join()
        .map_err(|e| CliError::run(format!("serve: {e}")))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "serve summary: {} jobs admitted, {} completed, {} failed, {} drained to checkpoints, \
         {} whole-result cache hits",
        summary.jobs_admitted,
        summary.jobs_completed,
        summary.jobs_failed,
        summary.jobs_drained,
        summary.result_cache_hits
    );
    if token.is_cancelled() {
        return Err(CliError::interrupted(
            "serve interrupted: in-flight jobs drained to their checkpoints; restart with the \
             same --spool to resume them",
            out,
        ));
    }
    Ok(out)
}

/// Client mode: one operation against a running daemon.
fn serve_client(op: &str, args: &[String], sock: &std::path::Path) -> Result<String, CliError> {
    let mut client = ServeClient::connect(sock).map_err(|e| {
        CliError::run(format!(
            "serve: cannot connect to `{}`: {e}",
            sock.display()
        ))
    })?;
    let fail = |e: pulsar_serve::ClientError| CliError::run(format!("serve: {e}"));
    match op {
        "--submit" | "--run" => {
            let kind = flag_value(args, op)
                .ok_or_else(|| CliError::usage(format!("serve: {op} needs a kind")))?;
            let spec = serve_spec(args, kind)?;
            let tenant = flag_value(args, "--tenant");
            let deadline_ms = match flag_value(args, "--deadline") {
                Some(v) => {
                    let secs: f64 = v.parse().map_err(|_| {
                        CliError::usage(format!("serve: --deadline `{v}` is not a number"))
                    })?;
                    Some((secs * 1e3) as u64)
                }
                None => None,
            };
            let budget = match flag_value(args, "--failure-budget") {
                Some(v) => Some(v.parse().map_err(|_| {
                    CliError::usage(format!("serve: --failure-budget `{v}` is not a number"))
                })?),
                None => None,
            };
            let (job, digest, cached) = client
                .submit_with(&spec, tenant, deadline_ms, budget)
                .map_err(fail)?;
            let mut out = String::new();
            let _ = writeln!(
                out,
                "job {job} digest {digest:#018x}{}",
                if cached {
                    " (whole-result cache hit)"
                } else {
                    " queued"
                }
            );
            if op == "--submit" {
                return Ok(out);
            }
            let o = client.wait(job).map_err(fail)?;
            if o.state == "failed" {
                return Err(CliError::run(format!(
                    "serve: job {job} failed: {}",
                    o.error.unwrap_or_default()
                )));
            }
            out.push_str(&serve_render_outcome(&o));
            Ok(out)
        }
        "--wait" | "--status" | "--cancel" => {
            let job = serve_job_id(args, op)?;
            let o = match op {
                "--wait" => client.wait(job),
                "--status" => client.status(job),
                _ => client.cancel(job),
            }
            .map_err(fail)?;
            Ok(serve_render_outcome(&o))
        }
        "--stream" => {
            let job = serve_job_id(args, "--stream")?;
            let mut out = String::new();
            let state = client
                .stream(job, |event| {
                    out.push_str(event);
                    out.push('\n');
                })
                .map_err(fail)?;
            let _ = writeln!(out, "stream ended: job {job} {state}");
            Ok(out)
        }
        "--stats" => {
            let mut payload = client.stats().map_err(fail)?;
            payload.push('\n');
            Ok(payload)
        }
        "--shutdown" => {
            client.shutdown().map_err(fail)?;
            Ok("daemon shutting down\n".to_owned())
        }
        other => Err(CliError::usage(format!(
            "serve: unknown client operation `{other}`"
        ))),
    }
}

/// Parses a submit/run spec from the CLI flags, with the same defaults
/// as `pulsar study` / `pulsar campaign`.
fn serve_spec(args: &[String], kind: &str) -> Result<JobSpec, CliError> {
    if let Some(k) = ServeStudyKind::parse(kind) {
        let samples: usize = match flag_value(args, "--samples") {
            Some(v) => v
                .parse()
                .map_err(|_| CliError::usage(format!("serve: --samples `{v}` is not a count")))?,
            None => 24,
        };
        let seed: u64 = match flag_value(args, "--seed") {
            Some(v) => v
                .parse()
                .map_err(|_| CliError::usage(format!("serve: --seed `{v}` is not an integer")))?,
            None => 2007,
        };
        let rs = parse_f64_list(flag_value(args, "--r").unwrap_or("1e3,30e3,100e3"), "--r")?;
        let factors = parse_f64_list(
            flag_value(args, "--factors").unwrap_or("0.9,1.1"),
            "--factors",
        )?;
        return Ok(JobSpec::Study {
            kind: k,
            samples,
            seed,
            rs,
            factors,
        });
    }
    if kind == "campaign" {
        let path = flag_value(args, "--netlist")
            .ok_or_else(|| CliError::usage("serve: campaign jobs need --netlist FILE"))?;
        let netlist = read(path)?;
        let stride: usize = match flag_value(args, "--stride") {
            Some(v) => v
                .parse()
                .map_err(|_| CliError::usage(format!("serve: --stride `{v}` is not a count")))?,
            None => 1,
        };
        return Ok(JobSpec::Campaign { netlist, stride });
    }
    Err(CliError::usage(format!(
        "serve: unknown job kind `{kind}` (expected df, pulse, or campaign)"
    )))
}

fn serve_job_id(args: &[String], flag: &str) -> Result<u64, CliError> {
    let v = flag_value(args, flag)
        .ok_or_else(|| CliError::usage(format!("serve: {flag} needs a job id")))?;
    v.parse()
        .map_err(|_| CliError::usage(format!("serve: {flag} `{v}` is not a job id")))
}

fn serve_render_outcome(o: &JobOutcome) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "job {}: {}", o.job, o.state);
    if let Some(r) = &o.result {
        out.push_str(r);
        if !r.ends_with('\n') {
            out.push('\n');
        }
    }
    if let Some(e) = &o.error {
        let _ = writeln!(out, "error: {e}");
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    fn tmp(name: &str, content: &str) -> String {
        let dir = std::env::temp_dir().join("pulsar-cli-tests");
        fs::create_dir_all(&dir).expect("temp dir");
        let p = dir.join(name);
        fs::write(&p, content).expect("write temp file");
        p.to_string_lossy().into_owned()
    }

    const DECK: &str = "rc deck\nV1 in 0 PULSE(0 1.8 1n 0.1n 0.1n 0.5n)\nR1 in out 1k\nC1 out 0 0.1p\n.tran 10p 4n\n.end\n";

    #[test]
    fn help_is_shown_by_default() {
        let out = dispatch(&[]).unwrap();
        assert!(out.contains("USAGE"));
        let out = dispatch(&["help".into()]).unwrap();
        assert!(out.contains("pulsar sim"));
    }

    #[test]
    fn unknown_subcommand_is_a_usage_error() {
        let e = dispatch(&["frobnicate".into()]).unwrap_err();
        assert_eq!(e.code, 2);
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn sim_prints_final_voltages() {
        let deck = tmp("a.sp", DECK);
        let out = dispatch(&["sim".into(), deck]).unwrap();
        assert!(out.contains("time points"), "{out}");
        assert!(out.contains("out ="), "{out}");
    }

    #[test]
    fn sim_stats_reports_solver_counters() {
        let deck = tmp("stats.sp", DECK);
        let out = dispatch(&["sim".into(), deck.clone(), "--stats".into()]).unwrap();
        assert!(out.contains("solver stats:"), "{out}");
        // The RC deck is tiny, so the `Auto` crossover keeps it dense.
        assert!(out.contains("dense solves"), "{out}");

        let out = dispatch(&["sim".into(), deck]).unwrap();
        assert!(!out.contains("solver stats:"), "{out}");
    }

    #[test]
    fn sim_exports_vcd_and_csv() {
        let deck = tmp("b.sp", DECK);
        let vcd = tmp("b.vcd", "");
        let csv = tmp("b.csv", "");
        let out = dispatch(&[
            "sim".into(),
            deck,
            "--nodes".into(),
            "in,out".into(),
            "--vcd".into(),
            vcd.clone(),
            "--csv".into(),
            csv.clone(),
        ])
        .unwrap();
        assert!(out.contains("wrote"));
        assert!(fs::read_to_string(&vcd).unwrap().contains("$timescale"));
        assert!(fs::read_to_string(&csv).unwrap().starts_with("t,in,out"));
    }

    #[test]
    fn sim_rejects_missing_tran_and_unknown_nodes() {
        let deck = tmp("c.sp", "t\nV1 a 0 1.0\nR1 a 0 1k\n.end\n");
        let e = dispatch(&["sim".into(), deck]).unwrap_err();
        assert!(e.message.contains(".tran"));

        let deck = tmp("d.sp", DECK);
        let e = dispatch(&["sim".into(), deck, "--nodes".into(), "ghost".into()]).unwrap_err();
        assert!(e.message.contains("ghost"));
    }

    const BROKEN_DECK: &str = "broken\nV1 a a DC 1.0\nR1 a 0 1k\n.tran 10p 4n\n.end\n";

    #[test]
    fn lint_passes_a_clean_deck() {
        let deck = tmp("lint_ok.sp", DECK);
        let out = dispatch(&["lint".into(), deck]).unwrap();
        assert!(out.contains("no diagnostics"), "{out}");
    }

    #[test]
    fn lint_rejects_a_broken_deck_with_codes() {
        let deck = tmp("lint_bad.sp", BROKEN_DECK);
        let e = dispatch(&["lint".into(), deck]).unwrap_err();
        assert_eq!(e.code, 1);
        assert!(e.message.contains("PL0101"), "{}", e.message);
        assert!(e.message.contains("fix:"), "{}", e.message);
    }

    #[test]
    fn lint_emits_json() {
        let deck = tmp("lint_json.sp", BROKEN_DECK);
        let e = dispatch(&["lint".into(), deck, "--json".into()]).unwrap_err();
        assert!(e.message.contains("\"code\""), "{}", e.message);
        assert!(e.message.contains("\"summary\""), "{}", e.message);
    }

    #[test]
    fn lint_deny_warnings_blocks_warning_only_decks() {
        // Floating capacitor island: warning-severity only.
        let warn_deck = "warn\nV1 in 0 DC 1.0\nR1 in out 1k\nC1 x y 1p\n.tran 10p 4n\n.end\n";
        let deck = tmp("lint_warn.sp", warn_deck);
        assert!(dispatch(&["lint".into(), deck.clone()]).is_ok());
        let e = dispatch(&["lint".into(), deck, "--deny-warnings".into()]).unwrap_err();
        assert_eq!(e.code, 1);
    }

    #[test]
    fn lint_handles_multiple_decks_with_headers() {
        let a = tmp("multi_a.sp", DECK);
        let b = tmp("multi_b.sp", BROKEN_DECK);
        let e = dispatch(&["lint".into(), a.clone(), b.clone()]).unwrap_err();
        assert!(e.message.contains(&format!("== {a}")), "{}", e.message);
        assert!(e.message.contains(&format!("== {b}")), "{}", e.message);
    }

    #[test]
    fn sim_is_gated_by_lint_unless_opted_out() {
        let deck = tmp("sim_gate.sp", BROKEN_DECK);
        let e = dispatch(&["sim".into(), deck.clone()]).unwrap_err();
        assert!(e.message.contains("PL0101"), "{}", e.message);
        assert!(e.message.contains("--no-lint"), "{}", e.message);
        // Bypass reaches the solver, which then fails on the singular
        // system — the lint verdict and the solver agree.
        let e = dispatch(&["sim".into(), deck, "--no-lint".into()]).unwrap_err();
        assert!(e.message.contains("singular"), "{}", e.message);
    }

    const C17: &str = "\
INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\nOUTPUT(22)\nOUTPUT(23)\n\
10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n19 = NAND(11, 7)\n\
22 = NAND(10, 16)\n23 = NAND(16, 19)\n";

    #[test]
    fn testgen_plans_a_named_site() {
        let bench = tmp("c17.bench", C17);
        let out = dispatch(&["testgen".into(), bench, "--site".into(), "11".into()]).unwrap();
        assert!(out.contains("site 11:"), "{out}");
        assert!(out.contains("R_min"), "{out}");
    }

    #[test]
    fn campaign_summarizes_c17() {
        let bench = tmp("c17b.bench", C17);
        let out = dispatch(&["campaign".into(), bench]).unwrap();
        assert!(out.contains("sites probed"), "{out}");
        assert!(out.contains("pattern count"), "{out}");
        assert!(out.contains("site coverage"), "{out}");
    }

    #[test]
    fn faultsim_reports_coverage() {
        let bench = tmp("c17c.bench", C17);
        let out = dispatch(&["faultsim".into(), bench]).unwrap();
        assert!(out.contains("branch faults"), "{out}");
        assert!(out.contains("coverage"), "{out}");
    }

    #[test]
    fn missing_files_fail_cleanly() {
        let e = dispatch(&["sim".into(), "/definitely/not/here.sp".into()]).unwrap_err();
        assert_eq!(e.code, 1);
        assert!(e.message.contains("cannot read"));
    }

    #[test]
    fn errors_render_kind_and_exit_code_table() {
        let e = dispatch(&["frobnicate".into()]).unwrap_err();
        let r = e.render();
        assert!(r.starts_with("pulsar: error[usage]:"), "{r}");
        assert!(r.contains("exit code 2"), "{r}");
        assert!(
            r.contains("0 = success, 1 = runtime failure, 2 = usage error"),
            "{r}"
        );

        let deck = tmp("render.sp", "t\nV1 a 0 1.0\nR1 a 0 1k\n.end\n");
        let e = dispatch(&["sim".into(), deck]).unwrap_err();
        assert!(e.render().contains("error[runtime]"), "{}", e.render());
    }

    #[test]
    fn sim_writes_journal_and_manifest() {
        let deck = tmp("obs.sp", DECK);
        let trace = tmp("obs.jsonl", "");
        let metrics = tmp("obs_manifest.json", "");
        let out = dispatch(&[
            "sim".into(),
            deck,
            "--trace-out".into(),
            trace.clone(),
            "--metrics".into(),
            metrics.clone(),
        ])
        .unwrap();
        assert!(out.contains("wrote"), "{out}");
        let journal = fs::read_to_string(&trace).unwrap();
        assert!(journal.contains("\"kind\":\"transient\""), "{journal}");
        assert!(journal.contains("\"counters\""), "{journal}");
        let manifest = fs::read_to_string(&metrics).unwrap();
        assert!(manifest.contains("\"kind\":\"sim\""), "{manifest}");
        assert!(manifest.contains("\"schema_version\""), "{manifest}");
        assert!(manifest.contains("\"config_digest\""), "{manifest}");
        assert!(manifest.contains("\"metrics\""), "{manifest}");
        // The manifest must parse with the crate's own JSON parser.
        pulsar_obs::json::parse(manifest.trim()).expect("manifest parses");
    }

    fn fresh_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("pulsar-cli-tests");
        fs::create_dir_all(&dir).expect("temp dir");
        let p = dir.join(format!("{}-{}", std::process::id(), name));
        let _ = fs::remove_file(&p);
        p
    }

    #[test]
    fn campaign_checkpoint_resumes_and_reports_restored_sites() {
        let bench = tmp("c17ck.bench", C17);
        let ck = fresh_path("c17.ckpt");
        let ck_s = ck.to_string_lossy().into_owned();
        let args = vec![
            "campaign".to_owned(),
            bench,
            "--checkpoint".to_owned(),
            ck_s,
        ];
        let first = dispatch(&args).unwrap();
        assert!(!first.contains("restored"), "{first}");
        assert!(ck.exists(), "checkpoint file must be written");
        let second = dispatch(&args).unwrap();
        assert!(second.contains("sites restored from"), "{second}");
        // Identical campaign results either way.
        assert_eq!(first.lines().next(), second.lines().next());
        let _ = fs::remove_file(&ck);
    }

    #[test]
    fn interrupted_campaign_exits_130_with_partial_report() {
        let bench = tmp("c17int.bench", C17);
        let ck = fresh_path("c17int.ckpt");
        let ck_s = ck.to_string_lossy().into_owned();
        let token = CancelToken::new();
        token.cancel(CancelReason::User);
        let e = dispatch_with_cancel(
            &[
                "campaign".to_owned(),
                bench,
                "--checkpoint".to_owned(),
                ck_s.clone(),
            ],
            &token,
        )
        .unwrap_err();
        assert_eq!(e.code, 130);
        assert_eq!(e.kind, "interrupted");
        assert!(
            e.message.contains(&format!("--resume {ck_s}")),
            "{}",
            e.message
        );
        let partial = e.partial.as_deref().expect("partial report survives");
        assert!(partial.contains("TRUNCATED (interrupted)"), "{partial}");
        assert!(e.render().contains("130 = interrupted"), "{}", e.render());
        let _ = fs::remove_file(&ck);
    }

    #[test]
    fn resume_requires_an_existing_checkpoint() {
        let bench = tmp("c17res.bench", C17);
        let e = dispatch(&[
            "campaign".to_owned(),
            bench.clone(),
            "--resume".to_owned(),
            "/definitely/not/here.ckpt".to_owned(),
        ])
        .unwrap_err();
        assert_eq!(e.code, 1);
        assert!(e.message.contains("does not exist"), "{}", e.message);

        let e = dispatch(&[
            "campaign".to_owned(),
            bench,
            "--resume".to_owned(),
            "a".to_owned(),
            "--checkpoint".to_owned(),
            "b".to_owned(),
        ])
        .unwrap_err();
        assert_eq!(e.code, 2, "{}", e.message);
    }

    #[test]
    fn deadline_zero_truncates_but_exits_zero() {
        let bench = tmp("c17dl.bench", C17);
        let out = dispatch(&[
            "campaign".to_owned(),
            bench,
            "--deadline".to_owned(),
            "0".to_owned(),
        ])
        .unwrap();
        assert!(out.contains("TRUNCATED (deadline)"), "{out}");
        assert!(out.contains("0 sites probed"), "{out}");

        let bench = tmp("c17dlbad.bench", C17);
        let e = dispatch(&[
            "campaign".to_owned(),
            bench,
            "--deadline".to_owned(),
            "soon".to_owned(),
        ])
        .unwrap_err();
        assert_eq!(e.code, 2, "{}", e.message);
    }

    #[test]
    fn campaign_writes_site_journal_and_manifest() {
        let bench = tmp("c17obs.bench", C17);
        let trace = tmp("c17obs.jsonl", "");
        let metrics = tmp("c17obs_manifest.json", "");
        let out = dispatch(&[
            "campaign".into(),
            bench,
            "--trace-out".into(),
            trace.clone(),
            "--metrics".into(),
            metrics.clone(),
        ])
        .unwrap();
        assert!(out.contains("observability:"), "{out}");
        let journal = fs::read_to_string(&trace).unwrap();
        assert!(journal.contains("\"kind\":\"site\""), "{journal}");
        // One event per probed site, consistent with the summary line.
        let probed: usize = out
            .lines()
            .find(|l| l.contains("sites probed"))
            .and_then(|l| l.split_whitespace().next())
            .and_then(|n| n.parse().ok())
            .expect("summary names the probed count");
        assert_eq!(journal.lines().count(), probed);
        let manifest = fs::read_to_string(&metrics).unwrap();
        assert!(manifest.contains("\"kind\":\"campaign\""), "{manifest}");
    }

    #[test]
    fn study_rejects_bad_kind_and_bad_lists() {
        let e = dispatch(&["study".into()]).unwrap_err();
        assert_eq!(e.code, 2);
        assert!(e.message.contains("df|pulse"), "{}", e.message);

        let e = dispatch(&["study".into(), "both".into()]).unwrap_err();
        assert_eq!(e.code, 2);
        assert!(e.message.contains("both"), "{}", e.message);

        let e =
            dispatch(&["study".into(), "df".into(), "--r".into(), "1e3,tall".into()]).unwrap_err();
        assert_eq!(e.code, 2);
        assert!(e.message.contains("tall"), "{}", e.message);
    }

    #[test]
    fn study_fixed_prints_one_curve_per_factor() {
        let out = dispatch(&[
            "study".into(),
            "df".into(),
            "--samples".into(),
            "4".into(),
            "--r".into(),
            "1e3,100e3".into(),
            "--factors".into(),
            "0.9,1.1".into(),
        ])
        .unwrap();
        assert!(out.contains("T0 ="), "{out}");
        assert_eq!(
            out.lines().filter(|l| l.starts_with("factor ")).count(),
            2,
            "{out}"
        );
        assert!(!out.contains("adaptive:"), "{out}");
    }

    #[test]
    fn study_adaptive_reports_accuracy_and_writes_manifest() {
        let metrics = tmp("study_manifest.json", "");
        let out = dispatch(&[
            "study".into(),
            "df".into(),
            "--samples".into(),
            "6".into(),
            "--r".into(),
            "1e3,100e3".into(),
            "--adaptive".into(),
            "--precision".into(),
            "0.4".into(),
            "--metrics".into(),
            metrics.clone(),
        ])
        .unwrap();
        assert!(out.contains("adaptive: spent"), "{out}");
        assert!(out.contains("achieved hw"), "{out}");
        let manifest = fs::read_to_string(&metrics).unwrap();
        assert!(manifest.contains("\"kind\":\"study\""), "{manifest}");
        assert!(manifest.contains("\"adaptive\""), "{manifest}");
        assert!(manifest.contains("\"achieved_halfwidth\""), "{manifest}");
        pulsar_obs::json::parse(manifest.trim()).expect("manifest parses");
    }

    #[test]
    fn study_pulse_runs_adaptively() {
        let out = dispatch(&[
            "study".into(),
            "pulse".into(),
            "--samples".into(),
            "4".into(),
            "--r".into(),
            "1e3,100e3".into(),
            "--factors".into(),
            "1.0".into(),
            "--adaptive".into(),
        ])
        .unwrap();
        assert!(out.contains("w_th ="), "{out}");
        assert!(out.contains("adaptive: spent"), "{out}");
    }
}
