//! Process-level tests of `pulsar serve`: a daemon killed hard (SIGKILL)
//! mid-job must, on restart over the same spool, produce a result
//! byte-identical to an uninterrupted run; SIGINT must exit 130.

#![allow(clippy::unwrap_used)]

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_pulsar")
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pulsar-serve-cli-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start_daemon(sock: &Path, spool: &Path) -> Child {
    let child = Command::new(bin())
        .args([
            "serve",
            sock.to_str().unwrap(),
            "--workers",
            "1",
            "--spool",
            spool.to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while !sock.exists() {
        assert!(Instant::now() < deadline, "daemon never bound {sock:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
    child
}

fn client(sock: &Path, args: &[&str]) -> Output {
    Command::new(bin())
        .arg("serve")
        .arg(sock)
        .args(args)
        .output()
        .unwrap()
}

/// The df spec used throughout: small enough for test time, large
/// enough that a SIGKILL ~50 ms in lands mid-job more often than not
/// (either way the resumed result must match the reference bytes).
const SPEC: &[&str] = &[
    "df",
    "--samples",
    "6",
    "--seed",
    "42",
    "--r",
    "1e3,30e3",
    "--factors",
    "0.9,1.1",
];

fn run_spec(sock: &Path) -> Output {
    let mut args = vec!["--run"];
    args.extend_from_slice(SPEC);
    client(sock, &args)
}

/// Drops the leading `job N digest ...` line, leaving the result body.
fn body(stdout: &[u8]) -> String {
    let text = String::from_utf8(stdout.to_vec()).unwrap();
    text.split_once('\n').map_or("", |x| x.1).to_owned()
}

#[test]
fn sigkill_mid_job_then_restart_resumes_bit_identically() {
    let dir = tmp_dir("sigkill");

    // Reference: an uninterrupted daemon runs the spec to completion.
    let ref_sock = dir.join("ref.sock");
    let mut ref_daemon = start_daemon(&ref_sock, &dir.join("ref-spool"));
    let reference = run_spec(&ref_sock);
    assert!(reference.status.success(), "reference run failed");
    let reference_body = body(&reference.stdout);
    assert!(reference_body.contains("df study on the paper path"));
    assert!(client(&ref_sock, &["--shutdown"]).status.success());
    assert!(ref_daemon.wait().unwrap().success());

    // Daemon A: submit the same spec to a shared spool, then SIGKILL it
    // mid-job — no drain, no checkpoint flush beyond what the durable
    // run already wrote.
    let spool = dir.join("spool");
    let sock_a = dir.join("a.sock");
    let mut daemon_a = start_daemon(&sock_a, &spool);
    let mut submit = vec!["--submit"];
    submit.extend_from_slice(SPEC);
    let accepted = client(&sock_a, &submit);
    assert!(accepted.status.success(), "submit rejected");
    assert!(String::from_utf8_lossy(&accepted.stdout).contains("queued"));
    std::thread::sleep(Duration::from_millis(50));
    daemon_a.kill().unwrap();
    daemon_a.wait().unwrap();

    // Daemon B over the same spool: resubmitting the identical digest
    // resumes from the checkpoint and must reproduce the reference
    // bytes exactly.
    let sock_b = dir.join("b.sock");
    let mut daemon_b = start_daemon(&sock_b, &spool);
    let resumed = run_spec(&sock_b);
    assert!(resumed.status.success(), "resumed run failed");
    assert_eq!(
        body(&resumed.stdout),
        reference_body,
        "resumed result is not bit-identical to the uninterrupted run"
    );
    assert!(client(&sock_b, &["--shutdown"]).status.success());
    assert!(daemon_b.wait().unwrap().success());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigint_drains_and_exits_130() {
    let dir = tmp_dir("sigint");
    let sock = dir.join("d.sock");
    let daemon = start_daemon(&sock, &dir.join("spool"));

    let interrupt = Command::new("kill")
        .args(["-INT", &daemon.id().to_string()])
        .status()
        .unwrap();
    assert!(interrupt.success());

    let out = daemon.wait_with_output().unwrap();
    assert_eq!(out.status.code(), Some(130), "SIGINT must exit 130");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_usage_errors_exit_2() {
    let out = Command::new(bin()).arg("serve").output().unwrap();
    assert_eq!(out.status.code(), Some(2));

    let out = Command::new(bin())
        .args(["serve", "/tmp/nonexistent.sock", "--wait", "7", "--stats"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "two client ops must be usage");
}
