//! Process-level durability: a campaign killed with SIGKILL mid-run (no
//! atexit, no flush, no unwind) must leave a checkpoint a fresh process
//! can `--resume` into the same report an uninterrupted run produces.

use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_pulsar")
}

const C17: &str = "\
INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\nOUTPUT(22)\nOUTPUT(23)\n\
10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n19 = NAND(11, 7)\n\
22 = NAND(10, 16)\n23 = NAND(16, 19)\n";

fn tmpfile(name: &str, content: &str) -> String {
    let dir = std::env::temp_dir().join("pulsar-durable-cli-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let p = dir.join(format!("{}-{name}", std::process::id()));
    std::fs::write(&p, content).expect("write temp file");
    p.to_string_lossy().into_owned()
}

/// The campaign-report lines that must survive a kill/resume cycle.
fn report_core(stdout: &str) -> Vec<String> {
    stdout
        .lines()
        .filter(|l| {
            l.contains("sites probed") || l.contains("pattern count") || l.contains("site coverage")
        })
        .map(str::to_owned)
        .collect()
}

#[test]
fn sigkilled_campaign_resumes_to_the_uninterrupted_report() {
    let bench = tmpfile("kill.bench", C17);
    let ckpt = tmpfile("kill.ckpt", "");
    std::fs::remove_file(&ckpt).expect("start without a checkpoint");

    let baseline = Command::new(bin())
        .args(["campaign", &bench])
        .output()
        .expect("baseline run");
    assert!(baseline.status.success(), "{baseline:?}");
    let base_core = report_core(&String::from_utf8_lossy(&baseline.stdout));
    assert!(!base_core.is_empty(), "baseline report has the core lines");

    // SIGKILL the checkpointing run at a few different points. c17 is
    // small, so some attempts may finish before the kill lands — the
    // truncation below guarantees a genuinely partial file regardless.
    for delay_ms in [0u64, 2, 5, 10] {
        let mut child = Command::new(bin())
            .args(["campaign", &bench, "--checkpoint", &ckpt])
            .spawn()
            .expect("spawn campaign");
        std::thread::sleep(std::time::Duration::from_millis(delay_ms));
        let _ = child.kill(); // SIGKILL: no flush, no unwind
        let _ = child.wait();
    }

    // Whatever the kills left behind, cut the file mid-record: a crash
    // can land on any byte and the prefix must still load.
    let bytes = std::fs::read(&ckpt).unwrap_or_default();
    std::fs::write(&ckpt, &bytes[..bytes.len() / 2]).expect("truncate checkpoint");

    let resumed = Command::new(bin())
        .args(["campaign", &bench, "--resume", &ckpt])
        .output()
        .expect("resumed run");
    assert!(resumed.status.success(), "{resumed:?}");
    let resumed_core = report_core(&String::from_utf8_lossy(&resumed.stdout));
    assert_eq!(
        base_core, resumed_core,
        "resume-equivalence across processes"
    );

    let _ = std::fs::remove_file(&bench);
    let _ = std::fs::remove_file(&ckpt);
}
