#![warn(missing_docs)]
// Library code must surface failures as typed errors or documented
// panics, never ad-hoc unwraps; #[cfg(test)] modules opt back in.
#![warn(clippy::unwrap_used)]

//! # pulsar-mc
//!
//! Seeded, parallel Monte Carlo driver for the process-variation studies
//! of the pulse-propagation reproduction.
//!
//! The paper evaluates both testing methods "at the electrical level using
//! a Monte Carlo approach", sampling the main circuit parameters from a
//! normal distribution with **10 % standard deviation**. This crate
//! provides exactly that workflow, independent of what is being sampled:
//!
//! * [`normal`] / [`Gaussian`] — Box–Muller normal sampling on top of any
//!   [`rand::Rng`] (the `rand` crate ships only uniform distributions),
//! * [`MonteCarlo`] — a deterministic fan-out driver: sample `i` always
//!   sees the same RNG stream for a given master seed, regardless of
//!   thread count, so experiments are reproducible *and* parallel,
//! * [`Summary`] and [`coverage`] — the statistics the experiments report
//!   (mean, standard deviation, quantiles, fraction-detected).
//!
//! ```
//! use pulsar_mc::{MonteCarlo, Gaussian, coverage};
//! use rand::RngExt;
//!
//! // 200 samples of a fluctuating threshold, 10 % sigma around 1.0.
//! let mc = MonteCarlo::new(200, 42);
//! let dist = Gaussian::new(1.0, 0.10);
//! let vals = mc.run(|_, rng| dist.sample(rng));
//! let c = coverage(&vals, |v| *v > 1.0);
//! assert!(c > 0.3 && c < 0.7); // roughly half above the mean
//! ```

mod adaptive;
mod driver;
mod interval;
mod outcome;
mod sampling;
mod stats;

pub use adaptive::{
    sign_change_neighbors, AdaptivePolicy, IntervalRule, PointAccuracy, SequentialTally,
};
pub use driver::{panic_message, MonteCarlo, OnDoneFn, PriorFn, RunHooks};
pub use interval::{clopper_pearson, lower_tail, upper_tail, wilson, BinomialInterval};
pub use outcome::SampleOutcome;
pub use sampling::{normal, Gaussian};
pub use stats::{coverage, quantile, Summary};
