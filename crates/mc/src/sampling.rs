//! Normal sampling via the Box–Muller transform.

use rand::{Rng, RngExt};

/// Draws one sample from `N(mean, sigma²)` using Box–Muller.
///
/// `sigma` must be non-negative; `sigma == 0` returns `mean` exactly,
/// which is how experiments switch fluctuations off.
///
/// # Panics
///
/// Panics if `sigma` is negative or not finite.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sigma: f64) -> f64 {
    assert!(
        sigma.is_finite() && sigma >= 0.0,
        "sigma must be >= 0, got {sigma}"
    );
    if sigma == 0.0 {
        return mean;
    }
    // Box–Muller: u1 in (0, 1] avoids ln(0).
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mean + sigma * z
}

/// A reusable normal distribution.
///
/// The paper's setting — "a normal distribution of main circuit parameters
/// with a 10 % standard deviation" — is expressed as
/// `Gaussian::relative(nominal, 0.10)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gaussian {
    /// Distribution mean.
    pub mean: f64,
    /// Distribution standard deviation (absolute).
    pub sigma: f64,
}

impl Gaussian {
    /// Normal distribution with absolute `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    pub fn new(mean: f64, sigma: f64) -> Self {
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "sigma must be >= 0, got {sigma}"
        );
        Gaussian { mean, sigma }
    }

    /// Normal distribution whose sigma is `rel` times the mean's
    /// magnitude — the paper's "10 % standard deviation" convention.
    pub fn relative(mean: f64, rel: f64) -> Self {
        Gaussian::new(mean, mean.abs() * rel)
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        normal(rng, self.mean, self.sigma)
    }

    /// Draws one sample clamped to `lo..=hi` (used for physical parameters
    /// that must stay positive under heavy fluctuation).
    pub fn sample_clamped<R: Rng + ?Sized>(&self, rng: &mut R, lo: f64, hi: f64) -> f64 {
        self.sample(rng).clamp(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_sigma_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(normal(&mut rng, 3.5, 0.0), 3.5);
        }
    }

    #[test]
    fn sample_statistics_match_parameters() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = Gaussian::new(10.0, 2.0);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "sigma {}", var.sqrt());
    }

    #[test]
    fn relative_sigma_uses_magnitude() {
        let g = Gaussian::relative(-5.0, 0.1);
        assert_eq!(g.mean, -5.0);
        assert!((g.sigma - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clamped_sampling_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = Gaussian::new(0.0, 100.0);
        for _ in 0..100 {
            let v = g.sample_clamped(&mut rng, -1.0, 1.0);
            assert!((-1.0..=1.0).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "sigma must be >= 0")]
    fn negative_sigma_panics() {
        Gaussian::new(0.0, -1.0);
    }
}
