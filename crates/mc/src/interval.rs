//! Binomial confidence intervals for coverage estimates.
//!
//! A coverage number is a binomial proportion: `k` detected instances out
//! of `n` sampled. The adaptive sampling engine stops a grid point once
//! the interval half-width meets the requested precision, so the interval
//! math is the stopping rule. Two constructions are provided:
//!
//! * [`wilson`] — the Wilson score interval, a closed form with good
//!   coverage properties even near p = 0/1 (where the naive Wald interval
//!   collapses to zero width and never stops honestly),
//! * [`clopper_pearson`] — the exact (conservative) interval obtained by
//!   inverting the binomial tail tests; used as the reference the Wilson
//!   form is proptested against.

/// A two-sided confidence interval on a binomial proportion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinomialInterval {
    /// Lower confidence bound, clamped to `[0, 1]`.
    pub lo: f64,
    /// Upper confidence bound, clamped to `[0, 1]`.
    pub hi: f64,
}

impl BinomialInterval {
    /// Half of the interval width — the "precision" the adaptive stopping
    /// rule compares against the requested half-width.
    pub fn halfwidth(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }

    /// True when `t` lies strictly inside the interval — the point's
    /// coverage is not yet resolved against the threshold `t`.
    pub fn straddles(&self, t: f64) -> bool {
        self.lo < t && t < self.hi
    }
}

/// Wilson score interval for `k` successes in `n` trials at critical
/// value `z` (e.g. 1.96 for 95 %).
///
/// With no trials the proportion is unknown: returns `[0, 1]`.
pub fn wilson(k: u64, n: u64, z: f64) -> BinomialInterval {
    if n == 0 {
        return BinomialInterval { lo: 0.0, hi: 1.0 };
    }
    let nf = n as f64;
    let p = k as f64 / nf;
    let z2 = z * z;
    let denom = 1.0 + z2 / nf;
    let center = (p + z2 / (2.0 * nf)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / nf + z2 / (4.0 * nf * nf)).sqrt();
    BinomialInterval {
        lo: (center - half).max(0.0),
        hi: (center + half).min(1.0),
    }
}

/// Exact Clopper–Pearson interval for `k` successes in `n` trials at
/// two-sided level `alpha` (e.g. 0.05 for 95 %).
///
/// The lower bound solves `P(X ≥ k | p) = alpha/2` and the upper bound
/// solves `P(X ≤ k | p) = alpha/2`; the edge cases `k = 0` / `k = n` pin
/// the corresponding bound to 0 / 1. With no trials returns `[0, 1]`.
pub fn clopper_pearson(k: u64, n: u64, alpha: f64) -> BinomialInterval {
    if n == 0 {
        return BinomialInterval { lo: 0.0, hi: 1.0 };
    }
    let half = alpha / 2.0;
    let lo = if k == 0 {
        0.0
    } else {
        // P(X ≥ k | p) increases from 0 to 1 as p goes 0 → 1.
        bisect(|p| upper_tail(k, n, p) - half)
    };
    let hi = if k == n {
        1.0
    } else {
        // P(X ≤ k | p) decreases from 1 to 0 as p goes 0 → 1.
        bisect(|p| half - lower_tail(k, n, p))
    };
    BinomialInterval { lo, hi }
}

/// Root of a monotonically increasing `f` on `[0, 1]` by bisection.
fn bisect(f: impl Fn(f64) -> f64) -> f64 {
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    // 80 halvings take the bracket well below f64 resolution on [0, 1].
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if f(mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// `P(X ≥ k)` for `X ~ Binomial(n, p)`, exact up to f64 rounding.
pub fn upper_tail(k: u64, n: u64, p: f64) -> f64 {
    tail_sum(n, p, k..=n)
}

/// `P(X ≤ k)` for `X ~ Binomial(n, p)`, exact up to f64 rounding.
pub fn lower_tail(k: u64, n: u64, p: f64) -> f64 {
    tail_sum(n, p, 0..=k)
}

/// Sum of binomial pmf terms over `range`, computed in log space with a
/// max-shift so n = 512 tails do not underflow to zero term-by-term.
fn tail_sum(n: u64, p: f64, range: std::ops::RangeInclusive<u64>) -> f64 {
    if p <= 0.0 {
        return if *range.start() == 0 { 1.0 } else { 0.0 };
    }
    if p >= 1.0 {
        return if *range.end() == n { 1.0 } else { 0.0 };
    }
    let (lp, lq) = (p.ln(), (1.0 - p).ln());
    let logs: Vec<f64> = range
        .map(|i| ln_choose(n, i) + i as f64 * lp + (n - i) as f64 * lq)
        .collect();
    let m = logs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let s: f64 = logs.iter().map(|l| (l - m).exp()).sum();
    (m.exp() * s).min(1.0)
}

/// `ln C(n, k)` via the log-gamma of factorials (Stirling with correction
/// terms; exact enough that n ≤ 512 tail sums match direct summation).
fn ln_choose(n: u64, k: u64) -> f64 {
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// `ln(n!)`: exact accumulation for small n, Stirling series beyond.
fn ln_factorial(n: u64) -> f64 {
    if n < 2 {
        return 0.0;
    }
    if n < 256 {
        return (2..=n).map(|i| (i as f64).ln()).sum();
    }
    let x = n as f64;
    // Stirling with the 1/(12x) and 1/(360x^3) corrections: error below
    // 1e-12 for x >= 256, far inside the tail-sum tolerance.
    x * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI * x).ln() + 1.0 / (12.0 * x)
        - 1.0 / (360.0 * x * x * x)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use proptest::prelude::*;

    /// Direct pmf summation without log-space tricks — the independent
    /// reference the log-space implementation is checked against.
    fn naive_upper_tail(k: u64, n: u64, p: f64) -> f64 {
        let mut choose = 1.0f64;
        let mut sum = 0.0;
        for i in 0..=n {
            if i > 0 {
                choose *= (n - i + 1) as f64 / i as f64;
            }
            if i >= k {
                sum += choose * p.powi(i as i32) * (1.0 - p).powi((n - i) as i32);
            }
        }
        sum.min(1.0)
    }

    #[test]
    fn zero_trials_is_unit_interval() {
        for ci in [wilson(0, 0, 1.96), clopper_pearson(0, 0, 0.05)] {
            assert_eq!(ci.lo, 0.0);
            assert_eq!(ci.hi, 1.0);
            assert!((ci.halfwidth() - 0.5).abs() < 1e-15);
        }
    }

    #[test]
    fn wilson_known_value() {
        // k=0, n=16, z=1.96: hi = z²/(n+z²) ≈ 0.1937, lo = 0.
        let ci = wilson(0, 16, 1.96);
        assert_eq!(ci.lo, 0.0);
        assert!((ci.hi - 1.96 * 1.96 / (16.0 + 1.96 * 1.96)).abs() < 1e-12);
        // Saturated-point stopping arithmetic the bench relies on: n=16
        // misses an ε=0.069 target, n=32 meets it.
        assert!(ci.halfwidth() > 0.069);
        assert!(wilson(0, 32, 1.96).halfwidth() <= 0.069);
    }

    #[test]
    fn clopper_pearson_edges() {
        let ci = clopper_pearson(0, 20, 0.05);
        assert_eq!(ci.lo, 0.0);
        // Rule of three: hi = 1 - (α/2)^(1/n).
        assert!((ci.hi - (1.0 - 0.025f64.powf(1.0 / 20.0))).abs() < 1e-9);
        let ci = clopper_pearson(20, 20, 0.05);
        assert_eq!(ci.hi, 1.0);
        assert!((ci.lo - 0.025f64.powf(1.0 / 20.0)).abs() < 1e-9);
    }

    #[test]
    fn straddles_is_strict() {
        let ci = BinomialInterval { lo: 0.2, hi: 0.8 };
        assert!(ci.straddles(0.5));
        assert!(!ci.straddles(0.2));
        assert!(!ci.straddles(0.8));
        assert!(!ci.straddles(0.9));
    }

    #[test]
    fn ln_factorial_matches_accumulation_across_stirling_cutover() {
        for n in [255u64, 256, 257, 400, 512] {
            let exact: f64 = (2..=n).map(|i| (i as f64).ln()).sum();
            assert!(
                (ln_factorial(n) - exact).abs() < 1e-9 * exact.max(1.0),
                "n={n}"
            );
        }
    }

    proptest! {
        /// Tail sums in log space match direct pmf summation over the
        /// full n ≤ 512 range the adaptive engine can reach.
        #[test]
        fn tails_match_naive_sum(n in 1u64..=512, kf in 0.0f64..=1.0, p in 0.001f64..0.999) {
            let k = (kf * n as f64).round() as u64;
            let up = upper_tail(k, n, p);
            let naive = naive_upper_tail(k, n, p);
            prop_assert!((up - naive).abs() < 1e-9, "k={k} n={n} p={p}: {up} vs {naive}");
            // The two tails overlap only in the pmf at k itself.
            let pmf = naive_upper_tail(k, n, p) - if k < n { naive_upper_tail(k + 1, n, p) } else { 0.0 };
            prop_assert!((lower_tail(k, n, p) + up - pmf - 1.0).abs() < 1e-9);
        }

        /// Clopper–Pearson bounds invert the exact tail tests: at the
        /// returned bounds the corresponding tail equals α/2.
        #[test]
        fn clopper_pearson_inverts_tail_sums(n in 1u64..=512, kf in 0.0f64..=1.0) {
            let k = (kf * n as f64).round() as u64;
            let ci = clopper_pearson(k, n, 0.05);
            if k > 0 {
                prop_assert!((upper_tail(k, n, ci.lo) - 0.025).abs() < 1e-6,
                             "k={k} n={n} lo={} tail={}", ci.lo, upper_tail(k, n, ci.lo));
            } else {
                prop_assert_eq!(ci.lo, 0.0);
            }
            if k < n {
                prop_assert!((lower_tail(k, n, ci.hi) - 0.025).abs() < 1e-6,
                             "k={k} n={n} hi={} tail={}", ci.hi, lower_tail(k, n, ci.hi));
            } else {
                prop_assert_eq!(ci.hi, 1.0);
            }
        }

        /// Both constructions produce proper intervals containing p̂, and
        /// the exact interval contains the Wilson one's point estimate
        /// behaviour: both cover p̂ and stay inside [0, 1].
        #[test]
        fn intervals_are_proper(n in 1u64..=512, kf in 0.0f64..=1.0) {
            let k = (kf * n as f64).round() as u64;
            let p_hat = k as f64 / n as f64;
            for ci in [wilson(k, n, 1.96), clopper_pearson(k, n, 0.05)] {
                prop_assert!(ci.lo >= 0.0 && ci.hi <= 1.0);
                prop_assert!(ci.lo <= p_hat + 1e-12 && p_hat <= ci.hi + 1e-12);
                prop_assert!(ci.halfwidth() >= 0.0);
            }
        }

        /// Wilson endpoints satisfy the defining score equation
        /// (p̂ − p)² n = z² p (1 − p) unless clamped at 0/1.
        #[test]
        fn wilson_solves_score_equation(n in 1u64..=512, kf in 0.0f64..=1.0) {
            let k = (kf * n as f64).round() as u64;
            let (z, nf) = (1.96f64, n as f64);
            let p_hat = k as f64 / nf;
            let ci = wilson(k, n, z);
            for p in [ci.lo, ci.hi] {
                if p > 0.0 && p < 1.0 {
                    let lhs = (p_hat - p) * (p_hat - p) * nf;
                    let rhs = z * z * p * (1.0 - p);
                    prop_assert!((lhs - rhs).abs() < 1e-6 * rhs.max(1e-3),
                                 "k={k} n={n} p={p}: {lhs} vs {rhs}");
                }
            }
        }

        /// Monotonicity: doubling the evidence at fixed p̂ never widens
        /// the interval — more samples can only sharpen the stop rule.
        #[test]
        fn more_samples_never_widen(n in 1u64..=256, kf in 0.0f64..=1.0) {
            let k = (kf * n as f64).round() as u64;
            let w1 = wilson(k, n, 1.96).halfwidth();
            let w2 = wilson(2 * k, 2 * n, 1.96).halfwidth();
            prop_assert!(w2 <= w1 + 1e-12, "wilson k={k} n={n}: {w2} > {w1}");
            let c1 = clopper_pearson(k, n, 0.05).halfwidth();
            let c2 = clopper_pearson(2 * k, 2 * n, 0.05).halfwidth();
            prop_assert!(c2 <= c1 + 1e-6, "cp k={k} n={n}: {c2} > {c1}");
        }
    }
}
