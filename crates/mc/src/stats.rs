//! Summary statistics for Monte Carlo result sets.

/// Mean / standard deviation / extremes of a sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub sigma: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Summarizes `values`.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty — summarizing nothing is a caller bug.
    pub fn of(values: &[f64]) -> Summary {
        assert!(!values.is_empty(), "cannot summarize an empty sample set");
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            n,
            mean,
            sigma: var.sqrt(),
            min,
            max,
        }
    }
}

/// The `q`-quantile (0 ≤ q ≤ 1) of `values` by linear interpolation
/// between order statistics.
///
/// # Panics
///
/// Panics if `values` is empty or `q` is outside `[0, 1]`.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "cannot take a quantile of an empty set");
    assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let f = pos - lo as f64;
        sorted[lo] * (1.0 - f) + sorted[hi] * f
    }
}

/// Fraction of samples satisfying a predicate — the paper's fault
/// coverage: "the fraction of IC instances that do not pass … testing for
/// a given value of T and R".
///
/// Returns 0.0 for an empty set (no instances, nothing detected).
pub fn coverage<T>(samples: &[T], detected: impl Fn(&T) -> bool) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().filter(|s| detected(s)).count() as f64 / samples.len() as f64
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn summary_of_constants() {
        let s = Summary::of(&[2.0, 2.0, 2.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.sigma, 0.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 2.0);
        assert_eq!(s.n, 3);
    }

    #[test]
    fn summary_known_values() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.sigma - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn quantiles_interpolate() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile(&v, 0.0), 10.0);
        assert_eq!(quantile(&v, 1.0), 40.0);
        assert!((quantile(&v, 0.5) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn coverage_counts_fraction() {
        let v = [1, 2, 3, 4, 5];
        assert!((coverage(&v, |x| *x > 2) - 0.6).abs() < 1e-12);
        let empty: [i32; 0] = [];
        assert_eq!(coverage(&empty, |_| true), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty sample set")]
    fn empty_summary_panics() {
        Summary::of(&[]);
    }

    proptest! {
        #[test]
        fn summary_bounds_hold(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let s = Summary::of(&values);
            prop_assert!(s.min <= s.mean + 1e-9);
            prop_assert!(s.mean <= s.max + 1e-9);
            prop_assert!(s.sigma >= 0.0);
            prop_assert!(s.sigma <= (s.max - s.min) + 1e-9);
        }

        #[test]
        fn quantile_is_monotonic(values in proptest::collection::vec(-1e3f64..1e3, 1..100),
                                 q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            prop_assert!(quantile(&values, lo) <= quantile(&values, hi) + 1e-9);
        }
    }
}
