//! Deterministic, parallel Monte Carlo fan-out.

use crate::outcome::SampleOutcome;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs `n` independent Monte Carlo samples of a closure, in parallel,
/// with per-sample RNG streams derived deterministically from a master
/// seed.
///
/// Sample `i` always receives `StdRng::seed_from_u64(mix(seed, i))`, so
/// results are bit-identical across thread counts and runs — essential for
/// the paper's methodology, where the *same* circuit instances must be
/// simulated fault-free (to calibrate the test) and faulty (to measure
/// coverage).
///
/// # Example
///
/// ```
/// use pulsar_mc::MonteCarlo;
///
/// let mc = MonteCarlo::new(16, 99);
/// let a = mc.run(|i, _rng| i * 2);
/// let b = mc.run(|i, _rng| i * 2);
/// assert_eq!(a, b);
/// assert_eq!(a[3], 6);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MonteCarlo {
    n: usize,
    seed: u64,
    threads: usize,
}

impl MonteCarlo {
    /// A driver for `n` samples under master seed `seed`, using all
    /// available CPU parallelism.
    pub fn new(n: usize, seed: u64) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(1);
        MonteCarlo { n, seed, threads }
    }

    /// Overrides the worker-thread count (1 = sequential).
    ///
    /// A request for `0` threads is clamped to 1 rather than panicking:
    /// thread counts frequently arrive from environment variables or
    /// config files, and a degenerate value should degrade to sequential
    /// execution, not abort a campaign.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Number of samples.
    pub fn samples(&self) -> usize {
        self.n
    }

    /// Master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The RNG sample `i` will receive — exposed so callers can regenerate
    /// a single instance (e.g. to re-simulate one outlier with tracing).
    pub fn rng_for(&self, i: usize) -> StdRng {
        StdRng::seed_from_u64(self.stream_seed(i))
    }

    /// The derived 64-bit seed behind sample `i`'s RNG stream. Journals
    /// record this per sample so one instance can be replayed standalone
    /// (`StdRng::seed_from_u64`) without re-deriving the mixing function.
    pub fn stream_seed(&self, i: usize) -> u64 {
        mix(self.seed, i as u64)
    }

    /// Runs `f(i, rng)` for `i in 0..n` and returns results in index order.
    ///
    /// `f` runs concurrently on multiple threads; it must be `Sync` and
    /// the result type `Send`. One erroring sample aborts nothing here —
    /// `f` is infallible; for fallible per-sample work with isolation and
    /// retry, use [`MonteCarlo::try_run`].
    pub fn run<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, &mut StdRng) -> T + Sync,
    {
        self.fan_out(|i| {
            let mut rng = self.rng_for(i);
            f(i, &mut rng)
        })
    }

    /// Fault-isolated variant of [`MonteCarlo::run`]: each sample runs a
    /// fallible closure and resolves to a [`SampleOutcome`] instead of
    /// aborting the whole fan-out on the first error.
    ///
    /// `f(i, attempt, rng)` is called with `attempt` starting at 1.
    /// **Every attempt re-derives the same per-sample RNG stream**
    /// ([`MonteCarlo::rng_for`]), so a retry re-simulates the *identical*
    /// circuit instance — escalation must come from the `attempt` number
    /// (e.g. a tightened solver configuration), not from fresh randomness.
    /// This is what keeps outcomes bit-identical across thread counts
    /// even when some samples retry.
    ///
    /// After a failed attempt the error is retried only while
    /// `retryable(&e)` holds and fewer than `max_attempts` attempts
    /// (clamped to ≥ 1) have been spent; otherwise the sample resolves to
    /// [`SampleOutcome::Failed`] carrying the final error.
    pub fn try_run<T, E, F, R>(
        &self,
        max_attempts: u32,
        retryable: R,
        f: F,
    ) -> Vec<SampleOutcome<T, E>>
    where
        T: Send,
        E: Send,
        F: Fn(usize, u32, &mut StdRng) -> Result<T, E> + Sync,
        R: Fn(&E) -> bool + Sync,
    {
        let max_attempts = max_attempts.max(1);
        self.fan_out(|i| {
            let mut attempt = 1u32;
            loop {
                let mut rng = self.rng_for(i);
                match f(i, attempt, &mut rng) {
                    Ok(value) if attempt == 1 => return SampleOutcome::Ok(value),
                    Ok(value) => {
                        return SampleOutcome::Recovered {
                            value,
                            attempts: attempt,
                        }
                    }
                    Err(error) => {
                        if attempt >= max_attempts || !retryable(&error) {
                            return SampleOutcome::Failed {
                                error,
                                attempts: attempt,
                            };
                        }
                        attempt += 1;
                    }
                }
            }
        })
    }

    /// Shared fan-out: runs `g(i)` for `i in 0..n` across the configured
    /// worker threads and concatenates the per-chunk result vectors in
    /// index order. Infallible by construction — each worker returns its
    /// own `Vec`, so there are no placeholder slots to check afterwards.
    /// A panicking worker is re-raised on the calling thread.
    fn fan_out<T, G>(&self, g: G) -> Vec<T>
    where
        T: Send,
        G: Fn(usize) -> T + Sync,
    {
        if self.n == 0 {
            return Vec::new();
        }
        let threads = self.threads.min(self.n);
        if threads == 1 {
            return (0..self.n).map(g).collect();
        }

        let chunk = self.n.div_ceil(threads);
        let mut out: Vec<T> = Vec::with_capacity(self.n);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let g = &g;
                    let n = self.n;
                    scope.spawn(move || {
                        let lo = (t * chunk).min(n);
                        let hi = ((t + 1) * chunk).min(n);
                        (lo..hi).map(g).collect::<Vec<T>>()
                    })
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(part) => out.extend(part),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        out
    }
}

/// SplitMix64-style mixing of (seed, index) into one well-distributed
/// 64-bit stream seed, so neighbouring sample indices get unrelated RNGs.
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed ^ i.wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use proptest::prelude::*;
    use rand::RngExt;

    #[test]
    fn results_are_in_index_order() {
        let mc = MonteCarlo::new(100, 5);
        let out = mc.run(|i, _| i);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let draw = |_i: usize, rng: &mut StdRng| rng.random::<f64>();
        let seq = MonteCarlo::new(64, 123).with_threads(1).run(draw);
        let par = MonteCarlo::new(64, 123).with_threads(8).run(draw);
        assert_eq!(seq, par);
    }

    #[test]
    fn different_samples_get_different_streams() {
        let mc = MonteCarlo::new(32, 7);
        let out = mc.run(|_, rng| rng.random::<u64>());
        let mut dedup = out.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), out.len(), "RNG streams must not collide");
    }

    #[test]
    fn different_seeds_differ() {
        let a = MonteCarlo::new(8, 1).run(|_, rng| rng.random::<u64>());
        let b = MonteCarlo::new(8, 2).run(|_, rng| rng.random::<u64>());
        assert_ne!(a, b);
    }

    #[test]
    fn rng_for_matches_run() {
        let mc = MonteCarlo::new(10, 77);
        let out = mc.run(|_, rng| rng.random::<u64>());
        let mut rng5 = mc.rng_for(5);
        assert_eq!(out[5], rng5.random::<u64>());
    }

    #[test]
    fn empty_run_is_empty() {
        let mc = MonteCarlo::new(0, 0);
        let out: Vec<u32> = mc.run(|_, _| unreachable!("no samples"));
        assert!(out.is_empty());
    }

    #[test]
    fn zero_threads_clamps_to_sequential() {
        let mc = MonteCarlo::new(8, 3).with_threads(0);
        let out = mc.run(|i, _| i);
        assert_eq!(out, (0..8).collect::<Vec<_>>());
    }

    /// A deterministic fallible workload: samples whose index is in
    /// `fail_until` fail with a retryable error until the given attempt
    /// number; indexes in `hard_fail` always fail non-retryably.
    fn flaky(
        i: usize,
        attempt: u32,
        rng: &mut StdRng,
        recover_at: &[(usize, u32)],
        hard_fail: &[usize],
    ) -> Result<f64, (bool, usize)> {
        let draw = rng.random::<f64>();
        if hard_fail.contains(&i) {
            return Err((false, i));
        }
        if let Some(&(_, at)) = recover_at.iter().find(|&&(s, _)| s == i) {
            if attempt < at {
                return Err((true, i));
            }
        }
        Ok(draw)
    }

    #[test]
    fn try_run_isolates_and_recovers() {
        let recover_at = [(3usize, 2u32), (9, 3)];
        let hard_fail = [5usize];
        let mc = MonteCarlo::new(16, 11).with_threads(4);
        let out = mc.try_run(
            4,
            |e: &(bool, usize)| e.0,
            |i, attempt, rng| flaky(i, attempt, rng, &recover_at, &hard_fail),
        );
        assert_eq!(out.len(), 16);
        assert_eq!(out[3].attempts(), 2);
        assert!(out[3].is_recovered());
        assert_eq!(out[9].attempts(), 3);
        assert!(out[9].is_recovered());
        assert!(out[5].is_failed());
        assert_eq!(
            out[5].attempts(),
            1,
            "non-retryable errors stop immediately"
        );
        let clean = out
            .iter()
            .enumerate()
            .filter(|(i, _)| ![3, 5, 9].contains(i))
            .all(|(_, o)| matches!(o, SampleOutcome::Ok(_)));
        assert!(clean, "untouched samples resolve on the first attempt");
    }

    #[test]
    fn try_run_exhausts_bounded_attempts() {
        let mc = MonteCarlo::new(4, 1);
        let out = mc.try_run(
            3,
            |_: &&str| true,
            |i, _, _| {
                if i == 2 {
                    Err("never converges")
                } else {
                    Ok(i)
                }
            },
        );
        assert_eq!(
            out[2],
            SampleOutcome::Failed {
                error: "never converges",
                attempts: 3
            }
        );
    }

    #[test]
    fn retries_replay_the_same_rng_stream() {
        // Attempt 2 must see the identical stream as attempt 1 so the
        // retried sample is the same circuit instance.
        let mc = MonteCarlo::new(6, 21);
        let baseline = mc.run(|_, rng| rng.random::<f64>());
        let out = mc.try_run(
            2,
            |_: &()| true,
            |i, attempt, rng| {
                let draw = rng.random::<f64>();
                if i == 4 && attempt == 1 {
                    Err(())
                } else {
                    Ok(draw)
                }
            },
        );
        for (i, o) in out.iter().enumerate() {
            assert_eq!(o.value(), Some(&baseline[i]));
        }
        assert!(out[4].is_recovered());
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(16))]
        #[test]
        fn try_run_bit_identical_across_thread_counts(seed in 0u64..10_000, n in 1usize..40) {
            // Injected failures: a retryable flake recovering on attempt 2
            // for i % 5 == 0, a hard failure for i % 7 == 3.
            let work = |i: usize, attempt: u32, rng: &mut StdRng| -> Result<u64, (bool, usize)> {
                let draw = rng.random::<u64>();
                if i % 7 == 3 {
                    Err((false, i))
                } else if i.is_multiple_of(5) && attempt < 2 {
                    Err((true, i))
                } else {
                    Ok(draw)
                }
            };
            let retryable = |e: &(bool, usize)| e.0;
            let base = MonteCarlo::new(n, seed).with_threads(1).try_run(3, retryable, work);
            for threads in [2usize, 7] {
                let par = MonteCarlo::new(n, seed).with_threads(threads).try_run(3, retryable, work);
                prop_assert_eq!(&base, &par);
            }
        }
    }
}
