//! Deterministic, parallel Monte Carlo fan-out.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs `n` independent Monte Carlo samples of a closure, in parallel,
/// with per-sample RNG streams derived deterministically from a master
/// seed.
///
/// Sample `i` always receives `StdRng::seed_from_u64(mix(seed, i))`, so
/// results are bit-identical across thread counts and runs — essential for
/// the paper's methodology, where the *same* circuit instances must be
/// simulated fault-free (to calibrate the test) and faulty (to measure
/// coverage).
///
/// # Example
///
/// ```
/// use pulsar_mc::MonteCarlo;
///
/// let mc = MonteCarlo::new(16, 99);
/// let a = mc.run(|i, _rng| i * 2);
/// let b = mc.run(|i, _rng| i * 2);
/// assert_eq!(a, b);
/// assert_eq!(a[3], 6);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MonteCarlo {
    n: usize,
    seed: u64,
    threads: usize,
}

impl MonteCarlo {
    /// A driver for `n` samples under master seed `seed`, using all
    /// available CPU parallelism.
    pub fn new(n: usize, seed: u64) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(1);
        MonteCarlo { n, seed, threads }
    }

    /// Overrides the worker-thread count (1 = sequential).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        self.threads = threads;
        self
    }

    /// Number of samples.
    pub fn samples(&self) -> usize {
        self.n
    }

    /// Master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The RNG sample `i` will receive — exposed so callers can regenerate
    /// a single instance (e.g. to re-simulate one outlier with tracing).
    pub fn rng_for(&self, i: usize) -> StdRng {
        StdRng::seed_from_u64(mix(self.seed, i as u64))
    }

    /// Runs `f(i, rng)` for `i in 0..n` and returns results in index order.
    ///
    /// `f` runs concurrently on multiple threads; it must be `Sync` and
    /// the result type `Send`.
    pub fn run<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, &mut StdRng) -> T + Sync,
    {
        if self.n == 0 {
            return Vec::new();
        }
        let threads = self.threads.min(self.n);
        if threads == 1 {
            return (0..self.n)
                .map(|i| {
                    let mut rng = self.rng_for(i);
                    f(i, &mut rng)
                })
                .collect();
        }

        let mut results: Vec<Option<T>> = (0..self.n).map(|_| None).collect();
        let chunk = self.n.div_ceil(threads);
        std::thread::scope(|scope| {
            for (t, slot_chunk) in results.chunks_mut(chunk).enumerate() {
                let f = &f;
                let base = t * chunk;
                let me = *self;
                scope.spawn(move || {
                    for (k, slot) in slot_chunk.iter_mut().enumerate() {
                        let i = base + k;
                        let mut rng = me.rng_for(i);
                        *slot = Some(f(i, &mut rng));
                    }
                });
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every slot filled by its worker"))
            .collect()
    }
}

/// SplitMix64-style mixing of (seed, index) into one well-distributed
/// 64-bit stream seed, so neighbouring sample indices get unrelated RNGs.
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed ^ i.wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn results_are_in_index_order() {
        let mc = MonteCarlo::new(100, 5);
        let out = mc.run(|i, _| i);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let draw = |_i: usize, rng: &mut StdRng| rng.random::<f64>();
        let seq = MonteCarlo::new(64, 123).with_threads(1).run(draw);
        let par = MonteCarlo::new(64, 123).with_threads(8).run(draw);
        assert_eq!(seq, par);
    }

    #[test]
    fn different_samples_get_different_streams() {
        let mc = MonteCarlo::new(32, 7);
        let out = mc.run(|_, rng| rng.random::<u64>());
        let mut dedup = out.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), out.len(), "RNG streams must not collide");
    }

    #[test]
    fn different_seeds_differ() {
        let a = MonteCarlo::new(8, 1).run(|_, rng| rng.random::<u64>());
        let b = MonteCarlo::new(8, 2).run(|_, rng| rng.random::<u64>());
        assert_ne!(a, b);
    }

    #[test]
    fn rng_for_matches_run() {
        let mc = MonteCarlo::new(10, 77);
        let out = mc.run(|_, rng| rng.random::<u64>());
        let mut rng5 = mc.rng_for(5);
        assert_eq!(out[5], rng5.random::<u64>());
    }

    #[test]
    fn empty_run_is_empty() {
        let mc = MonteCarlo::new(0, 0);
        let out: Vec<u32> = mc.run(|_, _| unreachable!("no samples"));
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let _ = MonteCarlo::new(1, 0).with_threads(0);
    }
}
