//! Deterministic, parallel Monte Carlo fan-out.

use crate::outcome::SampleOutcome;
use pulsar_obs::CancelToken;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::panic::AssertUnwindSafe;

/// Lookup of a completed outcome from a prior run (see [`RunHooks::prior`]).
pub type PriorFn<'a, T, E> = &'a (dyn Fn(usize) -> Option<SampleOutcome<T, E>> + Sync);

/// Checkpoint-write callback for freshly resolved samples (see
/// [`RunHooks::on_done`]).
pub type OnDoneFn<'a, T, E> = &'a (dyn Fn(usize, &SampleOutcome<T, E>) + Sync);

/// Optional control hooks for [`MonteCarlo::try_run_resumed`]: resume from
/// a prior run, checkpoint freshly finished samples, cancel cooperatively,
/// and contain worker panics. The default (`RunHooks::default()`) enables
/// none of them, in which case `try_run_resumed` behaves exactly like
/// [`MonteCarlo::try_run`].
pub struct RunHooks<'a, T, E> {
    /// Completed outcomes from a prior (interrupted) run, keyed by sample
    /// index. A sample for which this returns `Some` is **skipped** — the
    /// stored outcome is used verbatim, so attempt accounting survives a
    /// resume and the final report stays bit-identical to an
    /// uninterrupted run.
    pub prior: Option<PriorFn<'a, T, E>>,
    /// Called from the worker thread the moment a *freshly computed*
    /// sample resolves (never for `prior` hits). This is the checkpoint
    /// write point: it fires per sample, not per step, so a mutex-guarded
    /// writer behind it stays off the solver hot path.
    pub on_done: Option<OnDoneFn<'a, T, E>>,
    /// Run-level cancellation, checked before every sample attempt. Once
    /// tripped, samples that have not started resolve to `None` in the
    /// result vector (distinct from `Failed`: they were never attempted
    /// and carry no error).
    pub cancel: Option<&'a CancelToken>,
    /// When set, a panicking attempt is caught (`catch_unwind`) and
    /// converted into an ordinary error via this function — the captured
    /// panic message in, the caller's error type out — so one poisoned
    /// sample counts against the failure budget instead of killing the
    /// run. When `None` (the default), a worker panic is re-raised on the
    /// calling thread after every other worker has been joined.
    pub contain_panics: Option<&'a (dyn Fn(String) -> E + Sync)>,
}

impl<T, E> Default for RunHooks<'_, T, E> {
    fn default() -> Self {
        RunHooks {
            prior: None,
            on_done: None,
            cancel: None,
            contain_panics: None,
        }
    }
}

/// Renders a panic payload as a message string (the common `String` and
/// `&'static str` payloads verbatim, anything else a fixed placeholder).
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(s) => (*s).to_owned(),
            Err(_) => "non-string panic payload".to_owned(),
        },
    }
}

/// Runs `n` independent Monte Carlo samples of a closure, in parallel,
/// with per-sample RNG streams derived deterministically from a master
/// seed.
///
/// Sample `i` always receives `StdRng::seed_from_u64(mix(seed, i))`, so
/// results are bit-identical across thread counts and runs — essential for
/// the paper's methodology, where the *same* circuit instances must be
/// simulated fault-free (to calibrate the test) and faulty (to measure
/// coverage).
///
/// # Example
///
/// ```
/// use pulsar_mc::MonteCarlo;
///
/// let mc = MonteCarlo::new(16, 99);
/// let a = mc.run(|i, _rng| i * 2);
/// let b = mc.run(|i, _rng| i * 2);
/// assert_eq!(a, b);
/// assert_eq!(a[3], 6);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MonteCarlo {
    n: usize,
    seed: u64,
    threads: usize,
}

impl MonteCarlo {
    /// A driver for `n` samples under master seed `seed`, using all
    /// available CPU parallelism.
    pub fn new(n: usize, seed: u64) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(1);
        MonteCarlo { n, seed, threads }
    }

    /// Overrides the worker-thread count (1 = sequential).
    ///
    /// A request for `0` threads is clamped to 1 rather than panicking:
    /// thread counts frequently arrive from environment variables or
    /// config files, and a degenerate value should degrade to sequential
    /// execution, not abort a campaign.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Number of samples.
    pub fn samples(&self) -> usize {
        self.n
    }

    /// Master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The RNG sample `i` will receive — exposed so callers can regenerate
    /// a single instance (e.g. to re-simulate one outlier with tracing).
    pub fn rng_for(&self, i: usize) -> StdRng {
        StdRng::seed_from_u64(self.stream_seed(i))
    }

    /// The derived 64-bit seed behind sample `i`'s RNG stream. Journals
    /// record this per sample so one instance can be replayed standalone
    /// (`StdRng::seed_from_u64`) without re-deriving the mixing function.
    pub fn stream_seed(&self, i: usize) -> u64 {
        mix(self.seed, i as u64)
    }

    /// Runs `f(i, rng)` for `i in 0..n` and returns results in index order.
    ///
    /// `f` runs concurrently on multiple threads; it must be `Sync` and
    /// the result type `Send`. One erroring sample aborts nothing here —
    /// `f` is infallible; for fallible per-sample work with isolation and
    /// retry, use [`MonteCarlo::try_run`].
    pub fn run<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, &mut StdRng) -> T + Sync,
    {
        self.fan_out(|i| {
            let mut rng = self.rng_for(i);
            f(i, &mut rng)
        })
    }

    /// Fault-isolated variant of [`MonteCarlo::run`]: each sample runs a
    /// fallible closure and resolves to a [`SampleOutcome`] instead of
    /// aborting the whole fan-out on the first error.
    ///
    /// `f(i, attempt, rng)` is called with `attempt` starting at 1.
    /// **Every attempt re-derives the same per-sample RNG stream**
    /// ([`MonteCarlo::rng_for`]), so a retry re-simulates the *identical*
    /// circuit instance — escalation must come from the `attempt` number
    /// (e.g. a tightened solver configuration), not from fresh randomness.
    /// This is what keeps outcomes bit-identical across thread counts
    /// even when some samples retry.
    ///
    /// After a failed attempt the error is retried only while
    /// `retryable(&e)` holds and fewer than `max_attempts` attempts
    /// (clamped to ≥ 1) have been spent; otherwise the sample resolves to
    /// [`SampleOutcome::Failed`] carrying the final error.
    pub fn try_run<T, E, F, R>(
        &self,
        max_attempts: u32,
        retryable: R,
        f: F,
    ) -> Vec<SampleOutcome<T, E>>
    where
        T: Send,
        E: Send,
        F: Fn(usize, u32, &mut StdRng) -> Result<T, E> + Sync,
        R: Fn(&E) -> bool + Sync,
    {
        self.try_run_resumed(max_attempts, retryable, RunHooks::default(), f)
            .into_iter()
            .map(|o| o.expect("no cancel hook, so every sample resolves"))
            .collect()
    }

    /// The durable superset of [`MonteCarlo::try_run`]: identical retry
    /// semantics, plus the [`RunHooks`] for resume, checkpointing,
    /// cooperative cancellation and panic containment.
    ///
    /// Returns one entry per sample in index order. `Some(outcome)` is a
    /// resolved/failed sample (fresh or restored from `hooks.prior`);
    /// `None` means the run was cancelled before that sample started.
    /// Without a `cancel` hook the result never contains `None`.
    ///
    /// Determinism contract: a resumed run — any subset of samples served
    /// from `prior`, the rest recomputed — produces the same outcome
    /// vector as an uninterrupted run, because each sample's RNG stream
    /// depends only on `(seed, i)` and restored outcomes carry their
    /// original attempt accounting.
    pub fn try_run_resumed<T, E, F, R>(
        &self,
        max_attempts: u32,
        retryable: R,
        hooks: RunHooks<'_, T, E>,
        f: F,
    ) -> Vec<Option<SampleOutcome<T, E>>>
    where
        T: Send,
        E: Send,
        F: Fn(usize, u32, &mut StdRng) -> Result<T, E> + Sync,
        R: Fn(&E) -> bool + Sync,
    {
        let max_attempts = max_attempts.max(1);
        self.fan_out(|i| self.resolve_one(i, max_attempts, &retryable, &hooks, &f))
    }

    /// Batched variant of [`MonteCarlo::try_run_resumed`]: consecutive
    /// pending samples are grouped into batches of `batch` and offered to
    /// `f_batch` first; any sample the batch declines (`None` in its
    /// return vector) falls back to the scalar closure `f` with the full
    /// retry ladder, **from attempt 1**.
    ///
    /// `f_batch(indices, rngs)` receives the sample indices of one group
    /// alongside their per-sample RNG streams — the *same* streams
    /// ([`MonteCarlo::rng_for`]) the scalar path would replay — and
    /// returns one `Option<T>` per index. `Some(v)` resolves the sample
    /// as a first-attempt success and must be bit-identical to what the
    /// scalar path would produce; `None` (or a panicking / wrong-length
    /// batch, which is contained and discards the whole group's batched
    /// work) defers to the scalar path. Grouping depends only on `batch`
    /// and the sample count, never on the thread count, so outcomes stay
    /// bit-identical across thread counts.
    ///
    /// `batch < 2` degenerates to [`MonteCarlo::try_run_resumed`].
    pub fn try_run_resumed_batched<T, E, F, B, R>(
        &self,
        batch: usize,
        max_attempts: u32,
        retryable: R,
        hooks: RunHooks<'_, T, E>,
        f_batch: B,
        f: F,
    ) -> Vec<Option<SampleOutcome<T, E>>>
    where
        T: Send,
        E: Send,
        F: Fn(usize, u32, &mut StdRng) -> Result<T, E> + Sync,
        B: Fn(&[usize], &mut [StdRng]) -> Vec<Option<T>> + Sync,
        R: Fn(&E) -> bool + Sync,
    {
        self.try_run_range_resumed_batched(
            0,
            self.n,
            batch,
            max_attempts,
            retryable,
            hooks,
            f_batch,
            f,
        )
    }

    /// Range variant of [`MonteCarlo::try_run_resumed_batched`]: resolves
    /// only samples `lo..hi` of this driver's stream, returning one entry
    /// per sample in that range (index order).
    ///
    /// This is the adaptive engine's building block: a sequential
    /// decision loop consumes the `stream_seed`-ordered sample stream in
    /// rounds, and each round is one contiguous range computed here —
    /// workers fan out *within* the range while the stopping decisions
    /// stay on ordered prefixes. Sample `lo + j` sees exactly the RNG
    /// stream, retry ladder, and hooks it would see in a full-range run;
    /// batch grouping restarts at `lo` and depends only on
    /// `(lo, hi, batch)`, so the resolved outcomes for a given range are
    /// bit-identical across thread counts.
    #[allow(clippy::too_many_arguments)] // mirrors try_run_resumed_batched plus the range
    pub fn try_run_range_resumed_batched<T, E, F, B, R>(
        &self,
        lo: usize,
        hi: usize,
        batch: usize,
        max_attempts: u32,
        retryable: R,
        hooks: RunHooks<'_, T, E>,
        f_batch: B,
        f: F,
    ) -> Vec<Option<SampleOutcome<T, E>>>
    where
        T: Send,
        E: Send,
        F: Fn(usize, u32, &mut StdRng) -> Result<T, E> + Sync,
        B: Fn(&[usize], &mut [StdRng]) -> Vec<Option<T>> + Sync,
        R: Fn(&E) -> bool + Sync,
    {
        let max_attempts = max_attempts.max(1);
        let hi = hi.max(lo);
        if batch < 2 {
            // Scalar range: fan out over the range via a sub-driver (the
            // sub-driver only partitions indices; RNG streams and hooks
            // still come from `self`, keyed by the absolute index).
            let range_driver = MonteCarlo {
                n: hi - lo,
                seed: self.seed,
                threads: self.threads,
            };
            return range_driver
                .fan_out(|j| self.resolve_one(lo + j, max_attempts, &retryable, &hooks, &f));
        }
        // Fan out over groups, not samples: group composition is a pure
        // function of (lo, hi, batch), so the batched work — and
        // therefore every outcome — is invariant under the thread count.
        let groups: Vec<(usize, usize)> = (lo..hi)
            .step_by(batch)
            .map(|g| (g, (g + batch).min(hi)))
            .collect();
        let group_driver = MonteCarlo {
            n: groups.len(),
            seed: self.seed,
            threads: self.threads,
        };
        let parts = group_driver.fan_out(|g| {
            let (lo, hi) = groups[g];
            let mut out: Vec<Option<Option<SampleOutcome<T, E>>>> = Vec::new();
            out.resize_with(hi - lo, || None);

            // Samples restored from a prior run never enter the batch.
            if let Some(prior) = hooks.prior {
                for i in lo..hi {
                    if let Some(done) = prior(i) {
                        out[i - lo] = Some(Some(done));
                    }
                }
            }
            let cancelled = hooks.cancel.is_some_and(|token| token.is_cancelled());
            let pending: Vec<usize> = (lo..hi).filter(|&i| out[i - lo].is_none()).collect();

            if !cancelled && pending.len() >= 2 {
                // The batched fast path is an optimization, never a
                // semantic surface: a panic inside it (or a wrong-length
                // result) discards the group's batched work and every
                // sample falls back to the scalar ladder.
                let mut rngs: Vec<StdRng> = pending.iter().map(|&i| self.rng_for(i)).collect();
                let vals =
                    std::panic::catch_unwind(AssertUnwindSafe(|| f_batch(&pending, &mut rngs)))
                        .ok()
                        .filter(|v| v.len() == pending.len())
                        .unwrap_or_else(|| pending.iter().map(|_| None).collect());
                for (&i, val) in pending.iter().zip(vals) {
                    if let Some(value) = val {
                        let outcome = SampleOutcome::Ok(value);
                        if let Some(on_done) = hooks.on_done {
                            on_done(i, &outcome);
                        }
                        out[i - lo] = Some(Some(outcome));
                    }
                }
            }

            // Everything the batch declined resolves scalar — retry
            // ladder, cancellation, and panic containment included.
            for i in lo..hi {
                if out[i - lo].is_none() {
                    out[i - lo] = Some(self.resolve_one(i, max_attempts, &retryable, &hooks, &f));
                }
            }
            out.into_iter()
                .map(|slot| slot.expect("every sample in the group resolves"))
                .collect::<Vec<_>>()
        });
        parts.into_iter().flatten().collect()
    }

    /// The scalar per-sample resolution behind [`MonteCarlo::try_run_resumed`]
    /// (and the fallback path of the batched variant): prior-run lookup,
    /// the attempt/retry ladder on a replayed RNG stream, cancellation,
    /// panic containment, and the checkpoint callback.
    fn resolve_one<T, E, F, R>(
        &self,
        i: usize,
        max_attempts: u32,
        retryable: &R,
        hooks: &RunHooks<'_, T, E>,
        f: &F,
    ) -> Option<SampleOutcome<T, E>>
    where
        F: Fn(usize, u32, &mut StdRng) -> Result<T, E> + Sync,
        R: Fn(&E) -> bool + Sync,
    {
        if let Some(prior) = hooks.prior {
            if let Some(done) = prior(i) {
                return Some(done);
            }
        }
        let mut attempt = 1u32;
        let outcome = loop {
            if let Some(token) = hooks.cancel {
                if token.is_cancelled() {
                    return None;
                }
            }
            // Every attempt replays the identical stream; escalation
            // comes from the attempt number (see `try_run`).
            let mut rng = self.rng_for(i);
            let result = match hooks.contain_panics {
                None => f(i, attempt, &mut rng),
                Some(contain) => {
                    match std::panic::catch_unwind(AssertUnwindSafe(|| f(i, attempt, &mut rng))) {
                        Ok(result) => result,
                        Err(payload) => Err(contain(panic_message(payload))),
                    }
                }
            };
            match result {
                Ok(value) if attempt == 1 => break SampleOutcome::Ok(value),
                Ok(value) => {
                    break SampleOutcome::Recovered {
                        value,
                        attempts: attempt,
                    }
                }
                Err(error) => {
                    if attempt >= max_attempts || !retryable(&error) {
                        break SampleOutcome::Failed {
                            error,
                            attempts: attempt,
                        };
                    }
                    attempt += 1;
                }
            }
        };
        if let Some(on_done) = hooks.on_done {
            on_done(i, &outcome);
        }
        Some(outcome)
    }

    /// Shared fan-out: runs `g(i)` for `i in 0..n` across the configured
    /// worker threads and concatenates the per-chunk result vectors in
    /// index order. Infallible by construction — each worker returns its
    /// own `Vec`, so there are no placeholder slots to check afterwards.
    ///
    /// A panicking worker is re-raised on the calling thread, but only
    /// after **every** other worker has been joined — sibling shards run
    /// to completion (and flush their checkpoint records) instead of
    /// being torn down mid-sample by the unwind. The first panic payload
    /// observed in chunk order is the one re-raised.
    fn fan_out<T, G>(&self, g: G) -> Vec<T>
    where
        T: Send,
        G: Fn(usize) -> T + Sync,
    {
        if self.n == 0 {
            return Vec::new();
        }
        let threads = self.threads.min(self.n);
        if threads == 1 {
            return (0..self.n).map(g).collect();
        }

        let chunk = self.n.div_ceil(threads);
        let mut out: Vec<T> = Vec::with_capacity(self.n);
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let g = &g;
                    let n = self.n;
                    scope.spawn(move || {
                        let lo = (t * chunk).min(n);
                        let hi = ((t + 1) * chunk).min(n);
                        (lo..hi).map(g).collect::<Vec<T>>()
                    })
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(part) => out.extend(part),
                    Err(payload) => {
                        if panic.is_none() {
                            panic = Some(payload);
                        }
                    }
                }
            }
        });
        if let Some(payload) = panic {
            std::panic::resume_unwind(payload);
        }
        out
    }
}

/// SplitMix64-style mixing of (seed, index) into one well-distributed
/// 64-bit stream seed, so neighbouring sample indices get unrelated RNGs.
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed ^ i.wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use proptest::prelude::*;
    use rand::RngExt;

    #[test]
    fn results_are_in_index_order() {
        let mc = MonteCarlo::new(100, 5);
        let out = mc.run(|i, _| i);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let draw = |_i: usize, rng: &mut StdRng| rng.random::<f64>();
        let seq = MonteCarlo::new(64, 123).with_threads(1).run(draw);
        let par = MonteCarlo::new(64, 123).with_threads(8).run(draw);
        assert_eq!(seq, par);
    }

    #[test]
    fn different_samples_get_different_streams() {
        let mc = MonteCarlo::new(32, 7);
        let out = mc.run(|_, rng| rng.random::<u64>());
        let mut dedup = out.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), out.len(), "RNG streams must not collide");
    }

    #[test]
    fn different_seeds_differ() {
        let a = MonteCarlo::new(8, 1).run(|_, rng| rng.random::<u64>());
        let b = MonteCarlo::new(8, 2).run(|_, rng| rng.random::<u64>());
        assert_ne!(a, b);
    }

    #[test]
    fn rng_for_matches_run() {
        let mc = MonteCarlo::new(10, 77);
        let out = mc.run(|_, rng| rng.random::<u64>());
        let mut rng5 = mc.rng_for(5);
        assert_eq!(out[5], rng5.random::<u64>());
    }

    #[test]
    fn empty_run_is_empty() {
        let mc = MonteCarlo::new(0, 0);
        let out: Vec<u32> = mc.run(|_, _| unreachable!("no samples"));
        assert!(out.is_empty());
    }

    #[test]
    fn zero_threads_clamps_to_sequential() {
        let mc = MonteCarlo::new(8, 3).with_threads(0);
        let out = mc.run(|i, _| i);
        assert_eq!(out, (0..8).collect::<Vec<_>>());
    }

    /// A deterministic fallible workload: samples whose index is in
    /// `fail_until` fail with a retryable error until the given attempt
    /// number; indexes in `hard_fail` always fail non-retryably.
    fn flaky(
        i: usize,
        attempt: u32,
        rng: &mut StdRng,
        recover_at: &[(usize, u32)],
        hard_fail: &[usize],
    ) -> Result<f64, (bool, usize)> {
        let draw = rng.random::<f64>();
        if hard_fail.contains(&i) {
            return Err((false, i));
        }
        if let Some(&(_, at)) = recover_at.iter().find(|&&(s, _)| s == i) {
            if attempt < at {
                return Err((true, i));
            }
        }
        Ok(draw)
    }

    #[test]
    fn try_run_isolates_and_recovers() {
        let recover_at = [(3usize, 2u32), (9, 3)];
        let hard_fail = [5usize];
        let mc = MonteCarlo::new(16, 11).with_threads(4);
        let out = mc.try_run(
            4,
            |e: &(bool, usize)| e.0,
            |i, attempt, rng| flaky(i, attempt, rng, &recover_at, &hard_fail),
        );
        assert_eq!(out.len(), 16);
        assert_eq!(out[3].attempts(), 2);
        assert!(out[3].is_recovered());
        assert_eq!(out[9].attempts(), 3);
        assert!(out[9].is_recovered());
        assert!(out[5].is_failed());
        assert_eq!(
            out[5].attempts(),
            1,
            "non-retryable errors stop immediately"
        );
        let clean = out
            .iter()
            .enumerate()
            .filter(|(i, _)| ![3, 5, 9].contains(i))
            .all(|(_, o)| matches!(o, SampleOutcome::Ok(_)));
        assert!(clean, "untouched samples resolve on the first attempt");
    }

    #[test]
    fn try_run_exhausts_bounded_attempts() {
        let mc = MonteCarlo::new(4, 1);
        let out = mc.try_run(
            3,
            |_: &&str| true,
            |i, _, _| {
                if i == 2 {
                    Err("never converges")
                } else {
                    Ok(i)
                }
            },
        );
        assert_eq!(
            out[2],
            SampleOutcome::Failed {
                error: "never converges",
                attempts: 3
            }
        );
    }

    #[test]
    fn retries_replay_the_same_rng_stream() {
        // Attempt 2 must see the identical stream as attempt 1 so the
        // retried sample is the same circuit instance.
        let mc = MonteCarlo::new(6, 21);
        let baseline = mc.run(|_, rng| rng.random::<f64>());
        let out = mc.try_run(
            2,
            |_: &()| true,
            |i, attempt, rng| {
                let draw = rng.random::<f64>();
                if i == 4 && attempt == 1 {
                    Err(())
                } else {
                    Ok(draw)
                }
            },
        );
        for (i, o) in out.iter().enumerate() {
            assert_eq!(o.value(), Some(&baseline[i]));
        }
        assert!(out[4].is_recovered());
    }

    #[test]
    fn resumed_run_skips_prior_and_matches_uninterrupted() {
        let mc = MonteCarlo::new(24, 17).with_threads(4);
        let work = |_i: usize, _attempt: u32, rng: &mut StdRng| -> Result<u64, ()> {
            Ok(rng.random::<u64>())
        };
        let full = mc.try_run(1, |_: &()| false, work);

        // "Resume" with the even samples already done: odd samples are
        // recomputed, even ones restored, and the merged vector matches.
        let computed = std::sync::Mutex::new(Vec::new());
        let prior = |i: usize| -> Option<SampleOutcome<u64, ()>> {
            if i.is_multiple_of(2) {
                Some(full[i].clone())
            } else {
                None
            }
        };
        let on_done = |i: usize, _o: &SampleOutcome<u64, ()>| {
            computed.lock().unwrap().push(i);
        };
        let hooks = RunHooks {
            prior: Some(&prior),
            on_done: Some(&on_done),
            ..RunHooks::default()
        };
        let resumed = mc.try_run_resumed(1, |_: &()| false, hooks, work);
        let resumed: Vec<_> = resumed.into_iter().map(Option::unwrap).collect();
        assert_eq!(resumed, full);
        let mut fresh = computed.into_inner().unwrap();
        fresh.sort_unstable();
        assert_eq!(fresh, (0..24).filter(|i| i % 2 == 1).collect::<Vec<_>>());
    }

    #[test]
    fn cancelled_run_leaves_unstarted_samples_none() {
        use pulsar_obs::CancelReason;
        let token = CancelToken::new();
        token.cancel(CancelReason::User);
        let mc = MonteCarlo::new(8, 3).with_threads(2);
        let hooks = RunHooks {
            cancel: Some(&token),
            ..RunHooks::default()
        };
        let out = mc.try_run_resumed(
            1,
            |_: &()| false,
            hooks,
            |i, _, _| -> Result<usize, ()> { Ok(i) },
        );
        assert_eq!(out.len(), 8);
        assert!(
            out.iter().all(Option::is_none),
            "pre-tripped token skips all"
        );
    }

    #[test]
    fn cancelled_samples_still_restore_from_prior() {
        use pulsar_obs::CancelReason;
        let token = CancelToken::new();
        token.cancel(CancelReason::Deadline);
        let mc = MonteCarlo::new(4, 9).with_threads(1);
        let prior =
            |i: usize| -> Option<SampleOutcome<usize, ()>> { Some(SampleOutcome::Ok(i * 10)) };
        let hooks = RunHooks {
            prior: Some(&prior),
            cancel: Some(&token),
            ..RunHooks::default()
        };
        let out = mc.try_run_resumed(
            1,
            |_: &()| false,
            hooks,
            |_, _, _| -> Result<usize, ()> { unreachable!("all prior") },
        );
        let values: Vec<_> = out
            .into_iter()
            .map(|o| o.unwrap().into_value().unwrap())
            .collect();
        assert_eq!(values, vec![0, 10, 20, 30]);
    }

    #[test]
    fn contained_panic_becomes_failed_outcome() {
        let mc = MonteCarlo::new(6, 5).with_threads(3);
        let contain = |msg: String| msg;
        let hooks = RunHooks {
            contain_panics: Some(&contain),
            ..RunHooks::default()
        };
        let out = mc.try_run_resumed(
            1,
            |_: &String| false,
            hooks,
            |i, _, rng| -> Result<u64, String> {
                if i == 2 {
                    panic!("poisoned sample {i}");
                }
                Ok(rng.random::<u64>())
            },
        );
        let baseline = mc.run(|_, rng| rng.random::<u64>());
        for (i, o) in out.iter().enumerate() {
            let o = o.as_ref().unwrap();
            if i == 2 {
                assert_eq!(
                    o.error().map(String::as_str),
                    Some("poisoned sample 2"),
                    "panic message is captured"
                );
            } else {
                assert_eq!(o.value(), Some(&baseline[i]), "siblings are unharmed");
            }
        }
    }

    #[test]
    fn contained_panic_is_retryable_like_any_error() {
        let mc = MonteCarlo::new(1, 1);
        let contain = |msg: String| msg;
        let hooks = RunHooks {
            contain_panics: Some(&contain),
            ..RunHooks::default()
        };
        let out = mc.try_run_resumed(
            3,
            |_: &String| true,
            hooks,
            |_, attempt, _| -> Result<u32, String> {
                if attempt < 3 {
                    panic!("flaky");
                }
                Ok(attempt)
            },
        );
        assert_eq!(
            out[0],
            Some(SampleOutcome::Recovered {
                value: 3,
                attempts: 3
            })
        );
    }

    #[test]
    fn uncontained_panic_joins_siblings_before_unwinding() {
        let done = std::sync::atomic::AtomicUsize::new(0);
        let mc = MonteCarlo::new(8, 1).with_threads(4);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            mc.run(|i, _| {
                if i == 0 {
                    panic!("first chunk dies");
                }
                std::thread::sleep(std::time::Duration::from_millis(20));
                done.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            })
        }));
        assert!(caught.is_err(), "the panic still propagates by default");
        assert_eq!(
            done.load(std::sync::atomic::Ordering::SeqCst),
            6,
            "sibling shards ran to completion before the re-raise"
        );
    }

    #[test]
    fn panic_message_renders_common_payloads() {
        assert_eq!(panic_message(Box::new("static".to_owned())), "static");
        assert_eq!(panic_message(Box::new("str payload")), "str payload");
        assert_eq!(panic_message(Box::new(42u32)), "non-string panic payload");
    }

    #[test]
    fn batched_run_matches_scalar_when_batch_resolves_everything() {
        let mc = MonteCarlo::new(17, 42).with_threads(3);
        let scalar = mc.try_run(1, |_: &()| false, |_, _, rng| Ok(rng.random::<u64>()));
        let out = mc.try_run_resumed_batched(
            4,
            1,
            |_: &()| false,
            RunHooks::default(),
            |idx, rngs| {
                idx.iter()
                    .zip(rngs.iter_mut())
                    .map(|(_, rng)| Some(rng.random::<u64>()))
                    .collect()
            },
            // Only the trailing singleton group (sample 16) lands here:
            // a group with one pending sample skips the batch engine.
            |i, _, rng| -> Result<u64, ()> {
                assert_eq!(i, 16, "full groups resolve in the batch");
                Ok(rng.random::<u64>())
            },
        );
        let out: Vec<_> = out.into_iter().map(Option::unwrap).collect();
        assert_eq!(out, scalar);
    }

    #[test]
    fn batch_declined_samples_fall_back_to_the_scalar_ladder() {
        // Samples at i % 3 == 0 are declined by the batch; of those,
        // i == 6 needs a retry — the scalar ladder must run in full.
        let mc = MonteCarlo::new(12, 7).with_threads(2);
        let work = |i: usize, attempt: u32, rng: &mut StdRng| -> Result<u64, ()> {
            let draw = rng.random::<u64>();
            if i == 6 && attempt == 1 {
                Err(())
            } else {
                Ok(draw)
            }
        };
        let scalar = mc.try_run(2, |_: &()| true, work);
        for threads in [1usize, 2, 5] {
            let out = mc.with_threads(threads).try_run_resumed_batched(
                4,
                2,
                |_: &()| true,
                RunHooks::default(),
                |idx, rngs| {
                    idx.iter()
                        .zip(rngs.iter_mut())
                        .map(|(&i, rng)| {
                            let draw = rng.random::<u64>();
                            if i.is_multiple_of(3) {
                                None
                            } else {
                                Some(draw)
                            }
                        })
                        .collect()
                },
                work,
            );
            let out: Vec<_> = out.into_iter().map(Option::unwrap).collect();
            assert_eq!(out, scalar, "threads={threads}");
        }
        assert!(scalar[6].is_recovered());
    }

    #[test]
    fn panicking_batch_falls_back_to_scalar_for_the_whole_group() {
        let mc = MonteCarlo::new(8, 9).with_threads(2);
        let scalar = mc.try_run(1, |_: &()| false, |_, _, rng| Ok(rng.random::<u64>()));
        let out = mc.try_run_resumed_batched(
            4,
            1,
            |_: &()| false,
            RunHooks::default(),
            |_idx, _rngs| -> Vec<Option<u64>> { panic!("batch engine bug") },
            |_, _, rng| Ok(rng.random::<u64>()),
        );
        let out: Vec<_> = out.into_iter().map(Option::unwrap).collect();
        assert_eq!(out, scalar, "a batch panic must not poison outcomes");
    }

    #[test]
    fn wrong_length_batch_result_is_discarded() {
        let mc = MonteCarlo::new(6, 13).with_threads(1);
        let scalar = mc.try_run(1, |_: &()| false, |_, _, rng| Ok(rng.random::<u64>()));
        let out = mc.try_run_resumed_batched(
            3,
            1,
            |_: &()| false,
            RunHooks::default(),
            |_idx, _rngs| vec![Some(0u64)],
            |_, _, rng| Ok(rng.random::<u64>()),
        );
        let out: Vec<_> = out.into_iter().map(Option::unwrap).collect();
        assert_eq!(out, scalar);
    }

    #[test]
    fn prior_samples_never_enter_the_batch() {
        let mc = MonteCarlo::new(8, 23).with_threads(1);
        let full = mc.try_run(
            1,
            |_: &()| false,
            |_, _, rng| Ok::<u64, ()>(rng.random::<u64>()),
        );
        let prior = |i: usize| -> Option<SampleOutcome<u64, ()>> {
            if i < 4 {
                Some(full[i].clone())
            } else {
                None
            }
        };
        let batched_with = std::sync::Mutex::new(Vec::new());
        let hooks = RunHooks {
            prior: Some(&prior),
            ..RunHooks::default()
        };
        let out = mc.try_run_resumed_batched(
            8,
            1,
            |_: &()| false,
            hooks,
            |idx, rngs| {
                batched_with.lock().unwrap().extend_from_slice(idx);
                idx.iter()
                    .zip(rngs.iter_mut())
                    .map(|(_, rng)| Some(rng.random::<u64>()))
                    .collect()
            },
            |_, _, rng| Ok(rng.random::<u64>()),
        );
        let out: Vec<_> = out.into_iter().map(Option::unwrap).collect();
        assert_eq!(out, full);
        assert_eq!(
            batched_with.into_inner().unwrap(),
            vec![4, 5, 6, 7],
            "restored samples are served from prior, not re-batched"
        );
    }

    #[test]
    fn range_run_matches_the_full_run_slice() {
        // A range's outcomes must equal the corresponding slice of the
        // full run — the adaptive decision loop depends on this to take
        // stopping decisions on ordered prefixes while extending the
        // stream round by round.
        let mc = MonteCarlo::new(20, 31);
        let work = |i: usize, attempt: u32, rng: &mut StdRng| -> Result<u64, (bool, usize)> {
            let draw = rng.random::<u64>();
            if i % 7 == 3 {
                Err((false, i))
            } else if i.is_multiple_of(5) && attempt < 2 {
                Err((true, i))
            } else {
                Ok(draw)
            }
        };
        let batch_work = |idx: &[usize], rngs: &mut [StdRng]| -> Vec<Option<u64>> {
            idx.iter()
                .zip(rngs.iter_mut())
                .map(|(&i, rng)| {
                    let draw = rng.random::<u64>();
                    if i % 7 == 3 || i.is_multiple_of(5) {
                        None
                    } else {
                        Some(draw)
                    }
                })
                .collect()
        };
        let retryable = |e: &(bool, usize)| e.0;
        let full = mc.with_threads(1).try_run(3, retryable, work);
        for (lo, hi) in [(0usize, 20usize), (3, 17), (16, 20), (5, 5), (7, 3)] {
            for threads in [1usize, 2, 4] {
                for batch in [0usize, 4] {
                    let out = mc.with_threads(threads).try_run_range_resumed_batched(
                        lo,
                        hi,
                        batch,
                        3,
                        retryable,
                        RunHooks::default(),
                        batch_work,
                        work,
                    );
                    let out: Vec<_> = out.into_iter().map(Option::unwrap).collect();
                    assert_eq!(
                        out,
                        full[lo..hi.max(lo)],
                        "lo={lo} hi={hi} threads={threads} batch={batch}"
                    );
                }
            }
        }
    }

    #[test]
    fn batch_of_less_than_two_degenerates_to_scalar() {
        let mc = MonteCarlo::new(5, 3);
        let scalar = mc.try_run(1, |_: &()| false, |i, _, _| Ok::<usize, ()>(i));
        let out = mc.try_run_resumed_batched(
            1,
            1,
            |_: &()| false,
            RunHooks::default(),
            |_idx, _rngs| -> Vec<Option<usize>> { unreachable!("batch=1 is scalar") },
            |i, _, _| Ok(i),
        );
        let out: Vec<_> = out.into_iter().map(Option::unwrap).collect();
        assert_eq!(out, scalar);
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(16))]
        #[test]
        fn batched_outcomes_bit_identical_across_thread_counts_and_batch_sizes(
            seed in 0u64..10_000,
            n in 1usize..40,
            batch in 2usize..9,
        ) {
            // Batch declines i % 4 == 1; scalar ladder recovers i % 5 == 0
            // on attempt 2 and hard-fails i % 7 == 3.
            let work = |i: usize, attempt: u32, rng: &mut StdRng| -> Result<u64, (bool, usize)> {
                let draw = rng.random::<u64>();
                if i % 7 == 3 {
                    Err((false, i))
                } else if i.is_multiple_of(5) && attempt < 2 {
                    Err((true, i))
                } else {
                    Ok(draw)
                }
            };
            let batch_work = |idx: &[usize], rngs: &mut [StdRng]| -> Vec<Option<u64>> {
                idx.iter()
                    .zip(rngs.iter_mut())
                    .map(|(&i, rng)| {
                        let draw = rng.random::<u64>();
                        if i % 4 == 1 || i % 7 == 3 || i.is_multiple_of(5) {
                            None
                        } else {
                            Some(draw)
                        }
                    })
                    .collect()
            };
            let retryable = |e: &(bool, usize)| e.0;
            let base = MonteCarlo::new(n, seed).with_threads(1).try_run(3, retryable, work);
            for threads in [1usize, 2, 7] {
                let out = MonteCarlo::new(n, seed)
                    .with_threads(threads)
                    .try_run_resumed_batched(
                        batch,
                        3,
                        retryable,
                        RunHooks::default(),
                        batch_work,
                        work,
                    );
                let out: Vec<_> = out.into_iter().map(Option::unwrap).collect();
                prop_assert_eq!(&base, &out);
            }
        }

        #[test]
        fn try_run_bit_identical_across_thread_counts(seed in 0u64..10_000, n in 1usize..40) {
            // Injected failures: a retryable flake recovering on attempt 2
            // for i % 5 == 0, a hard failure for i % 7 == 3.
            let work = |i: usize, attempt: u32, rng: &mut StdRng| -> Result<u64, (bool, usize)> {
                let draw = rng.random::<u64>();
                if i % 7 == 3 {
                    Err((false, i))
                } else if i.is_multiple_of(5) && attempt < 2 {
                    Err((true, i))
                } else {
                    Ok(draw)
                }
            };
            let retryable = |e: &(bool, usize)| e.0;
            let base = MonteCarlo::new(n, seed).with_threads(1).try_run(3, retryable, work);
            for threads in [2usize, 7] {
                let par = MonteCarlo::new(n, seed).with_threads(threads).try_run(3, retryable, work);
                prop_assert_eq!(&base, &par);
            }
        }
    }
}
