//! Per-sample resolution of a fault-isolated Monte Carlo run.

/// How one Monte Carlo sample resolved under
/// [`MonteCarlo::try_run`](crate::MonteCarlo::try_run).
///
/// The three states form a small lattice ordered by how much trust the
/// sample deserves: `Ok` (clean first attempt) ≥ `Recovered` (a retry
/// with an escalated solver configuration succeeded) ≥ `Failed` (every
/// permitted attempt errored). `Ok` and `Recovered` are *resolved* —
/// they carry a value usable for coverage statistics; `Failed` samples
/// are the *unresolved fraction* a study must report rather than
/// silently drop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SampleOutcome<T, E> {
    /// The first attempt succeeded.
    Ok(T),
    /// A retry succeeded; `attempts` counts all attempts including the
    /// final successful one (so it is always ≥ 2).
    Recovered {
        /// The successful attempt's result.
        value: T,
        /// Total attempts spent, including the successful one.
        attempts: u32,
    },
    /// Every permitted attempt failed; `error` is from the last attempt.
    Failed {
        /// The final attempt's error.
        error: E,
        /// Total attempts spent.
        attempts: u32,
    },
}

impl<T, E> SampleOutcome<T, E> {
    /// The resolved value, if any (`Ok` or `Recovered`).
    pub fn value(&self) -> Option<&T> {
        match self {
            SampleOutcome::Ok(v) | SampleOutcome::Recovered { value: v, .. } => Some(v),
            SampleOutcome::Failed { .. } => None,
        }
    }

    /// Consumes the outcome, yielding the resolved value if any.
    pub fn into_value(self) -> Option<T> {
        match self {
            SampleOutcome::Ok(v) | SampleOutcome::Recovered { value: v, .. } => Some(v),
            SampleOutcome::Failed { .. } => None,
        }
    }

    /// The terminal error, if the sample failed.
    pub fn error(&self) -> Option<&E> {
        match self {
            SampleOutcome::Failed { error, .. } => Some(error),
            _ => None,
        }
    }

    /// Total attempts spent on the sample (1 for a clean `Ok`).
    pub fn attempts(&self) -> u32 {
        match self {
            SampleOutcome::Ok(_) => 1,
            SampleOutcome::Recovered { attempts, .. } | SampleOutcome::Failed { attempts, .. } => {
                *attempts
            }
        }
    }

    /// Whether the sample carries a usable value.
    pub fn is_resolved(&self) -> bool {
        !matches!(self, SampleOutcome::Failed { .. })
    }

    /// Whether the sample needed (successful) retries.
    pub fn is_recovered(&self) -> bool {
        matches!(self, SampleOutcome::Recovered { .. })
    }

    /// Whether the sample exhausted its attempts without resolving.
    pub fn is_failed(&self) -> bool {
        matches!(self, SampleOutcome::Failed { .. })
    }

    /// Maps the resolved value, preserving attempt accounting.
    pub fn map<U, F: FnOnce(T) -> U>(self, f: F) -> SampleOutcome<U, E> {
        match self {
            SampleOutcome::Ok(v) => SampleOutcome::Ok(f(v)),
            SampleOutcome::Recovered { value, attempts } => SampleOutcome::Recovered {
                value: f(value),
                attempts,
            },
            SampleOutcome::Failed { error, attempts } => SampleOutcome::Failed { error, attempts },
        }
    }

    /// Maps the error, preserving attempt accounting.
    pub fn map_err<G, F: FnOnce(E) -> G>(self, f: F) -> SampleOutcome<T, G> {
        match self {
            SampleOutcome::Ok(v) => SampleOutcome::Ok(v),
            SampleOutcome::Recovered { value, attempts } => {
                SampleOutcome::Recovered { value, attempts }
            }
            SampleOutcome::Failed { error, attempts } => SampleOutcome::Failed {
                error: f(error),
                attempts,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::SampleOutcome;

    #[test]
    fn accessors_match_variants() {
        let ok: SampleOutcome<u32, &str> = SampleOutcome::Ok(7);
        assert_eq!(ok.value(), Some(&7));
        assert_eq!(ok.attempts(), 1);
        assert!(ok.is_resolved() && !ok.is_recovered() && !ok.is_failed());

        let rec: SampleOutcome<u32, &str> = SampleOutcome::Recovered {
            value: 9,
            attempts: 3,
        };
        assert_eq!(rec.value(), Some(&9));
        assert_eq!(rec.attempts(), 3);
        assert!(rec.is_resolved() && rec.is_recovered());

        let failed: SampleOutcome<u32, &str> = SampleOutcome::Failed {
            error: "boom",
            attempts: 2,
        };
        assert_eq!(failed.value(), None);
        assert_eq!(failed.error(), Some(&"boom"));
        assert_eq!(failed.attempts(), 2);
        assert!(failed.is_failed() && !failed.is_resolved());
    }

    #[test]
    fn map_preserves_attempts() {
        let rec: SampleOutcome<u32, &str> = SampleOutcome::Recovered {
            value: 4,
            attempts: 2,
        };
        let mapped = rec.map(|v| v * 10).map_err(|e| e.len());
        assert_eq!(
            mapped,
            SampleOutcome::Recovered {
                value: 40,
                attempts: 2
            }
        );
    }
}
