//! Sequential early-stopping policy for adaptive Monte Carlo coverage.
//!
//! A coverage study evaluates a grid of points (one per fault resistance
//! × test-condition factor). The fixed-budget engine spends the same N on
//! every point; the adaptive engine instead consumes the `stream_seed`-
//! ordered sample stream in rounds and stops a point as soon as a
//! binomial confidence interval on its coverage estimate is narrower
//! than the requested precision.
//!
//! Determinism is the design constraint: stopping decisions are taken
//! **only on ordered prefixes** of the sample stream. Workers may compute
//! a round's samples in parallel (fixed-size chunks fanned out by the
//! [`crate::MonteCarlo`] driver), but the decision loop consumes rounds
//! in stream order, so the decided per-point sample count — and with it
//! every reported number — is bit-identical across thread counts.
//!
//! This module is pure policy/arithmetic (no I/O, no clocks) and is on
//! the lint-src hot-path list: the per-round decision arithmetic runs
//! between every batch of transient solves.

use crate::interval::{clopper_pearson, wilson, BinomialInterval};

/// Which interval construction the stopping rule uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IntervalRule {
    /// Wilson score interval at critical value `z`.
    Wilson {
        /// Normal critical value (1.96 ⇒ 95 %).
        z: f64,
    },
    /// Exact Clopper–Pearson interval at two-sided level `alpha`.
    ClopperPearson {
        /// Two-sided miss probability (0.05 ⇒ 95 %).
        alpha: f64,
    },
}

impl IntervalRule {
    /// The interval for `k` successes in `n` trials under this rule.
    pub fn interval(&self, k: u64, n: u64) -> BinomialInterval {
        match *self {
            IntervalRule::Wilson { z } => wilson(k, n, z),
            IntervalRule::ClopperPearson { alpha } => clopper_pearson(k, n, alpha),
        }
    }
}

/// The adaptive sampling policy: requested precision, interval rule, and
/// the budget/granularity knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptivePolicy {
    /// Requested CI half-width: a point stops once every factor's
    /// interval is at least this tight.
    pub precision: f64,
    /// Interval construction used by the stopping rule.
    pub rule: IntervalRule,
    /// Minimum samples before any stop decision — guards against
    /// freak early prefixes stopping a point at n = chunk.
    pub min_samples: usize,
    /// Hard per-point budget for the first pass; refinement may extend a
    /// point to at most [`AdaptivePolicy::refine_cap`].
    pub max_samples: usize,
    /// Round size: decisions happen only at multiples of this many
    /// samples, so the parallel workers always have full chunks.
    pub chunk: usize,
    /// Coverage threshold for crossover refinement: points whose
    /// interval straddles it get a share of the saved budget.
    pub threshold: f64,
    /// Fraction of the phase-1 savings the refinement pass may
    /// reinvest, clamped to `[0, 1]`. `1.0` (the default) hands the
    /// crossover columns everything the early stops saved — a
    /// budget-neutral precision upgrade; smaller values bank the rest
    /// of the savings as net speedup; `0.0` disables refinement.
    pub refine_fraction: f64,
}

impl AdaptivePolicy {
    /// A policy with the workspace defaults: Wilson at 95 %, minimum 16
    /// samples (clamped to the budget), rounds of 16, threshold 0.5,
    /// full savings reinvestment.
    pub fn new(precision: f64, max_samples: usize) -> AdaptivePolicy {
        AdaptivePolicy {
            precision,
            rule: IntervalRule::Wilson { z: 1.96 },
            min_samples: 16.min(max_samples),
            max_samples,
            chunk: 16.min(max_samples.max(1)),
            threshold: 0.5,
            refine_fraction: 1.0,
        }
    }

    /// The interval for `k` successes in `n` trials under this policy.
    pub fn interval(&self, k: u64, n: u64) -> BinomialInterval {
        self.rule.interval(k, n)
    }

    /// Does a half-width of `hw` after `n` trials satisfy the stop rule?
    pub fn met(&self, hw: f64, n: usize) -> bool {
        n >= self.min_samples && hw <= self.precision
    }

    /// Length of the next round for a point that has consumed `done`
    /// samples of a `budget`-sample allowance (0 when exhausted).
    pub fn round_len(&self, done: usize, budget: usize) -> usize {
        self.chunk.min(budget.saturating_sub(done))
    }

    /// Hard ceiling for refined points: twice the first-pass budget.
    pub fn refine_cap(&self) -> usize {
        2 * self.max_samples
    }

    /// How much of the `saved` phase-1 budget refinement may spend.
    pub fn refine_budget(&self, saved: u64) -> u64 {
        let f = self.refine_fraction.clamp(0.0, 1.0);
        // The product of two finite non-negative values is non-negative,
        // and `saved` fits f64 exactly at any realistic sample count.
        (saved as f64 * f) as u64
    }

    /// Refined points aim for a tighter target than the first pass.
    pub fn refined_precision(&self) -> f64 {
        self.precision / 2.0
    }
}

/// Running success counts for one grid column (one fault resistance),
/// tracking every test-condition factor's detections over a shared
/// sample prefix.
#[derive(Debug, Clone)]
pub struct SequentialTally {
    trials: u64,
    successes: Vec<u64>,
}

impl SequentialTally {
    /// A tally over `factors` test conditions with no samples yet.
    pub fn new(factors: usize) -> SequentialTally {
        SequentialTally {
            trials: 0,
            successes: vec![0; factors],
        }
    }

    /// Accounts one sample: `detected[f]` is whether factor `f` detected
    /// the fault on this instance. Failed samples are simply not pushed —
    /// they contribute to neither numerator nor denominator.
    ///
    /// # Panics
    ///
    /// Panics if `detected` does not match the factor count.
    pub fn push(&mut self, detected: &[bool]) {
        assert_eq!(detected.len(), self.successes.len());
        self.trials += 1;
        for (s, &d) in self.successes.iter_mut().zip(detected) {
            *s += d as u64;
        }
    }

    /// Samples accounted so far.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Detections for factor `f`.
    pub fn successes(&self, f: usize) -> u64 {
        self.successes[f]
    }

    /// Number of factors tracked.
    pub fn factors(&self) -> usize {
        self.successes.len()
    }

    /// The interval for factor `f` under `policy`.
    pub fn interval(&self, policy: &AdaptivePolicy, f: usize) -> BinomialInterval {
        policy.interval(self.successes[f], self.trials)
    }

    /// The widest per-factor half-width — the column stops only when its
    /// loosest factor meets the precision.
    pub fn worst_halfwidth(&self, policy: &AdaptivePolicy) -> f64 {
        let mut worst = 0.0f64;
        for f in 0..self.successes.len() {
            worst = worst.max(self.interval(policy, f).halfwidth());
        }
        // No factors (or no trials): the interval is [0, 1].
        if self.successes.is_empty() || self.trials == 0 {
            0.5
        } else {
            worst
        }
    }

    /// Point estimate for factor `f` (0 when no trials resolved).
    pub fn coverage(&self, f: usize) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes[f] as f64 / self.trials as f64
        }
    }
}

/// Measured (not promised) accuracy of one grid point, as reported in
/// the journal and manifest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointAccuracy {
    /// The precision the stop rule was asked for.
    pub requested_halfwidth: f64,
    /// The half-width actually achieved when the point stopped.
    pub achieved_halfwidth: f64,
    /// Samples consumed by the point (phase 1 + refinement).
    pub samples_spent: u64,
    /// True when the point stopped before exhausting its budget.
    pub stopped_early: bool,
}

/// Marks the grid columns adjacent to a sign change of `diffs` (e.g.
/// `C_pulse − C_del` along the resistance axis): both endpoints of every
/// adjacent pair with opposite signs — or touching zero — are flagged.
/// These are the paper's crossover points, first in line for refinement.
pub fn sign_change_neighbors(diffs: &[f64]) -> Vec<bool> {
    let mut mark = vec![false; diffs.len()];
    for i in 1..diffs.len() {
        if diffs[i - 1] * diffs[i] <= 0.0 && !(diffs[i - 1] == 0.0 && diffs[i] == 0.0) {
            mark[i - 1] = true;
            mark[i] = true;
        }
    }
    mark
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn policy_defaults() {
        let p = AdaptivePolicy::new(0.05, 200);
        assert_eq!(p.min_samples, 16);
        assert_eq!(p.chunk, 16);
        assert_eq!(p.refine_cap(), 400);
        assert!((p.refined_precision() - 0.025).abs() < 1e-15);
        assert!(matches!(p.rule, IntervalRule::Wilson { z } if (z - 1.96).abs() < 1e-12));
    }

    #[test]
    fn policy_clamps_to_tiny_budgets() {
        let p = AdaptivePolicy::new(0.05, 6);
        assert_eq!(p.min_samples, 6);
        assert_eq!(p.chunk, 6);
        assert_eq!(p.round_len(0, 6), 6);
        assert_eq!(p.round_len(6, 6), 0);
    }

    #[test]
    fn round_len_clips_final_round() {
        let p = AdaptivePolicy::new(0.05, 200);
        assert_eq!(p.round_len(0, 200), 16);
        assert_eq!(p.round_len(192, 200), 8);
        assert_eq!(p.round_len(200, 200), 0);
        assert_eq!(p.round_len(300, 200), 0);
    }

    #[test]
    fn met_requires_min_samples() {
        let p = AdaptivePolicy::new(0.05, 200);
        assert!(!p.met(0.0, 8));
        assert!(p.met(0.05, 16));
        assert!(!p.met(0.0501, 16));
    }

    #[test]
    fn tally_tracks_per_factor_counts() {
        let p = AdaptivePolicy::new(0.069, 200);
        let mut t = SequentialTally::new(2);
        assert!((t.worst_halfwidth(&p) - 0.5).abs() < 1e-15);
        for i in 0..32 {
            t.push(&[true, i % 2 == 0]);
        }
        assert_eq!(t.trials(), 32);
        assert_eq!(t.successes(0), 32);
        assert_eq!(t.successes(1), 16);
        assert!((t.coverage(1) - 0.5).abs() < 1e-15);
        // Factor 0 is saturated (hw ≈ 0.054 at k=n=32); factor 1 sits at
        // p̂=0.5, the widest point — the worst drives the stop rule.
        let w0 = t.interval(&p, 0).halfwidth();
        let w1 = t.interval(&p, 1).halfwidth();
        assert!(w1 > w0);
        assert!((t.worst_halfwidth(&p) - w1).abs() < 1e-15);
        assert!(!p.met(t.worst_halfwidth(&p), 32));
    }

    #[test]
    fn saturated_point_stops_at_32() {
        // The bench's headline arithmetic: all-detected (or none) points
        // meet ε = 0.069 after exactly two rounds of 16.
        let p = AdaptivePolicy::new(0.069, 200);
        let mut t = SequentialTally::new(1);
        for _ in 0..16 {
            t.push(&[true]);
        }
        assert!(!p.met(t.worst_halfwidth(&p), 16));
        for _ in 0..16 {
            t.push(&[true]);
        }
        assert!(p.met(t.worst_halfwidth(&p), 32));
    }

    #[test]
    fn sign_changes_mark_both_neighbors() {
        assert_eq!(
            sign_change_neighbors(&[1.0, 0.5, -0.5, -1.0]),
            vec![false, true, true, false]
        );
        assert_eq!(
            sign_change_neighbors(&[1.0, 0.0, 1.0]),
            vec![true, true, true]
        );
        assert_eq!(sign_change_neighbors(&[1.0, 1.0]), vec![false, false]);
        assert_eq!(sign_change_neighbors(&[0.0, 0.0]), vec![false, false]);
        assert_eq!(sign_change_neighbors(&[]), Vec::<bool>::new());
        assert_eq!(sign_change_neighbors(&[-3.0]), vec![false]);
    }

    #[test]
    #[should_panic(expected = "assertion")]
    fn tally_push_checks_factor_count() {
        SequentialTally::new(2).push(&[true]);
    }
}
