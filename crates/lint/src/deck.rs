//! Deck-level linting: parse-error mapping, source-span attachment, and
//! `.tran`/stimulus consistency checks.

use pulsar_analog::{parse_deck, Deck, Element, Error, Waveform};

use crate::checks::lint_circuit;
use crate::diag::{Code, Diagnostic, LintReport};

/// How strict [`load_deck`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LintOptions {
    /// Reject decks with error-severity findings (default). Opting out
    /// loads the deck regardless and leaves the findings advisory.
    pub strict: bool,
    /// In strict mode, additionally reject decks with warnings.
    pub deny_warnings: bool,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions {
            strict: true,
            deny_warnings: false,
        }
    }
}

/// Lints a deck source without running anything.
///
/// A deck that fails to parse yields a single finding mapped from the
/// parser error (carrying the failing line); a deck that parses gets the
/// full circuit-level pass plus `.tran`/stimulus consistency checks, with
/// findings mapped back to card names and deck lines.
pub fn lint_deck(text: &str) -> LintReport {
    lint_deck_inner(text).1
}

/// Parses and lints a deck in one step — the strict-mode entry point.
///
/// With `strict` set (the default), a deck carrying error-severity
/// findings (or any findings under `deny_warnings`) is rejected. With
/// `strict` off, any parseable deck loads and the report is advisory.
///
/// # Errors
///
/// The full report, boxed, when the deck does not parse or strict mode
/// rejects it.
pub fn load_deck(text: &str, opts: &LintOptions) -> Result<(Deck, LintReport), Box<LintReport>> {
    let (deck, report) = lint_deck_inner(text);
    match deck {
        Some(d) if !(opts.strict && report.has_blocking(opts.deny_warnings)) => Ok((d, report)),
        _ => Err(Box::new(report)),
    }
}

fn lint_deck_inner(text: &str) -> (Option<Deck>, LintReport) {
    let deck = match parse_deck(text) {
        Ok(d) => d,
        Err(e) => {
            return (None, LintReport::new(vec![parse_error_diag(text, &e)]));
        }
    };
    let spans = scan_spans(text);
    let mut diags = lint_circuit(&deck.circuit).diagnostics().to_vec();
    // Rewrite positional element labels into card names + deck lines.
    for d in &mut diags {
        if let Some((name, line)) = d.element_index.and_then(|ei| spans.elems.get(ei)) {
            d.subject = name.clone();
            d.line = Some(*line);
        }
    }
    tran_checks(&deck, &spans, &mut diags);
    (Some(deck), LintReport::new(diags))
}

/// Per-element card names and deck lines, mirroring the parser's element
/// ordering (non-MOSFET cards in deck order, then MOSFETs in deck order —
/// the parser instantiates them in a second pass once models are known).
struct DeckSpans {
    elems: Vec<(String, usize)>,
    tran_line: Option<usize>,
}

fn scan_spans(text: &str) -> DeckSpans {
    let mut normal = Vec::new();
    let mut mos = Vec::new();
    let mut tran_line = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line_no = lineno + 1;
        let line = raw.split(';').next().unwrap_or("").trim();
        // Mirror the parser: first line is the title, `*` comments skipped.
        if line.is_empty() || line.starts_with('*') || line_no == 1 {
            continue;
        }
        let Some(card) = line.split_whitespace().next() else {
            continue;
        };
        let lower = card.to_lowercase();
        match lower.chars().next() {
            Some('r' | 'c' | 'v' | 'i') => normal.push((card.to_owned(), line_no)),
            Some('m') => mos.push((card.to_owned(), line_no)),
            Some('.') => {
                if lower == ".end" {
                    break;
                }
                if lower == ".tran" {
                    tran_line = Some(line_no);
                }
            }
            _ => {}
        }
    }
    normal.extend(mos);
    DeckSpans {
        elems: normal,
        tran_line,
    }
}

/// Maps a parse error onto a single diagnostic carrying the failing line.
fn parse_error_diag(text: &str, e: &Error) -> Diagnostic {
    if let Error::InvalidParameter {
        element,
        parameter: "line",
        value,
    } = e
    {
        let line = *value as usize;
        let subject = text
            .lines()
            .nth(line.saturating_sub(1))
            .and_then(|l| l.split(';').next())
            .unwrap_or("")
            .split_whitespace()
            .next()
            .unwrap_or("deck")
            .to_owned();
        let code = match *element {
            "resistor value" => Code::ResistorValue,
            "capacitor value" => Code::CapacitorValue,
            "source waveform" => Code::WaveformDomain,
            el if el.starts_with(".tran") => Code::TranConfigInvalid,
            _ => Code::MalformedCard,
        };
        Diagnostic::new(
            code,
            subject,
            format!("deck does not parse: invalid {element}"),
            "fix the card; see the deck grammar in the pulsar-analog docs",
        )
        .with_line(line)
    } else {
        Diagnostic::new(
            Code::MalformedCard,
            "deck",
            format!("deck does not parse: {e}"),
            "fix the failing card",
        )
    }
}

fn tran_checks(deck: &Deck, spans: &DeckSpans, diags: &mut Vec<Diagnostic>) {
    let Some(tran) = &deck.tran else {
        return;
    };
    let mut push_cfg = |message: String, fix: &str| {
        let mut d = Diagnostic::new(Code::TranConfigInvalid, ".tran", message, fix);
        if let Some(line) = spans.tran_line {
            d = d.with_line(line);
        }
        diags.push(d);
    };
    let mut cfg_ok = true;
    if !(tran.step.is_finite() && tran.step > 0.0) {
        push_cfg(
            format!("transient step must be finite and > 0, got {}", tran.step),
            "use a positive step",
        );
        cfg_ok = false;
    }
    if !(tran.stop.is_finite() && tran.stop > 0.0) {
        push_cfg(
            format!("transient stop must be finite and > 0, got {}", tran.stop),
            "use a positive stop time",
        );
        cfg_ok = false;
    }
    if cfg_ok && tran.step > tran.stop {
        push_cfg(
            format!(
                "transient step {} exceeds stop time {}",
                tran.step, tran.stop
            ),
            "use a step no larger than the stop time",
        );
        cfg_ok = false;
    }
    if !cfg_ok {
        return;
    }

    // Step budget: the run accepts at least stop/step points even in
    // adaptive mode (`step` is the maximum step), so exceeding max_points
    // here guarantees StepBudgetExhausted.
    let min_points = tran.stop / tran.step;
    if min_points > tran.max_points as f64 {
        let mut d = Diagnostic::new(
            Code::StepBudget,
            ".tran",
            format!(
                "stop/step = {min_points:.3e} points exceeds the step budget of {}; \
                 the run is guaranteed to exhaust it",
                tran.max_points
            ),
            "increase the step, shorten the window, or raise max_points",
        );
        if let Some(line) = spans.tran_line {
            d = d.with_line(line);
        }
        diags.push(d);
    }

    // Pulse stimuli must complete inside the window.
    for (ei, e) in deck.circuit.elements().iter().enumerate() {
        let (Element::Vsource { wave, .. } | Element::Isource { wave, .. }) = e else {
            continue;
        };
        let Waveform::Pulse {
            delay,
            rise,
            fall,
            width,
            ..
        } = wave
        else {
            continue;
        };
        let parts = [*delay, *rise, *width, *fall];
        if parts.iter().any(|v| !v.is_finite() || *v < 0.0) {
            continue; // PL0004 already covers the domain problem
        }
        let end: f64 = parts.iter().sum();
        if end > tran.stop {
            let (subject, line) = match spans.elems.get(ei) {
                Some((name, line)) => (name.clone(), Some(*line)),
                None => (format!("source #{ei}"), None),
            };
            let mut d = Diagnostic::new(
                Code::PulseExceedsWindow,
                subject,
                format!(
                    "pulse completes at t = {end:.3e} s, after the transient window \
                     ends at {:.3e} s; the trailing edge is never simulated",
                    tran.stop
                ),
                "extend .tran stop past the pulse or shorten the pulse",
            );
            if let Some(line) = line {
                d = d.with_line(line);
            }
            diags.push(d);
        }
    }
}
