//! Pulse-test configuration checks: `ω_in`/`ω_th` consistency against the
//! transient window, the step budget, and the sensing floor.

use pulsar_analog::TranConfig;
use pulsar_cells::BuiltPath;

use crate::checks::lint_circuit;
use crate::diag::{Code, Diagnostic, LintReport};

/// A pulse-test configuration to verify statically.
///
/// Mirrors the paper's test setup: a pulse of width `w_in` is launched at
/// `t_start` with edge time `edge`, propagates through the path, and the
/// output is compared against the detection threshold `w_th` (the paper's
/// ω_in/ω_th pair).
#[derive(Debug, Clone)]
pub struct PulseTestConfig {
    /// Input pulse width (seconds, at 50 %).
    pub w_in: f64,
    /// Detection threshold on the output pulse width (seconds).
    pub w_th: f64,
    /// Smallest width the sensing circuit can resolve, when calibrated
    /// (e.g. from `TransitionDetector::characterize_threshold`).
    pub sense_floor: Option<f64>,
    /// Time the stimulus starts (seconds).
    pub t_start: f64,
    /// Stimulus edge time (seconds).
    pub edge: f64,
    /// The transient configuration the measurement will run with.
    pub tran: TranConfig,
}

impl PulseTestConfig {
    /// Assembles the configuration a default measurement run over `path`
    /// would use for the given `(w_in, w_th)` pair.
    pub fn for_path(path: &BuiltPath, w_in: f64, w_th: f64) -> Self {
        PulseTestConfig {
            w_in,
            w_th,
            sense_floor: None,
            t_start: path.stimulus_start(),
            edge: path.input_edge(),
            tran: path.default_config(if w_in.is_finite() { w_in } else { 0.0 }),
        }
    }
}

/// Statically checks a pulse-test configuration (no solves).
pub fn lint_pulse_test(cfg: &PulseTestConfig) -> LintReport {
    let mut diags = Vec::new();
    for (name, v) in [("w_in", cfg.w_in), ("w_th", cfg.w_th)] {
        if !(v.is_finite() && v > 0.0) {
            diags.push(Diagnostic::new(
                Code::WaveformDomain,
                "pulse test",
                format!("{name} must be finite and > 0, got {v}"),
                "use a strictly positive, finite width",
            ));
        }
    }
    let widths_ok =
        cfg.w_in.is_finite() && cfg.w_in > 0.0 && cfg.w_th.is_finite() && cfg.w_th > 0.0;

    let mut tran_ok = true;
    let step_ok = cfg.tran.step.is_finite() && cfg.tran.step > 0.0;
    let stop_ok = cfg.tran.stop.is_finite() && cfg.tran.stop > 0.0;
    if !step_ok || !stop_ok || cfg.tran.step > cfg.tran.stop {
        diags.push(Diagnostic::new(
            Code::TranConfigInvalid,
            "pulse test",
            format!(
                "transient window is invalid: step {}, stop {}",
                cfg.tran.step, cfg.tran.stop
            ),
            "use 0 < step <= stop, both finite",
        ));
        tran_ok = false;
    }

    if tran_ok {
        // `step` is the max step even in adaptive mode, so stop/step is a
        // lower bound on accepted points: exceeding the budget is certain.
        let min_points = cfg.tran.stop / cfg.tran.step;
        if min_points > cfg.tran.max_points as f64 {
            diags.push(Diagnostic::new(
                Code::StepBudget,
                "pulse test",
                format!(
                    "stop/step = {min_points:.3e} points exceeds the step budget of {}",
                    cfg.tran.max_points
                ),
                "increase the step, shorten the window, or raise max_points",
            ));
        }
        if widths_ok {
            // The stimulus (ramp up, flat top, ramp down) must finish
            // inside the window, with slack for the pulse to traverse the
            // path; the builder's trapezoid never ends later than
            // t_start + w_in + edge.
            let stim_end = cfg.t_start + cfg.w_in + cfg.edge;
            if stim_end > cfg.tran.stop {
                diags.push(Diagnostic::new(
                    Code::PulseExceedsWindow,
                    "pulse test",
                    format!(
                        "stimulus completes at t = {stim_end:.3e} s, after the transient \
                         window ends at {:.3e} s",
                        cfg.tran.stop
                    ),
                    "extend the window (larger extra) or shorten w_in",
                ));
            }
        }
    }

    if widths_ok {
        if let Some(floor) = cfg.sense_floor {
            if cfg.w_th < floor {
                diags.push(Diagnostic::new(
                    Code::ThresholdBelowFloor,
                    "pulse test",
                    format!(
                        "threshold w_th = {:.3e} s is below the sensing-circuit floor \
                         {floor:.3e} s; detections at the margin are not trustworthy",
                        cfg.w_th
                    ),
                    "raise w_th to at least the calibrated sensing floor",
                ));
            }
        }
        if cfg.w_in <= cfg.w_th {
            diags.push(Diagnostic::new(
                Code::PulseBelowThreshold,
                "pulse test",
                format!(
                    "input width w_in = {:.3e} s does not exceed the threshold w_th = \
                     {:.3e} s: even a fault-free path is classified as failing",
                    cfg.w_in, cfg.w_th
                ),
                "choose w_in > w_th (the paper's ω_in/ω_th ordering)",
            ));
        }
    }
    LintReport::new(diags)
}

/// Lints the netlist a built path will actually simulate: the full
/// circuit-level pass over its transistor-level circuit. Side inputs left
/// unpinned surface as `PL0105` undriven-gate findings.
pub fn lint_built_path(path: &BuiltPath) -> LintReport {
    lint_circuit(path.circuit())
}
