//! Diagnostic types: codes, severities, findings, and deterministic reports.

use std::fmt;

/// How serious a finding is.
///
/// `Error` findings predict a hard failure (a solve that cannot succeed or a
/// configuration that cannot produce a meaningful measurement). `Warning`
/// findings flag suspicious structure that the solver papers over (for
/// example a floating node held up only by the internal gmin floor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but survivable; the numeric layer will still run.
    Warning,
    /// Structurally fatal; running the numeric layer is pointless.
    Error,
}

impl Severity {
    /// Lowercase label used by both renderers.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Stable diagnostic code registry.
///
/// Codes are grouped by hundreds: `PL00xx` element/parameter domain, `PL01xx`
/// netlist structure (connectivity and structural singularity), `PL02xx`
/// pulse-test configuration, `PL03xx` fault-injection configuration. Codes
/// are append-only; a released code never changes meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// Resistor with a non-positive or non-finite resistance.
    ResistorValue,
    /// Capacitor with a negative or non-finite capacitance.
    CapacitorValue,
    /// MOSFET with non-physical geometry or model parameters.
    MosfetGeometry,
    /// Source waveform outside its domain (negative pulse timing, NaN level,
    /// non-monotonic PWL, ...).
    WaveformDomain,
    /// Deck card that does not parse at all.
    MalformedCard,
    /// `.tran` directive with an invalid step/stop combination.
    TranConfigInvalid,
    /// Structural singularity with a float-level guarantee: LU factorization
    /// *will* return `SingularMatrix` (shorted, doubly grounded, or
    /// parallel/antiparallel voltage sources).
    StructuralSingular,
    /// Voltage-source loop: exactly singular in real arithmetic, but rounding
    /// may hide the zero pivot, so the numeric outcome is not guaranteed.
    /// This is the documented conservative (possibly false-positive) verdict.
    VsourceLoop,
    /// Nodes with no DC path to ground, coupled to the rest of the circuit
    /// only through capacitors, current sources, or MOSFET gates. The solver
    /// holds them up with its gmin floor; their DC level is an artifact.
    NoDcPath,
    /// Nodes connected to nothing outside their own island — not even weakly.
    DisconnectedIsland,
    /// MOSFET gate that is not statically driven (its DC-connected component
    /// does not reach ground), so the device's region is undefined — a side
    /// input that was never pinned.
    UndrivenGate,
    /// Pulse stimulus that completes after the transient window ends.
    PulseExceedsWindow,
    /// `stop/step` alone exceeds `max_points`; the run is guaranteed to
    /// exhaust its step budget even before LTE rejections.
    StepBudget,
    /// Sensing threshold `w_th` below the sensing-circuit floor.
    ThresholdBelowFloor,
    /// Input pulse width `w_in` at or below the threshold `w_th`; the test
    /// rejects every device including fault-free ones.
    PulseBelowThreshold,
    /// Fault-injection resistance that is not finite and positive, or an
    /// empty resistance sweep.
    FaultResistance,
    /// Fault stage index outside the path (external ROP additionally needs a
    /// downstream stage).
    FaultStage,
}

impl Code {
    /// The stable `PLnnnn` identifier.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::ResistorValue => "PL0001",
            Code::CapacitorValue => "PL0002",
            Code::MosfetGeometry => "PL0003",
            Code::WaveformDomain => "PL0004",
            Code::MalformedCard => "PL0005",
            Code::TranConfigInvalid => "PL0006",
            Code::StructuralSingular => "PL0101",
            Code::VsourceLoop => "PL0102",
            Code::NoDcPath => "PL0103",
            Code::DisconnectedIsland => "PL0104",
            Code::UndrivenGate => "PL0105",
            Code::PulseExceedsWindow => "PL0201",
            Code::StepBudget => "PL0202",
            Code::ThresholdBelowFloor => "PL0203",
            Code::PulseBelowThreshold => "PL0204",
            Code::FaultResistance => "PL0301",
            Code::FaultStage => "PL0302",
        }
    }

    /// The severity this code always carries.
    pub fn severity(self) -> Severity {
        match self {
            Code::NoDcPath
            | Code::DisconnectedIsland
            | Code::UndrivenGate
            | Code::ThresholdBelowFloor
            | Code::PulseBelowThreshold => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One structural finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Severity, always `self.code.severity()`.
    pub severity: Severity,
    /// Registry code.
    pub code: Code,
    /// The element or concept the finding is about (card name once span
    /// mapping has run, otherwise a positional label such as `vsource #1`).
    pub subject: String,
    /// Node names involved, in circuit order.
    pub nodes: Vec<String>,
    /// 1-based line in the deck source, when the finding maps to a card.
    pub line: Option<usize>,
    /// Human-readable statement of the problem.
    pub message: String,
    /// Suggested fix.
    pub fix: String,
    /// Index into `Circuit::elements()` for span mapping; not rendered.
    pub element_index: Option<usize>,
}

impl Diagnostic {
    /// Creates a finding with no node list, span, or element index.
    pub fn new(
        code: Code,
        subject: impl Into<String>,
        message: impl Into<String>,
        fix: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity: code.severity(),
            code,
            subject: subject.into(),
            nodes: Vec::new(),
            line: None,
            message: message.into(),
            fix: fix.into(),
            element_index: None,
        }
    }

    /// Attaches node names.
    pub fn with_nodes(mut self, nodes: Vec<String>) -> Self {
        self.nodes = nodes;
        self
    }

    /// Attaches a 1-based deck line.
    pub fn with_line(mut self, line: usize) -> Self {
        self.line = Some(line);
        self
    }

    /// Attaches the element index used for deck span mapping.
    pub fn with_element(mut self, index: usize) -> Self {
        self.element_index = Some(index);
        self
    }
}

/// A deterministic, ordered collection of findings.
///
/// Reports sort their findings by `(code, line, subject, message)` at
/// construction, so rendering is identical across runs, platforms, and
/// thread counts regardless of the order in which checks emitted them.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LintReport {
    diags: Vec<Diagnostic>,
}

impl LintReport {
    /// Builds a report, sorting the findings into canonical order.
    pub fn new(mut diags: Vec<Diagnostic>) -> Self {
        diags.sort_by(|a, b| {
            a.code
                .as_str()
                .cmp(b.code.as_str())
                .then_with(|| {
                    a.line
                        .unwrap_or(usize::MAX)
                        .cmp(&b.line.unwrap_or(usize::MAX))
                })
                .then_with(|| a.subject.cmp(&b.subject))
                .then_with(|| a.message.cmp(&b.message))
        });
        LintReport { diags }
    }

    /// All findings in canonical order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// Error-severity findings in canonical order.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diags.iter().filter(|d| d.severity == Severity::Error)
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.errors().count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diags.len() - self.error_count()
    }

    /// True when the report holds no findings at all.
    pub fn is_clean(&self) -> bool {
        self.diags.is_empty()
    }

    /// True when the report should block a strict-mode consumer: any error,
    /// or any warning when `deny_warnings` is set.
    pub fn has_blocking(&self, deny_warnings: bool) -> bool {
        self.error_count() > 0 || (deny_warnings && !self.diags.is_empty())
    }

    /// True when any finding carries `code`.
    pub fn has_code(&self, code: Code) -> bool {
        self.diags.iter().any(|d| d.code == code)
    }

    /// Merges another report into this one, re-sorting.
    pub fn merge(self, other: LintReport) -> LintReport {
        let mut diags = self.diags;
        diags.extend(other.diags);
        LintReport::new(diags)
    }

    /// Renders the report for terminals: one block per finding plus a
    /// trailing summary line.
    pub fn render_human(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for d in &self.diags {
            let _ = writeln!(
                out,
                "{}[{}] {}: {}",
                d.severity, d.code, d.subject, d.message
            );
            let mut ctx = String::new();
            if let Some(line) = d.line {
                let _ = write!(ctx, "deck line {line}");
            }
            if !d.nodes.is_empty() {
                if !ctx.is_empty() {
                    ctx.push_str("; ");
                }
                let _ = write!(ctx, "nodes: {}", d.nodes.join(", "));
            }
            if !ctx.is_empty() {
                let _ = writeln!(out, "  at {ctx}");
            }
            let _ = writeln!(out, "  fix: {}", d.fix);
        }
        let _ = writeln!(out, "{}", self.summary());
        out
    }

    /// One-line `N error(s), M warning(s)` summary.
    pub fn summary(&self) -> String {
        if self.is_clean() {
            "lint: no diagnostics".to_owned()
        } else {
            format!(
                "lint: {} error(s), {} warning(s)",
                self.error_count(),
                self.warning_count()
            )
        }
    }

    /// Renders the report as a single-line JSON object. The encoder is
    /// hand-rolled (the workspace is offline; no serde) and escapes control
    /// characters, quotes, and backslashes per RFC 8259.
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"summary\":{{\"errors\":{},\"warnings\":{}}},\"diagnostics\":[",
            self.error_count(),
            self.warning_count()
        );
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"code\":{},\"severity\":{},\"subject\":{}",
                json_str(d.code.as_str()),
                json_str(d.severity.as_str()),
                json_str(&d.subject)
            );
            out.push_str(",\"nodes\":[");
            for (j, n) in d.nodes.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&json_str(n));
            }
            out.push(']');
            if let Some(line) = d.line {
                let _ = write!(out, ",\"line\":{line}");
            }
            let _ = write!(
                out,
                ",\"message\":{},\"fix\":{}}}",
                json_str(&d.message),
                json_str(&d.fix)
            );
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_human())
    }
}

/// Escapes a string as a JSON string literal, including the quotes.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
