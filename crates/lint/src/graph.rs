//! Small union-find used for DC-connectivity and voltage-source-cycle
//! analysis.

/// Disjoint-set forest over `0..n` with path halving and union by rank.
#[derive(Debug, Clone)]
pub(crate) struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Unions the sets holding `a` and `b`; returns false when they were
    /// already in the same set (i.e. the edge closes a cycle).
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn union_find_detects_cycles() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2)); // closes a cycle
        assert!(uf.union(2, 3));
        assert_eq!(uf.find(0), uf.find(3));
    }
}
