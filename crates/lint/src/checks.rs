//! Circuit-level checks: parameter domains, DC connectivity, and
//! structural singularity of the MNA system.

use std::collections::HashMap;

use pulsar_analog::{Circuit, Element, NodeId, Waveform};

use crate::diag::{Code, Diagnostic, LintReport};
use crate::graph::UnionFind;
use crate::matching::StampPattern;

/// Statically analyzes a circuit and returns every finding.
///
/// All checks are purely structural — nothing is factorized or solved:
///
/// * **Parameter domains** (`PL0001`–`PL0004`): resistor/capacitor values,
///   MOSFET geometry, and source-waveform domains.
/// * **Connectivity** (`PL0103`–`PL0105`): islands with no DC path to
///   ground (capacitor-only cutsets, current-source-fed nodes), fully
///   disconnected subgraphs, and MOSFET gates that are not statically
///   driven (unpinned side inputs).
/// * **Structural singularity** (`PL0101`/`PL0102`): shorted or duplicated
///   voltage sources whose zero pivot is guaranteed even in floating-point
///   arithmetic, voltage-source loops (singular in exact arithmetic; the
///   conservative verdict), and a bipartite-matching backstop on the
///   symbolic stamp pattern.
pub fn lint_circuit(ckt: &Circuit) -> LintReport {
    let mut diags = Vec::new();
    parameter_checks(ckt, &mut diags);
    connectivity_checks(ckt, &mut diags);
    structural_checks(ckt, &mut diags);
    LintReport::new(diags)
}

/// Positional label used until deck span mapping substitutes card names.
fn element_label(ei: usize, e: &Element) -> String {
    let kind = match e {
        Element::Resistor { .. } => "resistor",
        Element::Capacitor { .. } => "capacitor",
        Element::Vsource { .. } => "vsource",
        Element::Isource { .. } => "isource",
        Element::Mosfet(_) => "mosfet",
        _ => "element",
    };
    format!("{kind} #{ei}")
}

fn names(ckt: &Circuit, nodes: &[NodeId]) -> Vec<String> {
    nodes.iter().map(|&n| ckt.node_name(n).to_owned()).collect()
}

fn parameter_checks(ckt: &Circuit, diags: &mut Vec<Diagnostic>) {
    for (ei, e) in ckt.elements().iter().enumerate() {
        match e {
            Element::Resistor { a, b, ohms } if !(ohms.is_finite() && *ohms > 0.0) => {
                diags.push(
                    Diagnostic::new(
                        Code::ResistorValue,
                        element_label(ei, e),
                        format!("resistance must be finite and > 0, got {ohms}"),
                        "use a strictly positive, finite resistance",
                    )
                    .with_nodes(names(ckt, &[*a, *b]))
                    .with_element(ei),
                );
            }
            Element::Capacitor { a, b, farads } if !(farads.is_finite() && *farads >= 0.0) => {
                diags.push(
                    Diagnostic::new(
                        Code::CapacitorValue,
                        element_label(ei, e),
                        format!("capacitance must be finite and >= 0, got {farads}"),
                        "use a non-negative, finite capacitance",
                    )
                    .with_nodes(names(ckt, &[*a, *b]))
                    .with_element(ei),
                );
            }
            Element::Vsource { p, n, wave } | Element::Isource { p, n, wave } => {
                if let Some(issue) = waveform_issue(wave) {
                    diags.push(
                        Diagnostic::new(
                            Code::WaveformDomain,
                            element_label(ei, e),
                            issue,
                            "keep waveform levels finite and timing parameters non-negative",
                        )
                        .with_nodes(names(ckt, &[*p, *n]))
                        .with_element(ei),
                    );
                }
            }
            Element::Mosfet(m) => {
                if let Some(issue) = mosfet_issue(m) {
                    diags.push(
                        Diagnostic::new(
                            Code::MosfetGeometry,
                            element_label(ei, e),
                            issue,
                            "use finite W, L, KP > 0 and non-negative LAMBDA/CGS/CGD/CDB",
                        )
                        .with_nodes(names(ckt, &[m.d, m.g, m.s]))
                        .with_element(ei),
                    );
                }
            }
            _ => {}
        }
    }
}

/// Domain problem in a source waveform, if any.
fn waveform_issue(w: &Waveform) -> Option<String> {
    match w {
        Waveform::Dc(v) => (!v.is_finite()).then(|| format!("non-finite DC level {v}")),
        Waveform::Pulse {
            v1,
            v2,
            delay,
            rise,
            fall,
            width,
            period,
        } => {
            for (name, v) in [("v1", v1), ("v2", v2)] {
                if !v.is_finite() {
                    return Some(format!("non-finite pulse level {name}={v}"));
                }
            }
            for (name, v) in [("delay", delay), ("rise", rise), ("fall", fall)] {
                if !v.is_finite() {
                    return Some(format!("non-finite pulse timing {name}={v}"));
                }
                if *v < 0.0 {
                    return Some(format!("negative pulse timing {name}={v}"));
                }
            }
            // `width` may legitimately be +inf (a step); never negative/NaN.
            if width.is_nan() || *width < 0.0 {
                return Some(format!("pulse width must be >= 0, got {width}"));
            }
            if period.is_nan() || *period <= 0.0 {
                return Some(format!("pulse period must be > 0 (or +inf), got {period}"));
            }
            None
        }
        Waveform::Pwl(pts) => {
            if pts.is_empty() {
                return Some("empty PWL point list".to_owned());
            }
            for &(t, v) in pts {
                if !t.is_finite() || !v.is_finite() {
                    return Some(format!("non-finite PWL point ({t}, {v})"));
                }
            }
            if pts.windows(2).any(|w| w[1].0 < w[0].0) {
                return Some("PWL times must be non-decreasing".to_owned());
            }
            None
        }
    }
}

/// Domain problem in MOSFET geometry/model parameters, if any.
fn mosfet_issue(m: &pulsar_analog::Mosfet) -> Option<String> {
    let p = &m.params;
    for (name, v) in [("W", p.w), ("L", p.l), ("KP", p.kp)] {
        if !(v.is_finite() && v > 0.0) {
            return Some(format!("{name} must be finite and > 0, got {v}"));
        }
    }
    if !p.vt0.is_finite() {
        return Some(format!("VT0 must be finite, got {}", p.vt0));
    }
    for (name, v) in [
        ("LAMBDA", p.lambda),
        ("CGS", p.cgs),
        ("CGD", p.cgd),
        ("CDB", p.cdb),
    ] {
        if !(v.is_finite() && v >= 0.0) {
            return Some(format!("{name} must be finite and >= 0, got {v}"));
        }
    }
    None
}

fn connectivity_checks(ckt: &Circuit, diags: &mut Vec<Diagnostic>) {
    let n = ckt.node_count();
    // DC-conductive edges: resistors, voltage sources, MOSFET channels.
    let mut uf = UnionFind::new(n);
    // Weak (DC-open) couplings: capacitors, current sources, MOSFET gates.
    let mut weak_edges: Vec<(usize, usize)> = Vec::new();
    for e in ckt.elements() {
        match e {
            Element::Resistor { a, b, .. } => {
                uf.union(a.index(), b.index());
            }
            Element::Vsource { p, n, .. } => {
                uf.union(p.index(), n.index());
            }
            Element::Capacitor { a, b, .. } => weak_edges.push((a.index(), b.index())),
            Element::Isource { p, n, .. } => weak_edges.push((p.index(), n.index())),
            Element::Mosfet(m) => {
                uf.union(m.d.index(), m.s.index());
                weak_edges.push((m.g.index(), m.d.index()));
                weak_edges.push((m.g.index(), m.s.index()));
            }
            _ => {}
        }
    }

    let ground_root = uf.find(0);
    // Group floating nodes by component root, in node order. Non-ground
    // NodeIds come back from `nodes()` in index order (1-based).
    let node_ids = ckt.nodes();
    let mut islands: HashMap<usize, Vec<NodeId>> = HashMap::new();
    for idx in 1..n {
        let root = uf.find(idx);
        if root != ground_root {
            islands.entry(root).or_default().push(node_ids[idx - 1]);
        }
    }
    let mut roots: Vec<usize> = islands.keys().copied().collect();
    roots.sort_unstable();

    for root in roots {
        let members = &islands[&root];
        let weakly_coupled = weak_edges
            .iter()
            .any(|&(x, y)| (uf.find(x) == root) != (uf.find(y) == root));
        let shown = names(ckt, &members[..members.len().min(8)]);
        let summary = if members.len() > shown.len() {
            format!(
                "{} (+{} more)",
                shown.join(", "),
                members.len() - shown.len()
            )
        } else {
            shown.join(", ")
        };
        let (code, message, fix) = if weakly_coupled {
            (
                Code::NoDcPath,
                format!(
                    "{} node(s) have no DC path to ground ({summary}); they are coupled \
                     only through capacitors, current sources, or MOSFET gates, so their \
                     operating point is set by the solver's gmin floor, not the circuit",
                    members.len()
                ),
                "add a resistive or source path to ground (or accept the gmin artifact)",
            )
        } else {
            (
                Code::DisconnectedIsland,
                format!(
                    "{} node(s) form a fully disconnected island ({summary})",
                    members.len()
                ),
                "connect the island or remove the dead nodes",
            )
        };
        diags.push(
            Diagnostic::new(
                code,
                format!("island at {}", ckt.node_name(members[0])),
                message,
                fix,
            )
            .with_nodes(shown),
        );
    }

    // Undriven gates: the device's region is undefined if its gate's
    // DC-connected component cannot reach ground (an unpinned side input).
    for (ei, e) in ckt.elements().iter().enumerate() {
        if let Element::Mosfet(m) = e {
            if !m.g.is_ground() && uf.find(m.g.index()) != ground_root {
                diags.push(
                    Diagnostic::new(
                        Code::UndrivenGate,
                        element_label(ei, e),
                        format!(
                            "gate node {} is not statically driven (no DC path to ground); \
                             the device's operating region is an artifact of the gmin floor",
                            ckt.node_name(m.g)
                        ),
                        "pin the gate through a source or resistive divider",
                    )
                    .with_nodes(vec![ckt.node_name(m.g).to_owned()])
                    .with_element(ei),
                );
            }
        }
    }
}

fn structural_checks(ckt: &Circuit, diags: &mut Vec<Diagnostic>) {
    // Pass 1: voltage-source incidence structure. Dead branches and
    // duplicated node pairs are *float-guaranteed* zero pivots (PL0101):
    // the ±1 incidence entries cancel exactly, or the two branch rows stay
    // exact negations/copies of each other through elimination. A longer
    // loop (detected as a union-find cycle) is singular in exact
    // arithmetic, but rounding can hide the zero pivot, so it gets the
    // conservative code (PL0102).
    let mut uf = UnionFind::new(ckt.node_count());
    let mut seen_pairs: HashMap<(usize, usize), usize> = HashMap::new();
    let mut flagged = false;
    for (ei, e) in ckt.elements().iter().enumerate() {
        let Element::Vsource { p, n, .. } = e else {
            continue;
        };
        let (pi, ni) = (p.index(), n.index());
        if pi == ni {
            let message = if p.is_ground() {
                "voltage source with both terminals on ground: its branch row and column \
                 are empty, so LU factorization is guaranteed to hit a zero pivot"
                    .to_owned()
            } else {
                format!(
                    "voltage source shorted onto node {}: its incidence entries cancel \
                     exactly, so LU factorization is guaranteed to hit a zero pivot",
                    ckt.node_name(*p)
                )
            };
            diags.push(
                Diagnostic::new(
                    Code::StructuralSingular,
                    element_label(ei, e),
                    message,
                    "remove the source or connect it across two distinct nodes",
                )
                .with_nodes(names(ckt, &[*p, *n]))
                .with_element(ei),
            );
            flagged = true;
            continue;
        }
        let key = (pi.min(ni), pi.max(ni));
        if let Some(&first) = seen_pairs.get(&key) {
            diags.push(
                Diagnostic::new(
                    Code::StructuralSingular,
                    element_label(ei, e),
                    format!(
                        "voltage source duplicates element #{first} across nodes {} and {}: \
                         the two branch rows are exact copies (or negations), so LU \
                         factorization is guaranteed to hit a zero pivot",
                        ckt.node_name(*p),
                        ckt.node_name(*n)
                    ),
                    "merge the parallel sources into one",
                )
                .with_nodes(names(ckt, &[*p, *n]))
                .with_element(ei),
            );
            flagged = true;
            continue;
        }
        seen_pairs.insert(key, ei);
        if !uf.union(pi, ni) {
            diags.push(
                Diagnostic::new(
                    Code::VsourceLoop,
                    element_label(ei, e),
                    format!(
                        "voltage source closes a loop of voltage sources through nodes {} \
                         and {}: the MNA system is singular in exact arithmetic (rounding \
                         may or may not surface the zero pivot — conservative verdict)",
                        ckt.node_name(*p),
                        ckt.node_name(*n)
                    ),
                    "break the loop by removing one source or inserting series resistance",
                )
                .with_nodes(names(ckt, &[*p, *n]))
                .with_element(ei),
            );
            flagged = true;
        }
    }

    // Pass 2: bipartite-matching backstop on the symbolic stamp pattern.
    // The pattern over-approximates the true DC support (MOSFET entries may
    // vanish in cutoff) except for exactly-cancelling vsource incidences,
    // so a matching deficit implies structural rank < n and therefore
    // exact-arithmetic singularity. The vsource scan above already covers
    // every deficit this pattern can exhibit (a deficient branch-row set
    // violates Hall's condition, which forces a dead branch, a duplicated
    // pair, or a cycle), so this arm is belt-and-braces for patterns the
    // scan does not model.
    if !flagged {
        let pattern = StampPattern::build_dc(ckt);
        let unmatched = pattern.unmatched_rows();
        if !unmatched.is_empty() {
            diags.push(Diagnostic::new(
                Code::VsourceLoop,
                "mna pattern",
                format!(
                    "symbolic MNA stamp pattern is structurally rank-deficient: {} of {} \
                     rows cannot be matched to a column, so the system is singular in \
                     exact arithmetic",
                    unmatched.len(),
                    pattern.dim()
                ),
                "inspect the voltage-source topology; the system has no unique solution",
            ));
        }
    }
}
