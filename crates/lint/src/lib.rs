//! `pulsar-lint` — static netlist and path verification.
//!
//! Every study in this workspace hammers one MNA topology thousands of
//! times (Monte Carlo samples × resistance points × pulse widths). A deck
//! or path configuration that is *structurally* broken — a shorted voltage
//! source, a floating island, a pulse that outlives its transient window —
//! fails identically on every sample, yet without this crate it only
//! surfaces as a runtime `SingularMatrix` or a budget-exhausted campaign.
//! `pulsar-lint` finds those error classes before the first solve, purely
//! structurally: nothing here factorizes a matrix or integrates a
//! waveform.
//!
//! # Diagnostic code registry
//!
//! | Code | Severity | Meaning |
//! |------|----------|---------|
//! | `PL0001` | error | resistor value out of domain |
//! | `PL0002` | error | capacitor value out of domain |
//! | `PL0003` | error | MOSFET geometry/model out of domain |
//! | `PL0004` | error | source waveform out of domain |
//! | `PL0005` | error | malformed deck card |
//! | `PL0006` | error | invalid `.tran` step/stop |
//! | `PL0101` | error | structural singularity, float-guaranteed |
//! | `PL0102` | error | voltage-source loop (conservative verdict) |
//! | `PL0103` | warning | no DC path to ground (gmin-held island) |
//! | `PL0104` | warning | fully disconnected island |
//! | `PL0105` | warning | MOSFET gate not statically driven |
//! | `PL0201` | error | pulse completes after the transient window |
//! | `PL0202` | error | `stop/step` exceeds the step budget |
//! | `PL0203` | warning | threshold below the sensing floor |
//! | `PL0204` | warning | input width does not exceed the threshold |
//! | `PL0301` | error | fault resistance out of domain / empty sweep |
//! | `PL0302` | error | fault stage out of range |
//!
//! The singularity verdict is split in two on purpose. `PL0101` covers the
//! cases where the zero pivot survives floating-point elimination exactly
//! (cancelled ±1 incidence entries; duplicated branch rows), so flagged
//! decks *will* reproduce `SingularMatrix`. Longer voltage-source loops
//! are singular in exact arithmetic but rounding may hide the zero pivot;
//! they get the conservative `PL0102` so downstream tooling can decide how
//! hard to fail. The property tests in `tests/agreement.rs` hold the
//! crate to exactly this contract.
//!
//! # Example
//!
//! ```
//! use pulsar_lint::{lint_deck, Code};
//!
//! let report = lint_deck("title\nV1 a a DC 1.0\nR1 a 0 1k\n.end\n");
//! assert!(report.has_code(Code::StructuralSingular));
//! assert!(report.has_blocking(false));
//! ```

#![warn(missing_docs)]
// Library code must surface failures as typed errors or documented
// panics, never ad-hoc unwraps; #[cfg(test)] modules opt back in.
#![warn(clippy::unwrap_used)]

mod checks;
mod deck;
mod diag;
mod graph;
mod matching;
mod pulse;

pub use checks::lint_circuit;
pub use deck::{lint_deck, load_deck, LintOptions};
pub use diag::{Code, Diagnostic, LintReport, Severity};
pub use pulse::{lint_built_path, lint_pulse_test, PulseTestConfig};
