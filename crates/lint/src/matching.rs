//! Structural-rank verdict over the symbolic MNA stamp pattern.
//!
//! The *structural rank* (sprank) of a matrix pattern is the size of a
//! maximum matching between rows and columns of potentially-nonzero cells.
//! If sprank < n, **every** matrix with support contained in the pattern is
//! singular in exact arithmetic — so a matching deficit on a conservative
//! (superset) pattern is a sound singularity certificate for the real MNA
//! matrix.
//!
//! The pattern itself ([`StampPattern`]) is built by `pulsar-analog` next
//! to the stamping code it describes, and is the *same* object that drives
//! the sparse solver's symbolic factorization — one source of truth, so
//! the lint verdict and the solver's structural analysis can never drift
//! apart. Lint checks the DC pattern (capacitors and current sources
//! open): DC singularity is what PL0101/PL0102 certify. See the
//! `pulsar_analog::StampPattern` docs for the construction rules,
//! including the exact-cancellation refinement for voltage sources whose
//! terminals collapse to one MNA variable.

pub(crate) use pulsar_analog::StampPattern;

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use pulsar_analog::{Circuit, Waveform};

    #[test]
    fn healthy_divider_has_full_structural_rank() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource(a, Circuit::GROUND, Waveform::dc(1.0));
        ckt.resistor(a, b, 1e3);
        ckt.resistor(b, Circuit::GROUND, 1e3);
        let p = StampPattern::build_dc(&ckt);
        assert_eq!(p.dim(), 3);
        assert!(p.unmatched_rows().is_empty());
    }

    #[test]
    fn shorted_vsource_breaks_structural_rank() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource(a, a, Waveform::dc(1.0));
        ckt.resistor(a, Circuit::GROUND, 1e3);
        let p = StampPattern::build_dc(&ckt);
        // Branch row is empty: exactly one row cannot be matched.
        assert_eq!(p.unmatched_rows().len(), 1);
    }

    #[test]
    fn vsource_loop_breaks_structural_rank() {
        // Three sources forming a cycle through ground: their branch rows
        // span only two node columns.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource(a, Circuit::GROUND, Waveform::dc(1.0));
        ckt.vsource(b, Circuit::GROUND, Waveform::dc(0.5));
        ckt.vsource(a, b, Waveform::dc(0.5));
        ckt.resistor(a, Circuit::GROUND, 1e3);
        let p = StampPattern::build_dc(&ckt);
        assert_eq!(p.unmatched_rows().len(), 1);
    }

    #[test]
    fn floating_node_is_matched_by_gmin_diagonal() {
        // A capacitor-only node has no DC stamps, but the gmin floor keeps
        // its diagonal in the pattern: structurally nonsingular (the
        // connectivity pass, not the matching, reports it).
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource(a, Circuit::GROUND, Waveform::dc(1.0));
        ckt.capacitor(a, b, 1e-15);
        let p = StampPattern::build_dc(&ckt);
        assert!(p.unmatched_rows().is_empty());
    }
}
