//! Symbolic MNA stamp pattern and bipartite maximal matching.
//!
//! The *structural rank* (sprank) of a matrix pattern is the size of a
//! maximum matching between rows and columns of potentially-nonzero cells.
//! If sprank < n, **every** matrix with support contained in the pattern is
//! singular in exact arithmetic — so a matching deficit on a conservative
//! (superset) pattern is a sound singularity certificate for the real MNA
//! matrix.
//!
//! The pattern mirrors the DC assembly in `analog`'s MNA layer: the gmin
//! floor puts every node diagonal in the pattern unconditionally, resistors
//! stamp their 2×2 conductance block, voltage sources stamp ±1 incidence
//! pairs, and MOSFETs *may* stamp drain/source rows against the
//! drain/gate/source columns (cutoff devices stamp nothing, which is why
//! the MOSFET entries are an over-approximation — safe for the implication
//! above). Capacitors and current sources stamp nothing in DC. One
//! refinement keeps the superset exact where it matters: a voltage source
//! whose two terminals collapse to the same MNA variable accumulates
//! `+1 − 1 = 0` exactly, so it contributes *no* pattern entries — its empty
//! branch row/column is precisely what the matching must see.

use pulsar_analog::{Circuit, Element, NodeId};

/// Row-major sparsity pattern of the DC MNA system.
#[derive(Debug, Clone)]
pub(crate) struct StampPattern {
    /// `rows[r]` = columns that may hold a nonzero in row `r` (deduplicated).
    rows: Vec<Vec<usize>>,
}

/// MNA variable index of a node (ground has none).
fn var(node: NodeId) -> Option<usize> {
    if node.is_ground() {
        None
    } else {
        Some(node.index() - 1)
    }
}

impl StampPattern {
    /// Builds the DC pattern of `ckt`, including the gmin floor diagonal.
    pub fn build(ckt: &Circuit) -> Self {
        let nn = ckt.node_count() - 1;
        let nv = ckt
            .elements()
            .iter()
            .filter(|e| matches!(e, Element::Vsource { .. }))
            .count();
        let n = nn + nv;
        let mut rows: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut push = |r: usize, c: usize| {
            if !rows[r].contains(&c) {
                rows[r].push(c);
            }
        };
        for d in 0..nn {
            push(d, d);
        }
        let mut next_branch = nn;
        for e in ckt.elements() {
            match e {
                Element::Resistor { a, b, .. } => {
                    let (ia, ib) = (var(*a), var(*b));
                    if let Some(i) = ia {
                        push(i, i);
                    }
                    if let Some(j) = ib {
                        push(j, j);
                    }
                    if let (Some(i), Some(j)) = (ia, ib) {
                        push(i, j);
                        push(j, i);
                    }
                }
                Element::Vsource { p, n, .. } => {
                    let br = next_branch;
                    next_branch += 1;
                    // Same-variable terminals cancel exactly; see module doc.
                    if var(*p) != var(*n) {
                        if let Some(i) = var(*p) {
                            push(i, br);
                            push(br, i);
                        }
                        if let Some(j) = var(*n) {
                            push(j, br);
                            push(br, j);
                        }
                    }
                }
                Element::Mosfet(m) => {
                    // Drain and source rows may see the d/g/s columns; the
                    // gate row sees nothing (zero DC gate current).
                    let cols = [var(m.d), var(m.g), var(m.s)];
                    for row in [var(m.d), var(m.s)].into_iter().flatten() {
                        for col in cols.into_iter().flatten() {
                            push(row, col);
                        }
                    }
                }
                // Open in DC.
                Element::Capacitor { .. } | Element::Isource { .. } => {}
                _ => {}
            }
        }
        StampPattern { rows }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.rows.len()
    }

    /// Maximum row↔column matching via Kuhn's augmenting-path algorithm;
    /// returns the rows left unmatched (empty iff the pattern has full
    /// structural rank).
    pub fn unmatched_rows(&self) -> Vec<usize> {
        let n = self.dim();
        // col_match[c] = row currently matched to column c.
        let mut col_match: Vec<Option<usize>> = vec![None; n];
        let mut visited = vec![false; n];
        let mut unmatched = Vec::new();
        for r in 0..n {
            visited.fill(false);
            if !self.augment(r, &mut visited, &mut col_match) {
                unmatched.push(r);
            }
        }
        unmatched
    }

    fn augment(&self, r: usize, visited: &mut [bool], col_match: &mut [Option<usize>]) -> bool {
        for &c in &self.rows[r] {
            if visited[c] {
                continue;
            }
            visited[c] = true;
            if col_match[c].is_none()
                || self.augment(
                    match col_match[c] {
                        Some(prev) => prev,
                        None => unreachable!("guarded by is_none"),
                    },
                    visited,
                    col_match,
                )
            {
                col_match[c] = Some(r);
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use pulsar_analog::Waveform;

    #[test]
    fn healthy_divider_has_full_structural_rank() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource(a, Circuit::GROUND, Waveform::dc(1.0));
        ckt.resistor(a, b, 1e3);
        ckt.resistor(b, Circuit::GROUND, 1e3);
        let p = StampPattern::build(&ckt);
        assert_eq!(p.dim(), 3);
        assert!(p.unmatched_rows().is_empty());
    }

    #[test]
    fn shorted_vsource_breaks_structural_rank() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource(a, a, Waveform::dc(1.0));
        ckt.resistor(a, Circuit::GROUND, 1e3);
        let p = StampPattern::build(&ckt);
        // Branch row is empty: exactly one row cannot be matched.
        assert_eq!(p.unmatched_rows().len(), 1);
    }

    #[test]
    fn vsource_loop_breaks_structural_rank() {
        // Three sources forming a cycle through ground: their branch rows
        // span only two node columns.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource(a, Circuit::GROUND, Waveform::dc(1.0));
        ckt.vsource(b, Circuit::GROUND, Waveform::dc(0.5));
        ckt.vsource(a, b, Waveform::dc(0.5));
        ckt.resistor(a, Circuit::GROUND, 1e3);
        let p = StampPattern::build(&ckt);
        assert_eq!(p.unmatched_rows().len(), 1);
    }

    #[test]
    fn floating_node_is_matched_by_gmin_diagonal() {
        // A capacitor-only node has no DC stamps, but the gmin floor keeps
        // its diagonal in the pattern: structurally nonsingular (the
        // connectivity pass, not the matching, reports it).
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource(a, Circuit::GROUND, Waveform::dc(1.0));
        ckt.capacitor(a, b, 1e-15);
        let p = StampPattern::build(&ckt);
        assert!(p.unmatched_rows().is_empty());
    }
}
