//! Agreement between the lint verdict and the actual LU factorization.
//!
//! The contract under test (see the crate docs):
//!
//! * **No false negatives** — whenever the DC solve fails with
//!   [`pulsar_analog::Error::SingularMatrix`], the lint report carries
//!   `PL0101` or `PL0102`.
//! * **PL0101 is exact** — every deck flagged `PL0101` reproduces
//!   `SingularMatrix` when solved. The cancellation/duplication patterns
//!   behind `PL0101` survive IEEE-754 elimination bit-exactly, so the
//!   zero pivot is guaranteed, not merely likely.
//! * **PL0102 is conservative** — a `PL0102` loop or matching deficit is
//!   singular in exact arithmetic, but rounding may produce a tiny
//!   nonzero pivot instead of a clean failure. Decks flagged *only*
//!   `PL0102` are therefore allowed to solve either way; that documented
//!   false-positive channel is the price of never missing a real one.

#![allow(clippy::unwrap_used)]

use std::fs;
use std::path::PathBuf;

use proptest::prelude::*;
use pulsar_analog::{parse_deck, Circuit, Error, Waveform};
use pulsar_lint::{lint_circuit, lint_deck, Code};

fn corpus_decks() -> Vec<(PathBuf, String)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/lint_corpus");
    let mut decks: Vec<PathBuf> = fs::read_dir(dir)
        .expect("corpus directory")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "sp"))
        .collect();
    decks.sort();
    decks
        .into_iter()
        .map(|p| {
            let text = fs::read_to_string(&p).unwrap();
            (p, text)
        })
        .collect()
}

#[test]
fn corpus_verdicts_agree_with_the_solver() {
    let mut exercised_pl0101 = false;
    let mut exercised_clean = false;
    for (path, text) in corpus_decks() {
        let report = lint_deck(&text);
        let Ok(deck) = parse_deck(&text) else {
            // Unparsable decks are covered by PL0005; there is nothing
            // to solve.
            assert!(
                report.has_code(Code::MalformedCard),
                "{path:?}: parse failed without PL0005"
            );
            continue;
        };
        let dc = deck.circuit.dc_op();
        if report.has_code(Code::StructuralSingular) {
            // PL0101 is a float-level guarantee, not a heuristic.
            assert!(
                matches!(dc, Err(Error::SingularMatrix { .. })),
                "{path:?}: PL0101 deck did not reproduce SingularMatrix: {dc:?}"
            );
            exercised_pl0101 = true;
        } else if !report.has_code(Code::VsourceLoop) {
            // No structural finding at all: the solve must not be
            // singular. (PL0102-only decks are exempt — conservative.)
            assert!(
                !matches!(dc, Err(Error::SingularMatrix { .. })),
                "{path:?}: solver found a singularity the lint missed"
            );
        }
        if report.error_count() == 0 {
            // Lint-passing decks (warnings allowed) must DC-solve.
            assert!(dc.is_ok(), "{path:?}: lint-passing deck failed DC: {dc:?}");
            exercised_clean = true;
        }
    }
    assert!(exercised_pl0101, "corpus lost its PL0101 decks");
    assert!(exercised_clean, "corpus lost its lint-passing decks");
}

/// One randomly generated linear element.
#[derive(Debug, Clone, Copy)]
enum Elem {
    R(usize, usize, f64),
    C(usize, usize, f64),
    V(usize, usize, f64),
    I(usize, usize, f64),
}

fn build(nodes: usize, elems: &[Elem]) -> Circuit {
    let mut ckt = Circuit::new();
    let ids: Vec<_> = (0..nodes)
        .map(|i| {
            if i == 0 {
                Circuit::GROUND
            } else {
                ckt.node(format!("n{i}"))
            }
        })
        .collect();
    for e in elems {
        match *e {
            Elem::R(a, b, ohms) => {
                // The builder asserts on degenerate resistors; a two-
                // terminal element needs two distinct terminals anyway.
                if a != b {
                    ckt.resistor(ids[a], ids[b], ohms);
                }
            }
            Elem::C(a, b, f) => {
                if a != b {
                    ckt.capacitor(ids[a], ids[b], f);
                }
            }
            Elem::V(a, b, v) => {
                ckt.vsource(ids[a], ids[b], Waveform::dc(v));
            }
            Elem::I(a, b, v) => {
                ckt.isource(ids[a], ids[b], Waveform::dc(v));
            }
        }
    }
    ckt
}

fn elem_strategy(nodes: usize) -> BoxedStrategy<Elem> {
    let n = 0..nodes;
    prop_oneof![
        (n.clone(), 0..nodes, 1.0f64..1e6).prop_map(|(a, b, r)| Elem::R(a, b, r)),
        (n.clone(), 0..nodes, 1e-15f64..1e-9).prop_map(|(a, b, c)| Elem::C(a, b, c)),
        (n.clone(), 0..nodes, -2.0f64..2.0).prop_map(|(a, b, v)| Elem::V(a, b, v)),
        (n, 0..nodes, -1e-3f64..1e-3).prop_map(|(a, b, i)| Elem::I(a, b, i)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The two-sided contract on random linear circuits: the solver
    /// never fails singular without a structural finding, and PL0101
    /// always reproduces as a solver failure.
    #[test]
    fn structural_verdict_agrees_with_lu(
        nodes in 2usize..6,
        elems in proptest::collection::vec(elem_strategy(5), 1..8),
    ) {
        let elems: Vec<Elem> = elems; // bind before truncating node ids
        let ckt = build(nodes, &elems.iter().map(|e| clamp(*e, nodes)).collect::<Vec<_>>());
        let report = lint_circuit(&ckt);
        let dc = ckt.dc_op();
        let flagged = report.has_code(Code::StructuralSingular)
            || report.has_code(Code::VsourceLoop);
        if matches!(dc, Err(Error::SingularMatrix { .. })) {
            prop_assert!(
                flagged,
                "false negative: solver is singular, lint saw nothing\n{report}"
            );
        }
        if report.has_code(Code::StructuralSingular) {
            prop_assert!(
                matches!(dc, Err(Error::SingularMatrix { .. })),
                "PL0101 must be an exact verdict; solver said {dc:?}\n{report}"
            );
        }
    }
}

/// Folds generated node indices into the actual node count.
fn clamp(e: Elem, nodes: usize) -> Elem {
    match e {
        Elem::R(a, b, v) => Elem::R(a % nodes, b % nodes, v),
        Elem::C(a, b, v) => Elem::C(a % nodes, b % nodes, v),
        Elem::V(a, b, v) => Elem::V(a % nodes, b % nodes, v),
        Elem::I(a, b, v) => Elem::I(a % nodes, b % nodes, v),
    }
}
