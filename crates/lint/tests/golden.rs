//! Golden-file tests for the lint renderings over the broken-deck corpus
//! in `tests/lint_corpus/` (repository root).
//!
//! Every `<name>.sp` deck has `<name>.expected.txt` (human rendering) and
//! `<name>.expected.json` (JSON rendering) next to it. Regenerate with:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test -p pulsar-lint --test golden
//! ```

#![allow(clippy::unwrap_used)]

use std::fs;
use std::path::PathBuf;

use pulsar_lint::lint_deck;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/lint_corpus")
}

fn corpus_decks() -> Vec<PathBuf> {
    let mut decks: Vec<PathBuf> = fs::read_dir(corpus_dir())
        .expect("corpus directory")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "sp"))
        .collect();
    decks.sort();
    assert!(decks.len() >= 10, "corpus unexpectedly small: {decks:?}");
    decks
}

fn check_golden(rendered: &str, golden_path: &PathBuf) {
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        fs::write(golden_path, rendered).expect("write golden");
        return;
    }
    let expected = fs::read_to_string(golden_path).unwrap_or_else(|e| {
        panic!("missing golden {golden_path:?} ({e}); run with UPDATE_GOLDENS=1")
    });
    assert_eq!(
        rendered, expected,
        "rendering drifted from {golden_path:?}; rerun with UPDATE_GOLDENS=1 if intentional"
    );
}

#[test]
fn corpus_matches_goldens() {
    for deck in corpus_decks() {
        let report = lint_deck(&fs::read_to_string(&deck).unwrap());
        check_golden(&report.render_human(), &deck.with_extension("expected.txt"));
        let mut json = report.render_json();
        json.push('\n');
        check_golden(&json, &deck.with_extension("expected.json"));
    }
}

#[test]
fn corpus_decks_flag_their_seeded_defect() {
    use pulsar_lint::Code;
    let table: &[(&str, Code)] = &[
        ("clean_rc", Code::ResistorValue), // sentinel: clean deck asserted below
        ("shorted_vsource", Code::StructuralSingular),
        ("grounded_vsource", Code::StructuralSingular),
        ("parallel_vsources", Code::StructuralSingular),
        ("antiparallel_vsources", Code::StructuralSingular),
        ("vsource_loop3", Code::VsourceLoop),
        ("floating_cap_island", Code::NoDcPath),
        ("disconnected_island", Code::DisconnectedIsland),
        ("undriven_gate", Code::UndrivenGate),
        ("negative_pulse_width", Code::WaveformDomain),
        ("step_budget", Code::StepBudget),
        ("bad_mos_geometry", Code::MosfetGeometry),
        ("malformed_card", Code::MalformedCard),
        ("pulse_exceeds_window", Code::PulseExceedsWindow),
    ];
    for (stem, code) in table {
        let path = corpus_dir().join(format!("{stem}.sp"));
        let report = lint_deck(&fs::read_to_string(&path).unwrap());
        if *stem == "clean_rc" {
            assert!(report.is_clean(), "clean_rc must lint clean: {report}");
        } else {
            assert!(
                report.has_code(*code),
                "{stem} must flag {code:?}: {report}"
            );
        }
    }
}

#[test]
fn rendering_is_deterministic_across_runs_and_threads() {
    let decks = corpus_decks();
    let baseline: Vec<(String, String)> = decks
        .iter()
        .map(|p| {
            let r = lint_deck(&fs::read_to_string(p).unwrap());
            (r.render_human(), r.render_json())
        })
        .collect();

    // Repeated in-thread runs.
    for _ in 0..3 {
        for (p, base) in decks.iter().zip(&baseline) {
            let r = lint_deck(&fs::read_to_string(p).unwrap());
            assert_eq!((r.render_human(), r.render_json()), *base);
        }
    }

    // Concurrent runs: same bytes from every thread.
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let decks = decks.clone();
            std::thread::spawn(move || {
                decks
                    .iter()
                    .map(|p| {
                        let r = lint_deck(&fs::read_to_string(p).unwrap());
                        (r.render_human(), r.render_json())
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().unwrap(), baseline);
    }
}
