//! Batched Monte Carlo transient evaluation.
//!
//! A Monte Carlo study solves K perturbed instances of *one* circuit
//! topology: the element list, node ordering, and stamp layout are shared;
//! only parameter values (device widths, the swept resistance, the input
//! pulse scale) differ. The scalar engine pays the full element-walk
//! dispatch, hoist, and step-loop scaffolding K times over. The
//! [`BatchWorkspace`] amortizes that shared structure: it advances K
//! *lanes* in lockstep — one element walk hoists per-lane values into flat
//! structure-of-arrays buffers, one assembly walk per Newton iteration
//! stamps every still-unconverged lane, and K RHS columns are carried
//! side by side — while every per-lane floating-point operation is
//! performed by the *same* code, in the *same* order, as the scalar
//! engine ([`dense_stamp_g`]/[`dense_stamp_i`]/[`dense_stamp_mosfet`]/
//! [`hoist_companion`] are shared, not duplicated), so a lane that runs
//! to completion is bit-identical to its scalar run by construction.
//!
//! ## Ejection
//!
//! The batch loop never constructs an error. Any event that would deviate
//! from the clean fast path — a Newton solve that fails to converge or
//! hits a singular pivot (the scalar engine would retry at half step), a
//! tripped cancellation token, an exhausted step budget, an adaptive or
//! otherwise unbatchable configuration, a sparse-engine circuit, a lane
//! whose topology differs from lane 0 — *ejects* the lane:
//! [`BatchOutcome::Ejected`] tells the caller to re-run that sample on
//! the scalar path from attempt 1. The scalar re-run reproduces the PR 1
//! retry/escalation ladder and the PR 6 cancellation semantics exactly,
//! because it IS the scalar path. An ejected lane's partial batch work
//! remains on its recorder — the sample genuinely spent it — which the
//! per-sample journal reports as honest spend on top of the scalar
//! re-run.
//!
//! ## Counter attribution
//!
//! Batched work is attributed per *instance*, never per pass: each lane's
//! recorder (and the process-wide registry behind the deprecated
//! `solver_counters()` shim) receives `DenseSolves`, `DenseIterations`,
//! `NewtonIterations`, and `StepsAccepted` exactly as its scalar run
//! would, plus `BatchedLaneSolves` marking work done inside the batch
//! engine and `BatchEjections` on ejection. Phase spans are entered per
//! lane, so span *counts* match the scalar run; span wall-clock overlaps
//! across lanes sharing the pass and is attributed to each (documented in
//! DESIGN.md §5.7).

use crate::analysis::transient::{
    collect_breakpoints, Integrator, TraceCapture, TranConfig, TranResult, TranStats,
};
use crate::circuit::{Circuit, NodeId};
use crate::elements::Element;
use crate::solver::matrix::DenseMatrix;
use crate::solver::mna::{
    branch_var, collect_cap_branches, dense_solve_done, dense_stamp_g, dense_stamp_i,
    dense_stamp_mosfet, dense_var, hoist_companion, mos_bulk, CapState, Method, GMIN_FLOOR,
    MOS_CAPS, RELTOL, VNTOL, VSTEP_LIMIT,
};
use crate::solver::sparse::global_recorder;
use crate::solver::workspace::{force_dense_env, SolverMode, SolverWorkspace, SPARSE_CROSSOVER};
use pulsar_obs::{CancelToken, Counter, Phase, Recorder};

/// One Monte Carlo instance offered to the batch engine: the perturbed
/// circuit plus the workspace its scalar run would use (source of the
/// per-lane recorder, cancellation token, solver mode, and DC warm-start
/// state).
pub struct BatchLane<'a> {
    /// The perturbed circuit instance.
    pub ckt: &'a Circuit,
    /// The workspace the scalar path would run this instance with.
    pub ws: &'a mut SolverWorkspace,
    /// The transient configuration the scalar path would run with.
    /// `stop` may differ per lane (the study scales each sample's input
    /// pulse, and the stop time tracks it); every other field must match
    /// lane 0's or the lane ejects.
    pub cfg: TranConfig,
}

/// Per-lane result of a batched transient run.
#[derive(Debug)]
pub enum BatchOutcome {
    /// The lane ran to completion; the result is bit-identical to the
    /// scalar run of the same instance.
    Done(TranResult),
    /// The lane left the clean fast path (Newton failure, cancellation,
    /// budget, unbatchable configuration/topology). Re-run the sample on
    /// the scalar path from attempt 1; no partial result is returned.
    Ejected,
}

impl BatchOutcome {
    /// True for [`BatchOutcome::Done`].
    pub fn is_done(&self) -> bool {
        matches!(self, BatchOutcome::Done(_))
    }
}

/// Per-lane progress through the lockstep loop.
#[derive(Clone, Copy, PartialEq, Eq)]
enum LaneState {
    /// Stepping.
    Active,
    /// Reached the lane's `cfg.stop`; result pieces are complete.
    Finished,
    /// Left the fast path; the caller re-runs this lane scalar.
    Ejected,
}

/// Per-lane mutable state that has no batched (SoA) layout: the solution
/// double-buffers, companion states, recorded samples, and step-loop
/// bookkeeping.
struct LaneCtl {
    state: LaneState,
    /// The lane's stop time — the one `TranConfig` field allowed to vary
    /// across lanes.
    stop: f64,
    x: Vec<f64>,
    xn: Vec<f64>,
    caps: Vec<CapState>,
    breakpoints: Vec<f64>,
    next_bp: usize,
    t: f64,
    after_discontinuity: bool,
    times: Vec<f64>,
    voltages: Vec<Vec<f64>>,
    rec: Recorder,
    cancel: Option<CancelToken>,
    /// Step-loop span held for the lane's whole run (RAII; dropped when
    /// the control block is dropped at the end of `transient_batch`).
    _loop_span: Option<pulsar_obs::Span>,
    /// Scratch for the current solve: target time and companion step.
    sub_t: f64,
    h: f64,
    hit_bp: bool,
    method: Method,
    /// Newton iterations spent in the current solve.
    iters: u64,
    /// Converged in the current solve (frozen out of later iterations).
    solved: bool,
    /// `(h.to_bits(), method)` the lane's `cap_geq` row was computed for.
    cap_geq_key: Option<(u64, Method)>,
}

impl LaneCtl {
    fn record(&mut self, t: f64, captured: &Option<Vec<NodeId>>) {
        self.times.push(t);
        match captured {
            None => {
                for (n, column) in self.voltages.iter_mut().enumerate() {
                    column.push(match dense_var(NodeId(n)) {
                        Some(i) => self.x[i],
                        None => 0.0,
                    });
                }
            }
            Some(cols) => {
                for (&node, column) in cols.iter().zip(self.voltages.iter_mut()) {
                    column.push(match dense_var(node) {
                        Some(i) => self.x[i],
                        None => 0.0,
                    });
                }
            }
        }
    }

    fn eject(&mut self) {
        self.state = LaneState::Ejected;
        global_recorder().add(Counter::BatchEjections, 1);
        self.rec.add(Counter::BatchEjections, 1);
    }
}

/// Per-lane solution and bookkeeping buffers recycled across batch
/// calls: the DC seed / Newton double-buffers, companion states, and
/// breakpoint list. The trace buffers (`times`/`voltages`) move into
/// the returned [`TranResult`] and cannot be pooled.
#[derive(Debug, Default)]
struct LaneScratch {
    x: Vec<f64>,
    xn: Vec<f64>,
    caps: Vec<CapState>,
    breakpoints: Vec<f64>,
}

/// Structure-of-arrays scratch for batched transient runs.
///
/// Owns the flat per-`(element, lane)` hoisted-value buffers, the K
/// dense matrices, and the K RHS/Newton columns. Reusable across calls;
/// buffers are resized on entry.
#[derive(Debug, Default)]
pub struct BatchWorkspace {
    /// Hoisted per-element values, `[lane * ne + ei]`: `1/R`, scaled
    /// source values at the lane's target time. Lane-major so every
    /// walk — hoist, assembly, accept — streams one lane's row
    /// contiguously while that lane's matrix is hot.
    elem_val: Vec<f64>,
    /// Companion conductances, `[lane * ncaps + cap]`.
    cap_geq: Vec<f64>,
    /// Companion history currents, `[lane * ncaps + cap]`.
    cap_ieq: Vec<f64>,
    /// K RHS columns, `[lane * nu ..][.. nu]`.
    rhs: Vec<f64>,
    /// K Newton-update columns, same layout.
    newton: Vec<f64>,
    /// One dense MNA matrix per lane.
    matrices: Vec<DenseMatrix>,
    /// Element index → branch-current unknown, shared across lanes
    /// (identical topology).
    branch_index: Vec<Option<usize>>,
    /// Capacitive branches of the reference topology (node pairs are
    /// shared across lanes; the per-lane `farads` is re-read per lane).
    cap_branches: Vec<(NodeId, NodeId, f64)>,
    /// Element index → first capacitive slot of that element, shared
    /// across lanes (the prefix count `assemble_fast` tracks as
    /// `cap_idx`).
    cap_slot: Vec<usize>,
    /// Retired per-lane buffers, recycled by the next call so a
    /// steady-state sweep allocates no per-lane scratch.
    lane_pool: Vec<LaneScratch>,
}

impl BatchWorkspace {
    /// Creates an empty batch workspace; buffers are allocated on first
    /// use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs the transient analysis of every lane in lockstep, returning
    /// one [`BatchOutcome`] per lane in order.
    ///
    /// A lane that completes is bit-identical to
    /// [`Circuit::transient_with`] on the same circuit/workspace; a lane
    /// that cannot stay on the clean dense fast path is ejected for a
    /// scalar re-run (see the module docs for the ejection rules).
    ///
    /// # Panics
    ///
    /// Panics if `capture` names a node that does not belong to the
    /// lanes' circuits — same contract as [`Circuit::transient_with`].
    pub fn transient_batch(
        &mut self,
        lanes: &mut [BatchLane<'_>],
        capture: &TraceCapture,
    ) -> Vec<BatchOutcome> {
        let k = lanes.len();
        if k == 0 {
            return Vec::new();
        }

        // Reference topology and configuration from lane 0; the shared
        // walks are driven by the reference config's step/integrator/
        // Newton budget, so lanes differing in those fields eject (see
        // `batchable`). Only `stop` may vary per lane.
        let ref_cfg = lanes[0].cfg.clone();
        let ref_ckt: &Circuit = lanes[0].ckt;
        let nn = ref_ckt.node_count() - 1;
        let ne = ref_ckt.elements().len();
        self.branch_index.clear();
        self.branch_index.resize(ne, None);
        let mut next = nn;
        let mut ncaps = 0usize;
        for (i, e) in ref_ckt.elements().iter().enumerate() {
            match e {
                Element::Vsource { .. } => {
                    self.branch_index[i] = Some(next);
                    next += 1;
                }
                Element::Capacitor { .. } => ncaps += 1,
                Element::Mosfet(_) => ncaps += MOS_CAPS,
                _ => {}
            }
        }
        let nu = next;
        self.cap_slot.clear();
        self.cap_slot.resize(ne, 0);
        let mut cs = 0usize;
        for (i, e) in ref_ckt.elements().iter().enumerate() {
            self.cap_slot[i] = cs;
            match e {
                Element::Capacitor { .. } => cs += 1,
                Element::Mosfet(_) => cs += MOS_CAPS,
                _ => {}
            }
        }

        // Resolve the capture policy once (identical topology ⇒ shared).
        let captured: Option<Vec<NodeId>> = match capture {
            TraceCapture::All => None,
            TraceCapture::Nodes(nodes) => {
                let mut cols: Vec<NodeId> = Vec::with_capacity(nodes.len());
                for &n in nodes {
                    assert!(
                        n.index() < ref_ckt.node_count(),
                        "TraceCapture names node {} but the circuit has {} nodes",
                        n.index(),
                        ref_ckt.node_count()
                    );
                    if !cols.contains(&n) {
                        cols.push(n);
                    }
                }
                Some(cols)
            }
        };
        let ncols = captured.as_ref().map_or(ref_ckt.node_count(), Vec::len);

        collect_cap_branches(ref_ckt, &mut self.cap_branches);

        // SoA buffers.
        self.elem_val.clear();
        self.elem_val.resize(ne * k, 0.0);
        self.cap_geq.clear();
        self.cap_geq.resize(ncaps * k, 0.0);
        self.cap_ieq.clear();
        self.cap_ieq.resize(ncaps * k, 0.0);
        self.rhs.clear();
        self.rhs.resize(nu * k, 0.0);
        self.newton.clear();
        self.newton.resize(nu * k, 0.0);
        self.matrices.resize_with(k, DenseMatrix::default);
        for m in &mut self.matrices {
            m.reset(nu);
        }

        // Per-lane setup: batchability checks, DC seed, companion states.
        let mut ctl: Vec<LaneCtl> = Vec::with_capacity(k);
        for lane in lanes.iter_mut() {
            let rec = lane.ws.sys.recorder.clone();
            let cancel = lane.ws.sys.cancel.clone();
            let batchable = batchable(lane.ckt, ref_ckt, lane.ws, nu, &lane.cfg, &ref_cfg);
            let capacity = if batchable {
                (lane.cfg.stop / lane.cfg.step) as usize + 2
            } else {
                0
            };
            // Recycled buffers: every consumer below clears or
            // re-sizes-with-fill before reading, so stale contents from a
            // previous batch cannot leak into this lane.
            let scratch = self.lane_pool.pop().unwrap_or_default();
            let mut c = LaneCtl {
                state: LaneState::Active,
                stop: lane.cfg.stop,
                x: scratch.x,
                xn: scratch.xn,
                caps: scratch.caps,
                breakpoints: scratch.breakpoints,
                next_bp: 0,
                t: 0.0,
                after_discontinuity: true,
                // hot-path: per-lane setup, runs once per batch before
                // the step loop; sized up front so the step loop itself
                // never reallocates.
                times: Vec::with_capacity(capacity),
                voltages: vec![Vec::with_capacity(capacity); ncols], // hot-path: see above

                rec,
                cancel,
                _loop_span: None,
                sub_t: 0.0,
                h: 0.0,
                hit_bp: false,
                method: Method::BackwardEuler,
                iters: 0,
                solved: false,
                cap_geq_key: None,
            };
            if !batchable {
                c.eject();
                ctl.push(c);
                continue;
            }
            // DC operating point through the lane's own workspace — the
            // very call the scalar engine makes, warm-start state
            // included, so the seed is bit-identical.
            let warm = if lane.ws.warm_dc {
                Some(&mut lane.ws.warm_x)
            } else {
                None
            };
            if lane
                .ckt
                .dc_into(0.0, &mut lane.ws.sys, warm, &mut c.x)
                .is_err()
            {
                c.eject();
                ctl.push(c);
                continue;
            }
            c.xn.clear();
            c.xn.resize(nu, 0.0);
            c.caps.clear();
            c.caps
                .extend(self.cap_branches.iter().map(|&(a, b, _)| CapState {
                    v_prev: volt(&c.x, a) - volt(&c.x, b),
                    i_prev: 0.0,
                }));
            collect_breakpoints(lane.ckt, lane.cfg.stop, &mut c.breakpoints);
            c.record(0.0, &captured);
            c._loop_span = Some(c.rec.span(Phase::TransientStepLoop));
            ctl.push(c);
        }

        // Lockstep step loop: one pass per step index; lanes advance at
        // their own simulation times but share every walk. The span
        // buffer outlives the loop: one allocation for the whole run,
        // not one per step.
        let mut spans: Vec<Option<pulsar_obs::Span>> = Vec::with_capacity(k);
        while ctl.iter().any(|c| c.state == LaneState::Active) {
            // Per-lane step admission: budget, cancellation, targeting.
            for c in ctl.iter_mut() {
                if c.state != LaneState::Active {
                    continue;
                }
                if c.times.len() >= ref_cfg.max_points {
                    c.eject();
                    continue;
                }
                if let Some(token) = &c.cancel {
                    if token.cancelled().is_some() {
                        c.eject();
                        continue;
                    }
                }
                // Next target time: current step, clipped to
                // breakpoint/stop — the scalar engine's arithmetic.
                let mut tn = c.t + ref_cfg.step;
                c.hit_bp = false;
                while c.next_bp < c.breakpoints.len() && c.breakpoints[c.next_bp] <= c.t + 1e-18 {
                    c.next_bp += 1;
                }
                if c.next_bp < c.breakpoints.len() && c.breakpoints[c.next_bp] < tn - 1e-18 {
                    tn = c.breakpoints[c.next_bp];
                    c.hit_bp = true;
                }
                if tn > c.stop {
                    tn = c.stop;
                }
                c.method = match ref_cfg.integrator {
                    Integrator::BackwardEuler => Method::BackwardEuler,
                    Integrator::Trapezoidal => {
                        if c.after_discontinuity {
                            Method::BackwardEuler
                        } else {
                            Method::Trapezoidal
                        }
                    }
                };
                c.sub_t = tn;
                c.h = tn - c.t;
                c.xn.copy_from_slice(&c.x);
                c.iters = 0;
                c.solved = false;
            }

            // Hoist walk: one pass over the slot table fills every active
            // lane's SoA row with exactly the scalar hoist expressions.
            // Lane-major rows: each lane's writes are contiguous.
            spans.clear();
            for (li, c) in ctl.iter_mut().enumerate() {
                if c.state != LaneState::Active {
                    spans.push(None);
                    continue;
                }
                spans.push(Some(c.rec.span(Phase::NewtonSolve)));
                let key = (c.h.to_bits(), c.method);
                let refresh = c.cap_geq_key != Some(key);
                if refresh {
                    c.cap_geq_key = Some(key);
                }
                let ev = li * ne;
                let cb = li * ncaps;
                let mut cap_idx = 0usize;
                for (ei, e) in lanes[li].ckt.elements().iter().enumerate() {
                    match e {
                        Element::Resistor { ohms, .. } => {
                            self.elem_val[ev + ei] = 1.0 / ohms;
                        }
                        Element::Vsource { wave, .. } | Element::Isource { wave, .. } => {
                            self.elem_val[ev + ei] = wave.value_at(c.sub_t);
                        }
                        Element::Capacitor { farads, .. } => {
                            hoist_companion(
                                &mut self.cap_geq,
                                &mut self.cap_ieq,
                                cb + cap_idx,
                                *farads,
                                c.h,
                                c.method,
                                c.caps[cap_idx],
                                refresh,
                            );
                            cap_idx += 1;
                        }
                        Element::Mosfet(m) => {
                            for (j, cap) in [m.params.cgs, m.params.cgd, m.params.cdb]
                                .into_iter()
                                .enumerate()
                            {
                                hoist_companion(
                                    &mut self.cap_geq,
                                    &mut self.cap_ieq,
                                    cb + cap_idx + j,
                                    cap,
                                    c.h,
                                    c.method,
                                    c.caps[cap_idx + j],
                                    refresh,
                                );
                            }
                            cap_idx += MOS_CAPS;
                        }
                    }
                }
                // Per-instance attribution, exactly as the scalar dense
                // solve books itself at entry.
                global_recorder().add(Counter::DenseSolves, 1);
                c.rec.add(Counter::DenseSolves, 1);
                global_recorder().add(Counter::BatchedLaneSolves, 1);
                c.rec.add(Counter::BatchedLaneSolves, 1);
            }

            // Newton iterations in lockstep with per-lane convergence
            // masks: one assembly walk per iteration stamps every lane
            // still solving.
            for iter in 0..ref_cfg.max_newton {
                let mut any = false;
                for c in ctl.iter_mut() {
                    if c.state == LaneState::Active && !c.solved {
                        any = true;
                        c.iters += 1;
                    }
                }
                if !any {
                    break;
                }

                // Assembly walk: one lane at a time, clear + gmin floor +
                // the full element walk while the lane's matrix, RHS
                // column, and hoisted rows stay hot — structurally the
                // scalar `assemble_fast`. A stamp error is unreachable
                // with the layout built above; the typed escape keeps
                // the batch loop panic-free on bookkeeping.
                for (li, c) in ctl.iter().enumerate() {
                    if c.state != LaneState::Active || c.solved {
                        continue;
                    }
                    let _ = self.stamp_lane(li, nu, nn, ne, ncaps, lanes[li].ckt, &c.xn);
                }

                // Per-lane linear solve + damped update + convergence.
                for (li, c) in ctl.iter_mut().enumerate() {
                    if c.state != LaneState::Active || c.solved {
                        continue;
                    }
                    let col = &self.rhs[li * nu..(li + 1) * nu];
                    let newton = &mut self.newton[li * nu..(li + 1) * nu];
                    newton.copy_from_slice(col);
                    if self.matrices[li].solve_in_place(newton).is_err() {
                        // Scalar would return SingularMatrix here; the
                        // re-run reproduces it.
                        dense_solve_done(&c.rec, c.iters);
                        spans[li] = None;
                        c.eject();
                        continue;
                    }
                    let mut converged = true;
                    for (i, &nw) in newton.iter().enumerate() {
                        let mut delta = nw - c.xn[i];
                        if i < nn {
                            if delta > VSTEP_LIMIT {
                                delta = VSTEP_LIMIT;
                                converged = false;
                            } else if delta < -VSTEP_LIMIT {
                                delta = -VSTEP_LIMIT;
                                converged = false;
                            }
                            if delta.abs() > VNTOL + RELTOL * c.xn[i].abs() {
                                converged = false;
                            }
                        }
                        c.xn[i] += delta;
                    }
                    if converged && iter > 0 {
                        c.solved = true;
                        dense_solve_done(&c.rec, c.iters);
                        spans[li] = None;
                    }
                }
            }

            // Lanes that exhausted the iteration budget: the scalar
            // engine would retry at half step — eject for the re-run.
            for (li, c) in ctl.iter_mut().enumerate() {
                if c.state == LaneState::Active && !c.solved {
                    dense_solve_done(&c.rec, c.iters);
                    spans[li] = None;
                    c.eject();
                }
            }
            // All per-lane solve spans are closed by now (solve, eject,
            // or budget exhaustion); clear for the next step.
            spans.clear();

            // Accept the step on every lane that solved.
            for (li, c) in ctl.iter_mut().enumerate() {
                if c.state != LaneState::Active {
                    continue;
                }
                for (ci, (st, &(a, b, _))) in
                    c.caps.iter_mut().zip(self.cap_branches.iter()).enumerate()
                {
                    let geq = self.cap_geq[li * ncaps + ci];
                    let v_now = volt(&c.xn, a) - volt(&c.xn, b);
                    let i_now = match c.method {
                        Method::BackwardEuler => geq * (v_now - st.v_prev),
                        Method::Trapezoidal => geq * (v_now - st.v_prev) - st.i_prev,
                    };
                    st.v_prev = v_now;
                    st.i_prev = i_now;
                }
                core::mem::swap(&mut c.x, &mut c.xn);
                c.t = c.sub_t;
                let t = c.t;
                c.record(t, &captured);
                c.rec.add(Counter::StepsAccepted, 1);
                // sub_t == tn always (no step halving in the batch loop),
                // so the scalar `(sub_t - tn).abs() < 1e-18` guard is
                // identically true.
                c.after_discontinuity = c.hit_bp;
                if c.t >= c.stop - 1e-18 {
                    c.state = LaneState::Finished;
                }
            }
        }

        ctl.into_iter()
            .map(|mut c| {
                // Retire the lane's pooled buffers for the next call.
                self.lane_pool.push(LaneScratch {
                    x: core::mem::take(&mut c.x),
                    xn: core::mem::take(&mut c.xn),
                    caps: core::mem::take(&mut c.caps),
                    breakpoints: core::mem::take(&mut c.breakpoints),
                });
                match c.state {
                    LaneState::Finished => {
                        let stats = TranStats {
                            accepted_points: c.times.len(),
                            ..TranStats::default()
                        };
                        BatchOutcome::Done(TranResult::from_parts(
                            core::mem::take(&mut c.times),
                            core::mem::take(&mut c.voltages),
                            captured.clone(),
                            stats,
                        ))
                    }
                    _ => BatchOutcome::Ejected,
                }
            })
            .collect()
    }

    /// Assembles lane `li`'s MNA system about its candidate solution
    /// `xn`: clear, gmin floor, then one element walk stamping the
    /// lane's hoisted SoA rows — structurally the scalar
    /// `assemble_fast`, with the lane's matrix, RHS column, and
    /// lane-major value rows resolved once and kept hot for the whole
    /// walk. Per-lane stamping order (and therefore every rounding
    /// step) is identical to the scalar engine's.
    #[allow(clippy::too_many_arguments)] // pre-resolved dims, one call site
    fn stamp_lane(
        &mut self,
        li: usize,
        nu: usize,
        nn: usize,
        ne: usize,
        ncaps: usize,
        ckt: &Circuit,
        xn: &[f64],
    ) -> Result<(), crate::error::Error> {
        let matrix = &mut self.matrices[li];
        let rhs = &mut self.rhs[li * nu..(li + 1) * nu];
        let ev = &self.elem_val[li * ne..(li + 1) * ne];
        let geq = &self.cap_geq[li * ncaps..(li + 1) * ncaps];
        let ieq = &self.cap_ieq[li * ncaps..(li + 1) * ncaps];
        matrix.clear();
        rhs.fill(0.0);
        for n in 0..nn {
            matrix.add(n, n, GMIN_FLOOR);
        }
        for (ei, e) in ckt.elements().iter().enumerate() {
            match e {
                Element::Resistor { a, b, .. } => {
                    dense_stamp_g(matrix, *a, *b, ev[ei]);
                }
                Element::Capacitor { a, b, .. } => {
                    let ci = self.cap_slot[ei];
                    dense_stamp_g(matrix, *a, *b, geq[ci]);
                    dense_stamp_i(rhs, *a, *b, ieq[ci]);
                }
                Element::Vsource { p, n, .. } => {
                    let br = branch_var(&self.branch_index, ei)?;
                    if let Some(i) = dense_var(*p) {
                        matrix.add(i, br, 1.0);
                        matrix.add(br, i, 1.0);
                    }
                    if let Some(j) = dense_var(*n) {
                        matrix.add(j, br, -1.0);
                        matrix.add(br, j, -1.0);
                    }
                    rhs[br] = ev[ei];
                }
                Element::Isource { p, n, .. } => {
                    dense_stamp_i(rhs, *p, *n, ev[ei]);
                }
                Element::Mosfet(m) => {
                    dense_stamp_mosfet(matrix, rhs, m, xn);
                    let ci = self.cap_slot[ei];
                    let caps = [
                        (m.g, m.s, m.params.cgs),
                        (m.g, m.d, m.params.cgd),
                        (m.d, mos_bulk(m), m.params.cdb),
                    ];
                    for (j, (a, b, cv)) in caps.into_iter().enumerate() {
                        if cv > 0.0 {
                            dense_stamp_g(matrix, a, b, geq[ci + j]);
                            dense_stamp_i(rhs, a, b, ieq[ci + j]);
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// A lane is batchable when its scalar run would take the clean dense
/// fast path: identical topology to the reference lane, no sparse-engine
/// engagement (different elimination order ⇒ different rounding), a
/// valid non-adaptive configuration agreeing with the reference lane's
/// in every field the shared walks are driven by (`stop` alone may
/// differ per lane), and no state that changes the step loop's control
/// flow.
fn batchable(
    ckt: &Circuit,
    ref_ckt: &Circuit,
    ws: &SolverWorkspace,
    nu: usize,
    cfg: &TranConfig,
    ref_cfg: &TranConfig,
) -> bool {
    // Adaptive stepping re-plans each lane's step size independently (no
    // lockstep), and an invalid config must surface the scalar engine's
    // exact error — both leave the fast path.
    if cfg.adaptive
        || cfg.validate().is_err()
        || cfg.step != ref_cfg.step
        || cfg.integrator != ref_cfg.integrator
        || cfg.max_newton != ref_cfg.max_newton
        || cfg.max_points != ref_cfg.max_points
    {
        return false;
    }
    if ckt.node_count() != ref_ckt.node_count() || ckt.elements().len() != ref_ckt.elements().len()
    {
        return false;
    }
    for (a, b) in ckt.elements().iter().zip(ref_ckt.elements().iter()) {
        let same = match (a, b) {
            (Element::Resistor { a: a1, b: b1, .. }, Element::Resistor { a: a2, b: b2, .. }) => {
                a1 == a2 && b1 == b2
            }
            (Element::Capacitor { a: a1, b: b1, .. }, Element::Capacitor { a: a2, b: b2, .. }) => {
                a1 == a2 && b1 == b2
            }
            (Element::Vsource { p: p1, n: n1, .. }, Element::Vsource { p: p2, n: n2, .. }) => {
                p1 == p2 && n1 == n2
            }
            (Element::Isource { p: p1, n: n1, .. }, Element::Isource { p: p2, n: n2, .. }) => {
                p1 == p2 && n1 == n2
            }
            (Element::Mosfet(m1), Element::Mosfet(m2)) => {
                m1.kind == m2.kind && m1.d == m2.d && m1.g == m2.g && m1.s == m2.s
            }
            _ => false,
        };
        if !same {
            return false;
        }
    }
    // Sparse-engine engagement mirrors `SparseScratch::prepare`: the
    // batch path is dense-only, so any would-be-sparse lane ejects.
    if !force_dense_env() {
        match ws.sys.sparse.mode {
            SolverMode::ForceSparse => return false,
            SolverMode::Auto if nu >= SPARSE_CROSSOVER => return false,
            _ => {}
        }
    }
    true
}

/// Node voltage under the MNA ordering (ground reads 0) — local alias of
/// the shared helper for readability.
#[inline]
fn volt(x: &[f64], node: NodeId) -> f64 {
    match dense_var(node) {
        Some(i) => x[i],
        None => 0.0,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::elements::{MosType, Mosfet, MosfetParams, Waveform};

    /// A CMOS inverter driven by a pulse, parameterized by the NMOS width
    /// and load capacitance — a miniature of the paper's perturbed
    /// Monte Carlo instances.
    fn inverter(wn: f64, cload: f64) -> (Circuit, NodeId) {
        let params = |kind: MosType, w: f64| MosfetParams {
            vt0: if matches!(kind, MosType::Nmos) {
                0.4
            } else {
                -0.42
            },
            kp: if matches!(kind, MosType::Nmos) {
                170e-6
            } else {
                60e-6
            },
            lambda: 0.06,
            w,
            l: 0.18e-6,
            cgs: 1e-15,
            cgd: 1e-15,
            cdb: 1e-15,
        };
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource(vdd, Circuit::GROUND, Waveform::dc(1.8));
        ckt.vsource(
            inp,
            Circuit::GROUND,
            Waveform::single_pulse(0.0, 1.8, 0.5e-9, 30e-12, 30e-12, 400e-12),
        );
        ckt.add_mosfet(Mosfet {
            kind: MosType::Pmos,
            d: out,
            g: inp,
            s: vdd,
            params: params(MosType::Pmos, 2.0e-6),
        });
        ckt.add_mosfet(Mosfet {
            kind: MosType::Nmos,
            d: out,
            g: inp,
            s: Circuit::GROUND,
            params: params(MosType::Nmos, wn),
        });
        ckt.capacitor(out, Circuit::GROUND, cload);
        (ckt, out)
    }

    fn assert_identical(res: &TranResult, scalar: &TranResult, out: NodeId, tag: &str) {
        assert_eq!(res.times(), scalar.times(), "{tag}: time grids differ");
        assert_eq!(
            res.trace(out).values(),
            scalar.trace(out).values(),
            "{tag}: waveforms differ"
        );
        assert_eq!(res.stats(), scalar.stats(), "{tag}: stats differ");
    }

    #[test]
    fn batch_of_one_is_bit_identical_to_scalar() {
        let (ckt, out) = inverter(1.0e-6, 20e-15);
        let cfg = TranConfig::new(5e-12, 3e-9);
        let scalar = ckt.transient(&cfg).unwrap();

        let mut ws = SolverWorkspace::new();
        let mut bw = BatchWorkspace::new();
        let mut lanes = [BatchLane {
            ckt: &ckt,
            ws: &mut ws,
            cfg: cfg.clone(),
        }];
        let mut out_v = bw.transient_batch(&mut lanes, &TraceCapture::All);
        assert_eq!(out_v.len(), 1);
        match out_v.pop().unwrap() {
            BatchOutcome::Done(res) => assert_identical(&res, &scalar, out, "batch-of-1"),
            BatchOutcome::Ejected => panic!("clean lane must not eject"),
        }
    }

    #[test]
    fn batched_k_lanes_match_scalar_lane_for_lane() {
        let cfg = TranConfig::new(5e-12, 3e-9);
        let variants: Vec<(f64, f64)> = (0..6)
            .map(|i| (0.8e-6 + 0.1e-6 * i as f64, (15.0 + 3.0 * i as f64) * 1e-15))
            .collect();
        let ckts: Vec<(Circuit, NodeId)> = variants.iter().map(|&(w, c)| inverter(w, c)).collect();

        let scalars: Vec<TranResult> = ckts
            .iter()
            .map(|(ckt, _)| ckt.transient(&cfg).unwrap())
            .collect();

        let mut wss: Vec<SolverWorkspace> =
            (0..ckts.len()).map(|_| SolverWorkspace::new()).collect();
        let mut lanes: Vec<BatchLane<'_>> = ckts
            .iter()
            .zip(wss.iter_mut())
            .map(|((ckt, _), ws)| BatchLane {
                ckt,
                ws,
                cfg: cfg.clone(),
            })
            .collect();
        let mut bw = BatchWorkspace::new();
        let outs = bw.transient_batch(&mut lanes, &TraceCapture::All);
        assert_eq!(outs.len(), ckts.len());
        for (i, (o, s)) in outs.iter().zip(scalars.iter()).enumerate() {
            match o {
                BatchOutcome::Done(res) => {
                    assert_identical(res, s, ckts[i].1, &format!("lane {i}"));
                }
                BatchOutcome::Ejected => panic!("clean lane {i} must not eject"),
            }
        }
    }

    #[test]
    fn per_lane_stop_times_stay_bit_identical() {
        // The study gives each sample its own stop time (the input pulse
        // is scaled per instance); lanes must finish independently.
        let ckts: Vec<(Circuit, NodeId)> = (0..4)
            .map(|i| inverter(0.9e-6 + 0.05e-6 * i as f64, 20e-15))
            .collect();
        let cfgs: Vec<TranConfig> = (0..4)
            .map(|i| TranConfig::new(5e-12, 1.5e-9 + 0.4e-9 * i as f64))
            .collect();
        let scalars: Vec<TranResult> = ckts
            .iter()
            .zip(cfgs.iter())
            .map(|((ckt, _), cfg)| ckt.transient(cfg).unwrap())
            .collect();

        let mut wss: Vec<SolverWorkspace> =
            (0..ckts.len()).map(|_| SolverWorkspace::new()).collect();
        let mut lanes: Vec<BatchLane<'_>> = ckts
            .iter()
            .zip(wss.iter_mut())
            .zip(cfgs.iter())
            .map(|(((ckt, _), ws), cfg)| BatchLane {
                ckt,
                ws,
                cfg: cfg.clone(),
            })
            .collect();
        let mut bw = BatchWorkspace::new();
        let outs = bw.transient_batch(&mut lanes, &TraceCapture::All);
        for (i, (o, s)) in outs.iter().zip(scalars.iter()).enumerate() {
            match o {
                BatchOutcome::Done(res) => {
                    assert_identical(res, s, ckts[i].1, &format!("stop-lane {i}"));
                }
                BatchOutcome::Ejected => panic!("clean lane {i} must not eject"),
            }
        }
    }

    #[test]
    fn mismatched_step_config_ejects_lane() {
        let (ckt_a, out) = inverter(1.0e-6, 20e-15);
        let (ckt_b, _) = inverter(1.0e-6, 20e-15);
        let cfg_a = TranConfig::new(5e-12, 2e-9);
        let cfg_b = TranConfig::new(7e-12, 2e-9);
        let mut ws_a = SolverWorkspace::new();
        let mut ws_b = SolverWorkspace::new();
        let mut lanes = [
            BatchLane {
                ckt: &ckt_a,
                ws: &mut ws_a,
                cfg: cfg_a.clone(),
            },
            BatchLane {
                ckt: &ckt_b,
                ws: &mut ws_b,
                cfg: cfg_b,
            },
        ];
        let mut bw = BatchWorkspace::new();
        let outs = bw.transient_batch(&mut lanes, &TraceCapture::All);
        assert!(outs[0].is_done(), "reference lane stays batched");
        assert!(!outs[1].is_done(), "foreign step size must eject");
        let scalar = ckt_a.transient(&cfg_a).unwrap();
        match &outs[0] {
            BatchOutcome::Done(res) => assert_identical(res, &scalar, out, "survivor"),
            BatchOutcome::Ejected => unreachable!(),
        }
    }

    #[test]
    fn capture_nodes_matches_scalar_capture() {
        let (ckt, out) = inverter(1.1e-6, 25e-15);
        let cfg = TranConfig::new(5e-12, 2e-9);
        let mut ws_s = SolverWorkspace::new();
        let scalar = ckt
            .transient_with(&cfg, &mut ws_s, &TraceCapture::Nodes(vec![out]))
            .unwrap();

        let mut ws = SolverWorkspace::new();
        let mut bw = BatchWorkspace::new();
        let mut lanes = [BatchLane {
            ckt: &ckt,
            ws: &mut ws,
            cfg: cfg.clone(),
        }];
        let mut outs = bw.transient_batch(&mut lanes, &TraceCapture::Nodes(vec![out]));
        match outs.pop().unwrap() {
            BatchOutcome::Done(res) => {
                assert_eq!(res.times(), scalar.times());
                assert_eq!(res.trace(out).values(), scalar.trace(out).values());
            }
            BatchOutcome::Ejected => panic!("clean lane must not eject"),
        }
    }

    #[test]
    fn mismatched_topology_lane_ejects_cleanly() {
        let (ckt_a, out) = inverter(1.0e-6, 20e-15);
        let mut ckt_b = Circuit::new();
        let a = ckt_b.node("a");
        ckt_b.vsource(a, Circuit::GROUND, Waveform::dc(1.0));
        ckt_b.resistor(a, Circuit::GROUND, 1e3);
        let cfg = TranConfig::new(5e-12, 2e-9);

        let mut ws_a = SolverWorkspace::new();
        let mut ws_b = SolverWorkspace::new();
        let mut lanes = [
            BatchLane {
                ckt: &ckt_a,
                ws: &mut ws_a,
                cfg: cfg.clone(),
            },
            BatchLane {
                ckt: &ckt_b,
                ws: &mut ws_b,
                cfg: cfg.clone(),
            },
        ];
        let mut bw = BatchWorkspace::new();
        let outs = bw.transient_batch(&mut lanes, &TraceCapture::All);
        assert!(outs[0].is_done(), "reference lane stays batched");
        assert!(!outs[1].is_done(), "foreign topology must eject");
        // The surviving lane is still bit-identical to scalar.
        let scalar = ckt_a.transient(&cfg).unwrap();
        match &outs[0] {
            BatchOutcome::Done(res) => assert_identical(res, &scalar, out, "survivor"),
            BatchOutcome::Ejected => unreachable!(),
        }
    }

    #[test]
    fn adaptive_config_ejects_every_lane() {
        let (ckt, _) = inverter(1.0e-6, 20e-15);
        let mut ws = SolverWorkspace::new();
        let mut lanes = [BatchLane {
            ckt: &ckt,
            ws: &mut ws,
            cfg: TranConfig::adaptive(1e-9, 3e-9),
        }];
        let mut bw = BatchWorkspace::new();
        let outs = bw.transient_batch(&mut lanes, &TraceCapture::All);
        assert!(outs.iter().all(|o| !o.is_done()));
    }

    #[test]
    fn cancelled_token_ejects_lane() {
        let (ckt, _) = inverter(1.0e-6, 20e-15);
        let token = CancelToken::new();
        token.cancel(pulsar_obs::CancelReason::User);
        let mut ws = SolverWorkspace::new();
        ws.set_cancel_token(token);
        let mut lanes = [BatchLane {
            ckt: &ckt,
            ws: &mut ws,
            cfg: TranConfig::new(5e-12, 2e-9),
        }];
        let mut bw = BatchWorkspace::new();
        let outs = bw.transient_batch(&mut lanes, &TraceCapture::All);
        assert!(!outs[0].is_done(), "cancelled lane must eject");
    }

    #[test]
    fn counter_attribution_matches_scalar_per_lane() {
        let (ckt, _) = inverter(1.0e-6, 20e-15);
        let cfg = TranConfig::new(5e-12, 2e-9);

        // Scalar run with its own recorder.
        let rec_s = Recorder::enabled();
        let mut ws_s = SolverWorkspace::new();
        ws_s.set_recorder(rec_s.fork());
        ckt.transient_with(&cfg, &mut ws_s, &TraceCapture::All)
            .unwrap();

        // Batched run of the same instance.
        let rec_b = Recorder::enabled();
        let mut ws_b = SolverWorkspace::new();
        ws_b.set_recorder(rec_b.fork());
        let mut lanes = [BatchLane {
            ckt: &ckt,
            ws: &mut ws_b,
            cfg: cfg.clone(),
        }];
        let mut bw = BatchWorkspace::new();
        let outs = bw.transient_batch(&mut lanes, &TraceCapture::All);
        assert!(outs[0].is_done());

        let s = rec_s.snapshot();
        let b = rec_b.snapshot();
        for c in [
            Counter::DenseSolves,
            Counter::DenseIterations,
            Counter::NewtonIterations,
            Counter::StepsAccepted,
            Counter::NewtonRetries,
        ] {
            assert_eq!(
                b.counter(c),
                s.counter(c),
                "batched {c:?} must attribute per-instance like scalar"
            );
        }
        assert_eq!(b.counter(Counter::BatchEjections), 0);
        assert!(b.counter(Counter::BatchedLaneSolves) > 0);
        // DenseSolves also counts the scalar DC seed solves; every solve
        // past the seed ran inside the batch loop.
        assert!(
            b.counter(Counter::BatchedLaneSolves) < b.counter(Counter::DenseSolves),
            "DC seed solves are scalar dense solves"
        );
    }
}
