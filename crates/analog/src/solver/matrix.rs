use crate::error::Error;

/// Dense row-major square matrix with in-place LU solution.
///
/// MNA matrices for the circuits in this project (CMOS paths of a dozen
/// gates) have a few dozen unknowns; dense partial-pivot LU is both simple
/// and fast at that scale, and avoids an external linear-algebra dependency.
/// The elimination skips exact zeros, so the near-banded structure of a
/// gate chain is exploited without a symbolic phase — and skipping is
/// bit-exact: subtracting `factor * 0.0` never changes an entry because
/// stamped MNA entries are never `-0.0` (stamps accumulate from `+0.0`,
/// and IEEE subtraction of equal finite values rounds to `+0.0`).
#[derive(Debug, Clone, Default)]
pub(crate) struct DenseMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates an `n x n` zero matrix.
    #[cfg_attr(not(test), allow(dead_code))] // exercised by unit tests
    pub fn zeros(n: usize) -> Self {
        DenseMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Resizes to `n x n` and zeroes every entry, reusing the existing
    /// allocation when capacity allows (the workspace-reuse hook).
    pub fn reset(&mut self, n: usize) {
        self.n = n;
        self.data.clear();
        self.data.resize(n * n, 0.0);
    }

    /// Resets all entries to zero without reallocating.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    #[cfg_attr(not(test), allow(dead_code))] // exercised by unit tests
    pub fn n(&self) -> usize {
        self.n
    }

    #[inline]
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.n && c < self.n);
        // SAFETY: callers stamp MNA variables, all `< n` (debug-asserted
        // above); skipping the release bounds check keeps the assembly
        // loops branch-free.
        unsafe {
            *self.data.get_unchecked_mut(r * self.n + c) += v;
        }
    }

    #[inline]
    #[cfg_attr(not(test), allow(dead_code))] // exercised by unit tests
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.n + c]
    }

    /// Solves `A x = b` in place: on success `rhs` holds `x` and the matrix
    /// holds its LU factors.
    ///
    /// # Errors
    ///
    /// [`Error::SingularMatrix`] when no usable pivot exists in a column,
    /// which for MNA means a floating node or an ideal-source loop.
    pub fn solve_in_place(&mut self, rhs: &mut [f64]) -> Result<(), Error> {
        let n = self.n;
        assert_eq!(rhs.len(), n, "rhs length must match matrix dimension");

        // LU with partial pivoting, applying row swaps to rhs directly.
        // The elimination is written over disjoint row slices (pivot row
        // split from the rows below it) so the compiler can drop bounds
        // checks and vectorize the row update. Operation order is
        // identical to the scalar formulation, so results are bit-exact —
        // asserted against the preserved pre-optimization kernel by the
        // `optimized_lu_matches_baseline_bitwise` property test below.
        for k in 0..n {
            // Pivot search in column k.
            let mut piv = k;
            let mut max = self.data[k * n + k].abs();
            for r in (k + 1)..n {
                let v = self.data[r * n + k].abs();
                if v > max {
                    max = v;
                    piv = r;
                }
            }
            if max < 1e-300 {
                return Err(Error::SingularMatrix { row: k });
            }
            if piv != k {
                for c in 0..n {
                    self.data.swap(k * n + c, piv * n + c);
                }
                rhs.swap(k, piv);
            }
            let pivot = self.data[k * n + k];
            let (upper, lower) = self.data.split_at_mut((k + 1) * n);
            let pivot_row = &upper[k * n + k + 1..(k + 1) * n];
            let (rhs_head, rhs_tail) = rhs.split_at_mut(k + 1);
            let rhs_k = rhs_head[k];
            for (row, rhs_r) in lower.chunks_exact_mut(n).zip(rhs_tail.iter_mut()) {
                // Test the entry before dividing: a structural zero would
                // divide to ±0.0 and be skipped anyway, and the early test
                // keeps the (serializing) division off the sparse rows.
                if row[k] == 0.0 {
                    continue;
                }
                let factor = row[k] / pivot;
                if factor == 0.0 {
                    // Underflow: the baseline kernel leaves the tiny entry
                    // unfactored and skips the update; do the same.
                    continue;
                }
                row[k] = factor;
                for (a, &b) in row[k + 1..].iter_mut().zip(pivot_row) {
                    *a -= factor * b;
                }
                *rhs_r -= factor * rhs_k;
            }
        }

        // Back substitution.
        for k in (0..n).rev() {
            let tail: f64 = self.data[k * n + k + 1..k * n + n]
                .iter()
                .zip(&rhs[k + 1..n])
                .map(|(a, b)| a * b)
                .sum();
            rhs[k] = (rhs[k] - tail) / self.data[k * n + k];
        }
        Ok(())
    }

    /// The pre-optimization LU kernel, preserved verbatim (indexed scalar
    /// loops, per-element bounds checks) as the reference the benchmark
    /// baseline engine runs and the bit-exactness tests compare against.
    ///
    /// # Errors
    ///
    /// Same as [`DenseMatrix::solve_in_place`].
    pub fn solve_in_place_baseline(&mut self, rhs: &mut [f64]) -> Result<(), Error> {
        let n = self.n;
        assert_eq!(rhs.len(), n, "rhs length must match matrix dimension");
        for k in 0..n {
            let mut piv = k;
            let mut max = self.data[k * n + k].abs();
            for r in (k + 1)..n {
                let v = self.data[r * n + k].abs();
                if v > max {
                    max = v;
                    piv = r;
                }
            }
            if max < 1e-300 {
                return Err(Error::SingularMatrix { row: k });
            }
            if piv != k {
                for c in 0..n {
                    self.data.swap(k * n + c, piv * n + c);
                }
                rhs.swap(k, piv);
            }
            let pivot = self.data[k * n + k];
            for r in (k + 1)..n {
                let factor = self.data[r * n + k] / pivot;
                if factor == 0.0 {
                    continue;
                }
                self.data[r * n + k] = factor;
                for c in (k + 1)..n {
                    self.data[r * n + c] -= factor * self.data[k * n + c];
                }
                rhs[r] -= factor * rhs[k];
            }
        }
        for k in (0..n).rev() {
            let tail: f64 = self.data[k * n + k + 1..k * n + n]
                .iter()
                .zip(&rhs[k + 1..n])
                .map(|(a, b)| a * b)
                .sum();
            rhs[k] = (rhs[k] - tail) / self.data[k * n + k];
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn solves_identity() {
        let mut m = DenseMatrix::zeros(3);
        for i in 0..3 {
            m.add(i, i, 1.0);
        }
        let mut b = vec![1.0, 2.0, 3.0];
        m.solve_in_place(&mut b).unwrap();
        assert_eq!(b, vec![1.0, 2.0, 3.0]);
    }

    /// Shrink-then-regrow through `reset` must never resurrect stale
    /// values from the larger earlier use. `reset` clears *and* resizes
    /// (so the seed implementation was already correct — `data.clear()`
    /// before `resize` discards every old entry); this test pins that
    /// contract against a tempting future "optimization" that resizes
    /// without clearing and would leak a previous circuit's stamps into
    /// the freshly grown tail.
    #[test]
    fn reset_shrink_then_regrow_leaves_no_stale_values() {
        let mut m = DenseMatrix::zeros(4);
        for r in 0..4 {
            for c in 0..4 {
                m.add(r, c, (1 + r * 4 + c) as f64);
            }
        }
        m.reset(2);
        assert_eq!(m.n(), 2);
        for r in 0..2 {
            for c in 0..2 {
                assert_eq!(m.get(r, c), 0.0, "stale entry at ({r},{c})");
            }
        }
        m.reset(4);
        assert_eq!(m.n(), 4);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(m.get(r, c), 0.0, "stale entry at ({r},{c})");
            }
        }
    }

    #[test]
    fn solves_2x2_with_pivoting() {
        // [[0, 1], [2, 0]] x = [3, 4]  →  x = [2, 3]
        let mut m = DenseMatrix::zeros(2);
        m.add(0, 1, 1.0);
        m.add(1, 0, 2.0);
        let mut b = vec![3.0, 4.0];
        m.solve_in_place(&mut b).unwrap();
        assert!((b[0] - 2.0).abs() < 1e-12);
        assert!((b[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn detects_singular() {
        let mut m = DenseMatrix::zeros(2);
        m.add(0, 0, 1.0);
        m.add(0, 1, 1.0);
        m.add(1, 0, 1.0);
        m.add(1, 1, 1.0);
        let mut b = vec![1.0, 1.0];
        assert!(matches!(
            m.solve_in_place(&mut b),
            Err(Error::SingularMatrix { .. })
        ));
    }

    #[test]
    fn clear_resets_entries() {
        let mut m = DenseMatrix::zeros(2);
        m.add(0, 0, 5.0);
        m.clear();
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.n(), 2);
    }

    proptest! {
        /// The slice-based elimination must reproduce the preserved scalar
        /// kernel bit for bit: solution vector AND stored LU factors.
        #[test]
        fn optimized_lu_matches_baseline_bitwise(seed in 0u64..500, n in 1usize..10) {
            use rand_like::*;
            let mut rng = Lcg::new(seed);
            let mut a = DenseMatrix::zeros(n);
            for r in 0..n {
                let mut row_sum = 0.0;
                for c in 0..n {
                    if r != c {
                        // Sprinkle structural zeros to exercise the skip.
                        let v = if rng.next_f64() < 0.4 {
                            0.0
                        } else {
                            rng.next_f64() * 2.0 - 1.0
                        };
                        a.add(r, c, v);
                        row_sum += v.abs();
                    }
                }
                a.add(r, r, row_sum + 0.5 + rng.next_f64());
            }
            let b: Vec<f64> = (0..n).map(|_| rng.next_f64() * 10.0 - 5.0).collect();
            let mut a2 = a.clone();
            let mut x1 = b.clone();
            let mut x2 = b;
            a.solve_in_place(&mut x1).unwrap();
            a2.solve_in_place_baseline(&mut x2).unwrap();
            prop_assert_eq!(&x1, &x2);
            prop_assert_eq!(&a.data, &a2.data);
        }

        /// A x = b solved then multiplied back must reproduce b, for random
        /// diagonally-dominant systems (always nonsingular).
        #[test]
        fn solve_roundtrip(seed in 0u64..1000, n in 1usize..8) {
            use rand_like::*;
            let mut rng = Lcg::new(seed);
            let mut a = DenseMatrix::zeros(n);
            let mut orig = vec![0.0; n * n];
            for r in 0..n {
                let mut row_sum = 0.0;
                for c in 0..n {
                    if r != c {
                        let v = rng.next_f64() * 2.0 - 1.0;
                        a.add(r, c, v);
                        orig[r * n + c] = v;
                        row_sum += v.abs();
                    }
                }
                let d = row_sum + 1.0 + rng.next_f64();
                a.add(r, r, d);
                orig[r * n + r] = d;
            }
            let b: Vec<f64> = (0..n).map(|_| rng.next_f64() * 10.0 - 5.0).collect();
            let mut x = b.clone();
            a.solve_in_place(&mut x).unwrap();
            for r in 0..n {
                let mut acc = 0.0;
                for c in 0..n {
                    acc += orig[r * n + c] * x[c];
                }
                prop_assert!((acc - b[r]).abs() < 1e-9, "row {} residual {}", r, acc - b[r]);
            }
        }
    }

    /// Minimal deterministic generator for the property test, so the test
    /// does not depend on proptest's internal value trees for float matrices.
    mod rand_like {
        pub struct Lcg(u64);
        impl Lcg {
            pub fn new(seed: u64) -> Self {
                Lcg(seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407))
            }
            pub fn next_f64(&mut self) -> f64 {
                self.0 = self
                    .0
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((self.0 >> 11) as f64) / ((1u64 << 53) as f64)
            }
        }
    }
}
