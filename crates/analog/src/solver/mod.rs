//! Numerical machinery: dense LU factorization, the sparse stamp-pattern
//! solver with cached symbolic factorization, and MNA system assembly with
//! Newton–Raphson linearization of the nonlinear devices.

pub mod batch;
pub(crate) mod matrix;
pub(crate) mod mna;
pub mod pattern;
pub(crate) mod sparse;
pub(crate) mod workspace;
