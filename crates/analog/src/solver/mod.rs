//! Numerical machinery: dense LU factorization and MNA system assembly
//! with Newton–Raphson linearization of the nonlinear devices.

pub(crate) mod matrix;
pub(crate) mod mna;
pub(crate) mod workspace;
