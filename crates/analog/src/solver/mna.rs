//! MNA assembly and Newton–Raphson solution of the (possibly nonlinear)
//! circuit equations at one time point.
//!
//! Unknown ordering: node voltages for nodes `1..node_count` (ground is
//! eliminated), followed by one branch current per voltage source in
//! element order.

use crate::circuit::{Circuit, NodeId};
use crate::elements::{Element, MosType, Mosfet, MosfetParams};
use crate::error::Error;
use crate::solver::matrix::DenseMatrix;
use crate::solver::sparse::{global_recorder, SymbolicLu};
use crate::solver::workspace::{SparseScratch, SysScratch};
use pulsar_obs::{Counter, Phase, Recorder};

/// Modified-Newton stall threshold: a reused Jacobian is kept only while
/// the residual max-norm contracts by at least this factor per iteration;
/// otherwise the matrix is refactorized and the step retried with fresh
/// factors.
const JR_CONTRACTION: f64 = 0.5;

/// Absolute node-voltage convergence tolerance (V).
pub(crate) const VNTOL: f64 = 1e-6;
/// Relative convergence tolerance.
pub(crate) const RELTOL: f64 = 1e-4;
/// Per-iteration clamp on node-voltage updates (V); classic NR damping.
pub(crate) const VSTEP_LIMIT: f64 = 0.6;
/// Leakage conductance from every node to ground keeping matrices
/// well-posed even with all transistors cut off.
pub(crate) const GMIN_FLOOR: f64 = 1e-12;

/// Books the end of one dense Newton solve: the iteration spend goes to
/// the process-wide registry (legacy `solver_counters()` view) and the
/// per-run recorder, which also gets the iterations-per-solve histogram.
pub(crate) fn dense_solve_done(rec: &Recorder, iters: u64) {
    global_recorder().add(Counter::DenseIterations, iters);
    rec.add(Counter::DenseIterations, iters);
    rec.newton_solve_done(iters);
}

/// Dynamic (companion-model) state of one capacitor.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CapState {
    /// Voltage across the capacitor at the previous accepted time point.
    pub v_prev: f64,
    /// Current through the capacitor at the previous accepted time point
    /// (used by the trapezoidal rule).
    pub i_prev: f64,
}

/// Integration method for the capacitor companion models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Method {
    /// Backward Euler: L-stable, first order. Used for DC-to-transient
    /// hand-off and right after waveform breakpoints.
    BackwardEuler,
    /// Trapezoidal: A-stable, second order. The default inside smooth
    /// intervals.
    Trapezoidal,
}

/// One assembled+solvable view of the circuit.
///
/// All heap storage lives in the borrowed [`SysScratch`], so constructing
/// a `System` against a warm workspace performs no allocation: `new` only
/// re-derives the symbolic stamp layout (branch-index map and matrix
/// dimension) into the existing buffers.
pub(crate) struct System<'c, 'w> {
    ckt: &'c Circuit,
    /// Number of node-voltage unknowns.
    nn: usize,
    /// Total unknowns (nodes + vsource branch currents).
    nu: usize,
    scratch: &'w mut SysScratch,
}

impl<'c, 'w> System<'c, 'w> {
    pub fn new(ckt: &'c Circuit, scratch: &'w mut SysScratch) -> Self {
        let nn = ckt.node_count() - 1;
        scratch.branch_index.clear();
        scratch.branch_index.resize(ckt.elements().len(), None);
        let mut next = nn;
        let mut ncaps = 0usize;
        for (i, e) in ckt.elements().iter().enumerate() {
            match e {
                Element::Vsource { .. } => {
                    scratch.branch_index[i] = Some(next);
                    next += 1;
                }
                Element::Capacitor { .. } => ncaps += 1,
                Element::Mosfet(_) => ncaps += MOS_CAPS,
                _ => {}
            }
        }
        scratch.cap_geq.clear();
        scratch.cap_geq.resize(ncaps, 0.0);
        scratch.cap_ieq.clear();
        scratch.cap_ieq.resize(ncaps, 0.0);
        let nu = next;
        scratch.matrix.reset(nu);
        scratch.rhs.clear();
        scratch.rhs.resize(nu, 0.0);
        scratch.newton.clear();
        scratch.newton.resize(nu, 0.0);
        // The companion-conductance cache is keyed by step size only; a
        // rebuilt system may describe a different circuit, so drop it.
        scratch.cap_geq_key = None;
        // Engine decision (and symbolic-cache validation) for this system.
        {
            let SysScratch {
                sparse, recorder, ..
            } = &mut *scratch;
            sparse.prepare(ckt, nu, recorder);
        }
        System {
            ckt,
            nn,
            nu,
            scratch,
        }
    }

    pub fn unknowns(&self) -> usize {
        self.nu
    }

    /// MNA row/column of a node, or `None` for ground.
    #[inline]
    fn var(node: NodeId) -> Option<usize> {
        dense_var(node)
    }

    #[inline]
    fn volt(x: &[f64], node: NodeId) -> f64 {
        match Self::var(node) {
            Some(i) => x[i],
            None => 0.0,
        }
    }

    #[inline]
    fn stamp_g(&mut self, a: NodeId, b: NodeId, g: f64) {
        dense_stamp_g(&mut self.scratch.matrix, a, b, g);
    }

    /// Injects current `i` into node `into` and removes it from `from`.
    #[inline]
    fn stamp_i(&mut self, into: NodeId, from: NodeId, i: f64) {
        dense_stamp_i(&mut self.scratch.rhs, into, from, i);
    }

    /// Hoists every value that is constant across the Newton iterations of
    /// one solve call: `1/R` per resistor, the scaled source values at time
    /// `t`, and the capacitor companion pairs `(geq, ieq)` in stamping
    /// order. `geq` additionally survives *across* solve calls while the
    /// step size and method are unchanged (`cap_geq_key`), so the `c/h`
    /// divisions are paid once per step-size change, not once per
    /// iteration.
    ///
    /// Every value is computed by the same expression as the baseline
    /// assembly, so [`System::assemble_fast`] stamps bit-identical numbers
    /// in the identical order.
    fn hoist_step_values(
        &mut self,
        t: f64,
        dynamics: Option<(&[CapState], f64, Method)>,
        src_scale: f64,
    ) {
        let ne = self.ckt.elements().len();
        self.scratch.elem_val.resize(ne, 0.0);
        let refresh_geq = if let Some((_, h, method)) = dynamics {
            let key = (h.to_bits(), method);
            let stale = self.scratch.cap_geq_key != Some(key);
            if stale {
                self.scratch.cap_geq_key = Some(key);
            }
            stale
        } else {
            false
        };
        let mut cap_idx = 0usize;
        for (ei, e) in self.ckt.elements().iter().enumerate() {
            match e {
                Element::Resistor { ohms, .. } => {
                    self.scratch.elem_val[ei] = 1.0 / ohms;
                }
                Element::Vsource { wave, .. } | Element::Isource { wave, .. } => {
                    self.scratch.elem_val[ei] = src_scale * wave.value_at(t);
                }
                Element::Capacitor { farads, .. } => {
                    if let Some((states, h, method)) = dynamics {
                        hoist_companion(
                            &mut self.scratch.cap_geq,
                            &mut self.scratch.cap_ieq,
                            cap_idx,
                            *farads,
                            h,
                            method,
                            states[cap_idx],
                            refresh_geq,
                        );
                    }
                    cap_idx += 1;
                }
                Element::Mosfet(m) => {
                    if let Some((states, h, method)) = dynamics {
                        for (k, c) in [m.params.cgs, m.params.cgd, m.params.cdb]
                            .into_iter()
                            .enumerate()
                        {
                            hoist_companion(
                                &mut self.scratch.cap_geq,
                                &mut self.scratch.cap_ieq,
                                cap_idx + k,
                                c,
                                h,
                                method,
                                states[cap_idx + k],
                                refresh_geq,
                            );
                        }
                    }
                    cap_idx += MOS_CAPS;
                }
            }
        }
    }

    /// Companion conductances from the last hoist, one per capacitive
    /// branch in stamping order; the transient engine shares them with its
    /// cap-state update so the `c/h` divisions are not repeated per point.
    pub fn cap_geq(&self) -> &[f64] {
        &self.scratch.cap_geq
    }

    /// Assembles the linearized system about candidate solution `x`, using
    /// the values hoisted by [`System::hoist_step_values`] for everything
    /// that does not depend on `x`. Stamp order and stamped values are
    /// bit-identical to [`System::assemble_baseline`] (asserted by the
    /// `workspace_equivalence` property tests and the transient baseline
    /// cross-checks); only where the constants are computed differs.
    fn assemble_fast(&mut self, x: &[f64], dynamic: bool, gmin: f64) -> Result<(), Error> {
        self.scratch.matrix.clear();
        self.scratch.rhs.fill(0.0);

        let g_floor = GMIN_FLOOR + gmin;
        for n in 0..self.nn {
            self.scratch.matrix.add(n, n, g_floor);
        }

        let mut cap_idx = 0usize;
        for (ei, e) in self.ckt.elements().iter().enumerate() {
            match e {
                Element::Resistor { a, b, .. } => {
                    let g = self.scratch.elem_val[ei];
                    self.stamp_g(*a, *b, g);
                }
                Element::Capacitor { a, b, .. } => {
                    if dynamic {
                        let geq = self.scratch.cap_geq[cap_idx];
                        let ieq = self.scratch.cap_ieq[cap_idx];
                        self.stamp_g(*a, *b, geq);
                        self.stamp_i(*a, *b, ieq);
                    }
                    cap_idx += 1;
                }
                Element::Vsource { p, n, .. } => {
                    let br = branch_var(&self.scratch.branch_index, ei)?;
                    if let Some(i) = Self::var(*p) {
                        self.scratch.matrix.add(i, br, 1.0);
                        self.scratch.matrix.add(br, i, 1.0);
                    }
                    if let Some(j) = Self::var(*n) {
                        self.scratch.matrix.add(j, br, -1.0);
                        self.scratch.matrix.add(br, j, -1.0);
                    }
                    self.scratch.rhs[br] = self.scratch.elem_val[ei];
                }
                Element::Isource { p, n, .. } => {
                    let i = self.scratch.elem_val[ei];
                    self.stamp_i(*p, *n, i);
                }
                Element::Mosfet(m) => {
                    self.stamp_mosfet(m, x);
                    if dynamic {
                        let caps = [
                            (m.g, m.s, m.params.cgs),
                            (m.g, m.d, m.params.cgd),
                            (m.d, mos_bulk(m), m.params.cdb),
                        ];
                        for (k, (a, b, c)) in caps.into_iter().enumerate() {
                            if c > 0.0 {
                                let geq = self.scratch.cap_geq[cap_idx + k];
                                let ieq = self.scratch.cap_ieq[cap_idx + k];
                                self.stamp_g(a, b, geq);
                                self.stamp_i(a, b, ieq);
                            }
                        }
                    }
                    cap_idx += MOS_CAPS;
                }
            }
        }
        Ok(())
    }

    /// Assembles the linearized system about candidate solution `x` at time
    /// `t`, using `cap_states`/`dt` for the dynamic companions (DC analysis
    /// passes `None` which opens all capacitors), `src_scale` for source
    /// stepping and `gmin` for gmin stepping.
    ///
    /// This is the pre-workspace assembly, preserved verbatim for the
    /// benchmark baseline engine: every companion pair and source value is
    /// recomputed inside each Newton iteration. The live engine runs
    /// [`System::hoist_step_values`] + [`System::assemble_fast`] instead.
    #[allow(clippy::too_many_arguments)]
    fn assemble_baseline(
        &mut self,
        x: &[f64],
        t: f64,
        dynamics: Option<(&[CapState], f64, Method)>,
        src_scale: f64,
        gmin: f64,
    ) -> Result<(), Error> {
        self.scratch.matrix.clear();
        self.scratch.rhs.fill(0.0);

        let g_floor = GMIN_FLOOR + gmin;
        for n in 0..self.nn {
            self.scratch.matrix.add(n, n, g_floor);
        }

        let mut cap_idx = 0usize;
        for (ei, e) in self.ckt.elements().iter().enumerate() {
            match e {
                Element::Resistor { a, b, ohms } => {
                    self.stamp_g(*a, *b, 1.0 / ohms);
                }
                Element::Capacitor { a, b, farads } => {
                    if let Some((states, h, method)) = dynamics {
                        let st = states[cap_idx];
                        let (geq, ieq) = companion(*farads, h, method, st);
                        self.stamp_g(*a, *b, geq);
                        // ieq models the history: a current source pushing
                        // ieq into node a (and out of b).
                        self.stamp_i(*a, *b, ieq);
                    }
                    cap_idx += 1;
                }
                Element::Vsource { p, n, wave } => {
                    let br = branch_var(&self.scratch.branch_index, ei)?;
                    if let Some(i) = Self::var(*p) {
                        self.scratch.matrix.add(i, br, 1.0);
                        self.scratch.matrix.add(br, i, 1.0);
                    }
                    if let Some(j) = Self::var(*n) {
                        self.scratch.matrix.add(j, br, -1.0);
                        self.scratch.matrix.add(br, j, -1.0);
                    }
                    self.scratch.rhs[br] = src_scale * wave.value_at(t);
                }
                Element::Isource { p, n, wave } => {
                    self.stamp_i(*p, *n, src_scale * wave.value_at(t));
                }
                Element::Mosfet(m) => {
                    self.stamp_mosfet(m, x);
                    // Lumped device capacitances as dynamic companions.
                    if let Some((states, h, method)) = dynamics {
                        let caps = [
                            (m.g, m.s, m.params.cgs),
                            (m.g, m.d, m.params.cgd),
                            (m.d, mos_bulk(m), m.params.cdb),
                        ];
                        for (k, (a, b, c)) in caps.into_iter().enumerate() {
                            if c > 0.0 {
                                let st = states[cap_idx + k];
                                let (geq, ieq) = companion(c, h, method, st);
                                self.stamp_g(a, b, geq);
                                self.stamp_i(a, b, ieq);
                            }
                        }
                    }
                    cap_idx += MOS_CAPS;
                }
            }
        }
        Ok(())
    }

    fn stamp_mosfet(&mut self, m: &Mosfet, x: &[f64]) {
        dense_stamp_mosfet(&mut self.scratch.matrix, &mut self.scratch.rhs, m, x);
    }

    /// Newton–Raphson loop. `x` holds the initial guess and, on success,
    /// the solution.
    ///
    /// Routing: when the workspace's sparse engine is engaged (see
    /// [`SparseScratch::prepare`]) the solve runs the sparse chord/Newton
    /// loop; a numeric pivot failure there falls back to the dense loop,
    /// which also serves every below-crossover and force-dense solve with
    /// arithmetic bit-identical to the pre-sparse engine.
    #[allow(clippy::too_many_arguments)] // one call site per analysis
    pub fn solve_newton(
        &mut self,
        x: &mut [f64],
        t: f64,
        dynamics: Option<(&[CapState], f64, Method)>,
        src_scale: f64,
        gmin: f64,
        max_iter: usize,
        context: &'static str,
    ) -> Result<(), Error> {
        debug_assert_eq!(x.len(), self.nu);
        let _span = self.scratch.recorder.span(Phase::NewtonSolve);
        self.hoist_step_values(t, dynamics, src_scale);
        if self.scratch.sparse.active {
            self.scratch.sparse.x_save.clear();
            self.scratch.sparse.x_save.extend_from_slice(x);
            match self.try_newton_sparse(x, t, dynamics, gmin, max_iter, context) {
                Some(Ok(())) => return Ok(()),
                // Vanishing numeric pivot (None) or Newton non-convergence
                // (Some(Err)): restore the initial guess and re-run this
                // solve on the dense partial-pivot engine. Pivoting is
                // sturdier on badly scaled systems (mΩ wire shorts next to
                // gmin floors), and on a genuinely singular matrix the
                // dense engine reproduces the baseline SingularMatrix
                // error exactly. The solver can therefore never be *less*
                // robust than the dense baseline, only faster.
                Some(Err(_)) | None => {
                    let SysScratch {
                        sparse, recorder, ..
                    } = &mut *self.scratch;
                    x.copy_from_slice(&sparse.x_save);
                    global_recorder().add(Counter::DenseFallbacks, 1);
                    recorder.add(Counter::DenseFallbacks, 1);
                }
            }
        }
        global_recorder().add(Counter::DenseSolves, 1);
        self.scratch.recorder.add(Counter::DenseSolves, 1);
        let mut iters: u64 = 0;
        for iter in 0..max_iter {
            iters += 1;
            if let Err(e) = self.assemble_fast(x, dynamics.is_some(), gmin) {
                dense_solve_done(&self.scratch.recorder, iters);
                return Err(e);
            }
            // Split-borrow the scratch so the hoisted Newton vector can be
            // solved against the matrix without re-allocating per call.
            let SysScratch {
                matrix,
                rhs,
                newton,
                recorder,
                ..
            } = &mut *self.scratch;
            newton.copy_from_slice(rhs);
            if let Err(e) = matrix.solve_in_place(newton) {
                dense_solve_done(recorder, iters);
                return Err(e);
            }

            // Damped update + convergence test on node voltages.
            let mut converged = true;
            for i in 0..self.nu {
                let mut delta = newton[i] - x[i];
                if i < self.nn {
                    if delta > VSTEP_LIMIT {
                        delta = VSTEP_LIMIT;
                        converged = false;
                    } else if delta < -VSTEP_LIMIT {
                        delta = -VSTEP_LIMIT;
                        converged = false;
                    }
                    if delta.abs() > VNTOL + RELTOL * x[i].abs() {
                        converged = false;
                    }
                }
                x[i] += delta;
            }
            if converged && iter > 0 {
                dense_solve_done(recorder, iters);
                return Ok(());
            }
        }
        dense_solve_done(&self.scratch.recorder, iters);
        Err(Error::NoConvergence {
            context,
            iterations: max_iter,
            time: t,
        })
    }

    /// The sparse Newton loop, in delta (chord) form: each iteration
    /// assembles `A(x)` and `b(x)` over the stamp pattern (cheap, O(nnz)),
    /// forms the residual `r = b − A·x`, and takes the step
    /// `x += clamp(LU⁻¹·r)`. With freshly factored `LU = A(x)` this *is*
    /// the exact Newton step; with Jacobian reuse enabled, factors are
    /// kept while `‖r‖∞` contracts (textbook modified Newton) and a stall
    /// forces a refactorize-and-retry. Factors persist across calls (and
    /// therefore across time steps) as long as the factor environment —
    /// topology, gmin, `(h, method)` — is unchanged.
    ///
    /// Returns `None` when a numeric pivot vanishes, in which case the
    /// caller reruns the solve on the dense partial-pivot engine.
    fn try_newton_sparse(
        &mut self,
        x: &mut [f64],
        t: f64,
        dynamics: Option<(&[CapState], f64, Method)>,
        gmin: f64,
        max_iter: usize,
        context: &'static str,
    ) -> Option<Result<(), Error>> {
        global_recorder().add(Counter::SparseSolves, 1);
        self.scratch.recorder.add(Counter::SparseSolves, 1);
        let nn = self.nn;
        let nu = self.nu;
        let dyn_on = dynamics.is_some();
        let jr = self.scratch.sparse.jacobian_reuse_active();
        let env = {
            let sym = match self.scratch.sparse.symbolic.as_deref() {
                Some(s) => s,
                None => unreachable!("sparse engine active without a symbolic object"),
            };
            (
                sym.topo_key,
                gmin.to_bits(),
                dynamics.map(|(_, h, m)| (h.to_bits(), m)),
            )
        };
        if self.scratch.sparse.factor_env != Some(env) {
            self.scratch.sparse.factored = false;
        }
        let mut last_rnorm = f64::INFINITY;
        for iter in 0..max_iter {
            if let Err(e) = self.assemble_sparse(x, dyn_on, gmin) {
                return Some(Err(e));
            }
            let SysScratch {
                rhs,
                sparse,
                recorder,
                ..
            } = &mut *self.scratch;
            let SparseScratch {
                symbolic,
                a_vals,
                lu_vals,
                w,
                y,
                resid,
                delta,
                factored,
                factor_env,
                ..
            } = sparse;
            let sym = match symbolic.as_deref() {
                Some(s) => s,
                None => unreachable!("sparse engine active without a symbolic object"),
            };
            let rnorm = sym.residual(a_vals, x, rhs, resid);
            let reuse = jr && *factored && rnorm <= JR_CONTRACTION * last_rnorm;
            if reuse {
                global_recorder().add(Counter::JacobianReuses, 1);
                recorder.add(Counter::JacobianReuses, 1);
            } else {
                let _span = recorder.span(Phase::NumericRefactorize);
                recorder.add(Counter::NumericFactorizations, 1);
                if sym.factor(a_vals, lu_vals, w).is_err() {
                    *factored = false;
                    *factor_env = None;
                    recorder.add(Counter::NewtonIterations, iter as u64 + 1);
                    return None;
                }
                *factored = true;
                *factor_env = Some(env);
            }
            last_rnorm = rnorm;
            delta.clear();
            delta.resize(nu, 0.0);
            sym.solve(lu_vals, resid, delta, y);

            // Damped update + convergence test, same semantics as the
            // dense loop (whose delta is `A⁻¹b − x`, identical to `A⁻¹r`).
            let mut converged = true;
            for i in 0..nu {
                let mut d = delta[i];
                if i < nn {
                    if d > VSTEP_LIMIT {
                        d = VSTEP_LIMIT;
                        converged = false;
                    } else if d < -VSTEP_LIMIT {
                        d = -VSTEP_LIMIT;
                        converged = false;
                    }
                    if d.abs() > VNTOL + RELTOL * x[i].abs() {
                        converged = false;
                    }
                }
                x[i] += d;
            }
            if converged && iter > 0 {
                recorder.newton_solve_done(iter as u64 + 1);
                return Some(Ok(()));
            }
        }
        self.scratch.recorder.newton_solve_done(max_iter as u64);
        Some(Err(Error::NoConvergence {
            context,
            iterations: max_iter,
            time: t,
        }))
    }

    /// Sparse counterpart of [`System::assemble_fast`]: identical element
    /// traversal and stamp values (from the same hoisted buffers), writing
    /// into the pattern-compressed value array instead of the dense
    /// matrix. Kept as a separate copy so the dense assembly stays
    /// untouched — and bit-identical to baseline.
    fn assemble_sparse(&mut self, x: &[f64], dynamic: bool, gmin: f64) -> Result<(), Error> {
        let ckt = self.ckt;
        let nn = self.nn;
        let SysScratch {
            rhs,
            branch_index,
            elem_val,
            cap_geq,
            cap_ieq,
            sparse,
            ..
        } = &mut *self.scratch;
        let SparseScratch {
            symbolic, a_vals, ..
        } = sparse;
        let sym = match symbolic.as_deref() {
            Some(s) => s,
            None => unreachable!("sparse assembly without a symbolic object"),
        };
        sym.clear_values(a_vals);
        rhs.fill(0.0);

        let g_floor = GMIN_FLOOR + gmin;
        for n in 0..nn {
            sym.add(a_vals, n, n, g_floor);
        }

        let mut cap_idx = 0usize;
        for (ei, e) in ckt.elements().iter().enumerate() {
            match e {
                Element::Resistor { a, b, .. } => {
                    sparse_stamp_g(sym, a_vals, *a, *b, elem_val[ei]);
                }
                Element::Capacitor { a, b, .. } => {
                    if dynamic {
                        sparse_stamp_g(sym, a_vals, *a, *b, cap_geq[cap_idx]);
                        sparse_stamp_i(rhs, *a, *b, cap_ieq[cap_idx]);
                    }
                    cap_idx += 1;
                }
                Element::Vsource { p, n, .. } => {
                    let br = branch_var(branch_index, ei)?;
                    if let Some(i) = Self::var(*p) {
                        sym.add(a_vals, i, br, 1.0);
                        sym.add(a_vals, br, i, 1.0);
                    }
                    if let Some(j) = Self::var(*n) {
                        sym.add(a_vals, j, br, -1.0);
                        sym.add(a_vals, br, j, -1.0);
                    }
                    rhs[br] = elem_val[ei];
                }
                Element::Isource { p, n, .. } => {
                    sparse_stamp_i(rhs, *p, *n, elem_val[ei]);
                }
                Element::Mosfet(m) => {
                    sparse_stamp_mosfet(sym, a_vals, rhs, m, x);
                    if dynamic {
                        let caps = [
                            (m.g, m.s, m.params.cgs),
                            (m.g, m.d, m.params.cgd),
                            (m.d, mos_bulk(m), m.params.cdb),
                        ];
                        for (k, (a, b, c)) in caps.into_iter().enumerate() {
                            if c > 0.0 {
                                sparse_stamp_g(sym, a_vals, a, b, cap_geq[cap_idx + k]);
                                sparse_stamp_i(rhs, a, b, cap_ieq[cap_idx + k]);
                            }
                        }
                    }
                    cap_idx += MOS_CAPS;
                }
            }
        }
        Ok(())
    }

    /// The pre-workspace Newton kernel, preserved verbatim for the
    /// benchmark baseline engine: allocates its update vector per call and
    /// runs the preserved scalar LU. Numerically identical to
    /// [`System::solve_newton`] (asserted bitwise by the transient-engine
    /// baseline tests); only the allocation behavior and inner-loop code
    /// generation differ.
    #[allow(clippy::too_many_arguments)] // mirrors solve_newton
    pub fn solve_newton_baseline(
        &mut self,
        x: &mut [f64],
        t: f64,
        dynamics: Option<(&[CapState], f64, Method)>,
        src_scale: f64,
        gmin: f64,
        max_iter: usize,
        context: &'static str,
    ) -> Result<(), Error> {
        debug_assert_eq!(x.len(), self.nu);
        let mut xnew = vec![0.0; self.nu];
        for iter in 0..max_iter {
            self.assemble_baseline(x, t, dynamics, src_scale, gmin)?;
            xnew.copy_from_slice(&self.scratch.rhs);
            self.scratch.matrix.solve_in_place_baseline(&mut xnew)?;

            let mut converged = true;
            for i in 0..self.nu {
                let mut delta = xnew[i] - x[i];
                if i < self.nn {
                    if delta > VSTEP_LIMIT {
                        delta = VSTEP_LIMIT;
                        converged = false;
                    } else if delta < -VSTEP_LIMIT {
                        delta = -VSTEP_LIMIT;
                        converged = false;
                    }
                    if delta.abs() > VNTOL + RELTOL * x[i].abs() {
                        converged = false;
                    }
                }
                x[i] += delta;
            }
            if converged && iter > 0 {
                return Ok(());
            }
        }
        Err(Error::NoConvergence {
            context,
            iterations: max_iter,
            time: t,
        })
    }

    /// Collects the capacitive branches in stamping order into `out`,
    /// yielding `(node_a, node_b, farads)`.
    #[cfg(test)]
    pub fn cap_branches(&self) -> Vec<(NodeId, NodeId, f64)> {
        let mut out = Vec::new();
        collect_cap_branches(self.ckt, &mut out);
        out
    }

    pub fn node_voltage(x: &[f64], node: NodeId) -> f64 {
        Self::volt(x, node)
    }
}

/// Sparse twin of [`System::stamp_g`]: a conductance block between `a`
/// and `b`, accumulated into the pattern-compressed values.
#[inline]
fn sparse_stamp_g(sym: &SymbolicLu, vals: &mut [f64], a: NodeId, b: NodeId, g: f64) {
    let ia = System::var(a);
    let ib = System::var(b);
    if let Some(i) = ia {
        sym.add(vals, i, i, g);
    }
    if let Some(j) = ib {
        sym.add(vals, j, j, g);
    }
    if let (Some(i), Some(j)) = (ia, ib) {
        sym.add(vals, i, j, -g);
        sym.add(vals, j, i, -g);
    }
}

/// Sparse twin of [`System::stamp_i`]: injects current `i` into node
/// `into` and removes it from `from` (RHS only).
#[inline]
fn sparse_stamp_i(rhs: &mut [f64], into: NodeId, from: NodeId, i: f64) {
    if let Some(r) = System::var(into) {
        rhs[r] += i;
    }
    if let Some(r) = System::var(from) {
        rhs[r] -= i;
    }
}

/// Sparse twin of [`System::stamp_mosfet`]: same linearization, same
/// effective-terminal handling, writing through the stamp pattern.
fn sparse_stamp_mosfet(sym: &SymbolicLu, vals: &mut [f64], rhs: &mut [f64], m: &Mosfet, x: &[f64]) {
    let vd = System::volt(x, m.d);
    let vg = System::volt(x, m.g);
    let vs = System::volt(x, m.s);
    let lin = linearize(m, vd, vg, vs);

    let (deff, seff) = if lin.swapped { (m.s, m.d) } else { (m.d, m.s) };
    let id_ = System::var(deff);
    let is_ = System::var(seff);
    let ig_ = System::var(m.g);

    if let Some(r) = id_ {
        if let Some(c) = ig_ {
            sym.add(vals, r, c, lin.gm);
        }
        sym.add(vals, r, r, lin.gds);
        if let Some(c) = is_ {
            sym.add(vals, r, c, -(lin.gm + lin.gds));
        }
    }
    if let Some(r) = is_ {
        if let Some(c) = ig_ {
            sym.add(vals, r, c, -lin.gm);
        }
        if let Some(c) = id_ {
            sym.add(vals, r, c, -lin.gds);
        }
        sym.add(vals, r, r, lin.gm + lin.gds);
    }

    let vgs_eff = vg - System::volt(x, seff);
    let vds_eff = System::volt(x, deff) - System::volt(x, seff);
    let ieq = lin.i - lin.gm * vgs_eff - lin.gds * vds_eff;
    sparse_stamp_i(rhs, seff, deff, ieq);
}

/// MNA row/column of a node, or `None` for ground. Free-function twin of
/// [`System::var`] shared with the batch engine.
#[inline]
pub(crate) fn dense_var(node: NodeId) -> Option<usize> {
    if node.is_ground() {
        None
    } else {
        Some(node.index() - 1)
    }
}

/// Node voltage under the MNA unknown ordering (ground reads 0).
#[inline]
pub(crate) fn dense_volt(x: &[f64], node: NodeId) -> f64 {
    match dense_var(node) {
        Some(i) => x[i],
        None => 0.0,
    }
}

/// Stamps conductance `g` between `a` and `b`. The single implementation
/// behind both the scalar [`System`] assembly and the batched engine, so
/// the two cannot drift apart numerically.
#[inline]
pub(crate) fn dense_stamp_g(matrix: &mut DenseMatrix, a: NodeId, b: NodeId, g: f64) {
    let ia = dense_var(a);
    let ib = dense_var(b);
    if let Some(i) = ia {
        matrix.add(i, i, g);
    }
    if let Some(j) = ib {
        matrix.add(j, j, g);
    }
    if let (Some(i), Some(j)) = (ia, ib) {
        matrix.add(i, j, -g);
        matrix.add(j, i, -g);
    }
}

/// Injects current `i` into node `into` and removes it from `from`.
#[inline]
pub(crate) fn dense_stamp_i(rhs: &mut [f64], into: NodeId, from: NodeId, i: f64) {
    if let Some(r) = dense_var(into) {
        rhs[r] += i;
    }
    if let Some(r) = dense_var(from) {
        rhs[r] -= i;
    }
}

/// Linearizes and stamps one MOSFET about candidate solution `x`. Shared
/// by the scalar [`System`] assembly and the batched engine.
pub(crate) fn dense_stamp_mosfet(matrix: &mut DenseMatrix, rhs: &mut [f64], m: &Mosfet, x: &[f64]) {
    let vd = dense_volt(x, m.d);
    let vg = dense_volt(x, m.g);
    let vs = dense_volt(x, m.s);
    let lin = linearize(m, vd, vg, vs);

    let (deff, seff) = if lin.swapped { (m.s, m.d) } else { (m.d, m.s) };
    let id_ = dense_var(deff);
    let is_ = dense_var(seff);
    let ig_ = dense_var(m.g);

    // i(deff→seff) ≈ ieq + gm·vg + gds·vdeff − (gm+gds)·vseff
    if let Some(r) = id_ {
        if let Some(c) = ig_ {
            matrix.add(r, c, lin.gm);
        }
        matrix.add(r, r, lin.gds);
        if let Some(c) = is_ {
            matrix.add(r, c, -(lin.gm + lin.gds));
        }
    }
    if let Some(r) = is_ {
        if let Some(c) = ig_ {
            matrix.add(r, c, -lin.gm);
        }
        if let Some(c) = id_ {
            matrix.add(r, c, -lin.gds);
        }
        matrix.add(r, r, lin.gm + lin.gds);
    }

    let vgs_eff = vg - dense_volt(x, seff);
    let vds_eff = dense_volt(x, deff) - dense_volt(x, seff);
    let ieq = lin.i - lin.gm * vgs_eff - lin.gds * vds_eff;
    // ieq leaves deff and enters seff.
    dense_stamp_i(rhs, seff, deff, ieq);
}

/// Branch-current unknown of the voltage source at element index `ei`,
/// reported as a typed [`Error::Internal`] instead of a panic when the
/// bookkeeping is broken (malformed element list or corrupted scratch
/// state): one bad sample then journals as an ordinary failure instead of
/// unwinding past an entire Monte Carlo campaign.
#[inline]
pub(crate) fn branch_var(branch_index: &[Option<usize>], ei: usize) -> Result<usize, Error> {
    branch_index
        .get(ei)
        .copied()
        .flatten()
        .ok_or(Error::Internal {
            context: "vsource without a branch-current unknown during assembly",
        })
}

/// Collects capacitive branches in stamping order into `out` (cleared
/// first), yielding `(node_a, node_b, farads)`. Order is identical to the
/// `cap_idx` order used during assembly; the transient engine relies on
/// this to maintain its companion-state vector, and takes a caller-owned
/// buffer so a reused workspace performs no allocation here.
pub(crate) fn collect_cap_branches(ckt: &Circuit, out: &mut Vec<(NodeId, NodeId, f64)>) {
    out.clear();
    for e in ckt.elements() {
        match e {
            Element::Capacitor { a, b, farads } => out.push((*a, *b, *farads)),
            Element::Mosfet(m) => {
                out.push((m.g, m.s, m.params.cgs));
                out.push((m.g, m.d, m.params.cgd));
                out.push((m.d, mos_bulk(m), m.params.cdb));
            }
            _ => {}
        }
    }
}

/// Number of companion-model slots a MOSFET occupies (cgs, cgd, cdb).
pub(crate) const MOS_CAPS: usize = 3;

/// Bulk/junction reference node for `cdb`: ground for NMOS, the source for
/// PMOS (whose source normally sits at VDD). This keeps junction charge
/// referenced to the correct rail without an explicit bulk terminal.
pub(crate) fn mos_bulk(m: &Mosfet) -> NodeId {
    match m.kind {
        MosType::Nmos => Circuit::GROUND,
        MosType::Pmos => m.s,
    }
}

/// One hoisted companion pair: writes `ieq[idx]` (history-dependent,
/// refreshed every solve) and, when `refresh` is set, `geq[idx]`
/// (step-size-dependent only). The expressions mirror [`companion`]
/// exactly, so the cached values are bit-identical to recomputing.
#[allow(clippy::too_many_arguments)] // plain data plumbing, two call sites
pub(crate) fn hoist_companion(
    geq_v: &mut [f64],
    ieq_v: &mut [f64],
    idx: usize,
    c: f64,
    h: f64,
    method: Method,
    st: CapState,
    refresh: bool,
) {
    let geq = if refresh {
        let geq = match method {
            Method::BackwardEuler => c / h,
            Method::Trapezoidal => 2.0 * c / h,
        };
        geq_v[idx] = geq;
        geq
    } else {
        geq_v[idx]
    };
    ieq_v[idx] = match method {
        Method::BackwardEuler => geq * st.v_prev,
        Method::Trapezoidal => geq * st.v_prev + st.i_prev,
    };
}

fn companion(c: f64, h: f64, method: Method, st: CapState) -> (f64, f64) {
    match method {
        Method::BackwardEuler => {
            let geq = c / h;
            (geq, geq * st.v_prev)
        }
        Method::Trapezoidal => {
            let geq = 2.0 * c / h;
            (geq, geq * st.v_prev + st.i_prev)
        }
    }
}

/// Linearization of a MOSFET for stamping: current from the *effective*
/// drain to the *effective* source, with conductances w.r.t. the effective
/// gate-source / drain-source voltages.
#[derive(Debug, Clone, Copy)]
struct MosLin {
    /// Current flowing from the effective drain to the effective source.
    i: f64,
    gm: f64,
    gds: f64,
    /// True if the effective drain is the instance's `s` terminal.
    swapped: bool,
}

fn linearize(m: &Mosfet, vd: f64, vg: f64, vs: f64) -> MosLin {
    match m.kind {
        MosType::Nmos => linearize_n(vd, vg, vs, &m.params),
        MosType::Pmos => {
            // Mirror: evaluate the NMOS equations at negated voltages and
            // |vt0|; the current flips sign, the conductances carry over
            // (d/d(-v) of -f is +df/dv).
            let p = MosfetParams {
                vt0: -m.params.vt0,
                ..m.params
            };
            let lin = linearize_n(-vd, -vg, -vs, &p);
            MosLin { i: -lin.i, ..lin }
        }
    }
}

fn linearize_n(vd: f64, vg: f64, vs: f64, p: &MosfetParams) -> MosLin {
    let (vd_e, vs_e, swapped) = if vd >= vs {
        (vd, vs, false)
    } else {
        (vs, vd, true)
    };
    let vgs = vg - vs_e;
    let vds = vd_e - vs_e;
    let beta = p.kp * p.w / p.l;
    let vov = vgs - p.vt0;

    let (i, gm, gds) = if vov <= 0.0 {
        (0.0, 0.0, 0.0)
    } else if vds < vov {
        let clm = 1.0 + p.lambda * vds;
        (
            beta * (vov * vds - 0.5 * vds * vds) * clm,
            beta * vds * clm,
            beta * ((vov - vds) * clm + (vov * vds - 0.5 * vds * vds) * p.lambda),
        )
    } else {
        let clm = 1.0 + p.lambda * vds;
        (
            0.5 * beta * vov * vov * clm,
            beta * vov * clm,
            0.5 * beta * vov * vov * p.lambda,
        )
    };

    MosLin {
        i,
        gm,
        gds,
        swapped,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::elements::Waveform;

    #[test]
    fn voltage_divider_dc() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource(a, Circuit::GROUND, Waveform::dc(2.0));
        ckt.resistor(a, b, 1e3);
        ckt.resistor(b, Circuit::GROUND, 1e3);

        let mut ws = SysScratch::default();
        let mut sys = System::new(&ckt, &mut ws);
        let mut x = vec![0.0; sys.unknowns()];
        sys.solve_newton(&mut x, 0.0, None, 1.0, 0.0, 50, "test")
            .unwrap();
        assert!((System::node_voltage(&x, a) - 2.0).abs() < 1e-9);
        assert!((System::node_voltage(&x, b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn clobbered_branch_index_is_a_typed_error_not_a_panic() {
        // A vsource whose branch-current slot has been wiped (malformed
        // element list / corrupted scratch) must surface Error::Internal
        // from every assembly path instead of panicking mid-campaign.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource(a, Circuit::GROUND, Waveform::dc(2.0));
        ckt.resistor(a, b, 1e3);
        ckt.resistor(b, Circuit::GROUND, 1e3);

        let mut ws = SysScratch::default();
        let mut sys = System::new(&ckt, &mut ws);
        for slot in sys.scratch.branch_index.iter_mut() {
            *slot = None;
        }

        let mut x = vec![0.0; sys.unknowns()];
        let err = sys
            .solve_newton(&mut x, 0.0, None, 1.0, 0.0, 50, "test")
            .unwrap_err();
        assert!(matches!(err, Error::Internal { .. }), "fast path: {err:?}");

        let mut x = vec![0.0; sys.unknowns()];
        let err = sys
            .solve_newton_baseline(&mut x, 0.0, None, 1.0, 0.0, 50, "test")
            .unwrap_err();
        assert!(matches!(err, Error::Internal { .. }), "baseline: {err:?}");
    }

    #[test]
    fn branch_var_reports_truncated_table_too() {
        // Element index past the end of the table is the same invariant
        // violation as a cleared slot.
        assert!(matches!(branch_var(&[], 3), Err(Error::Internal { .. })));
        assert_eq!(branch_var(&[Some(7)], 0).unwrap(), 7);
    }

    #[test]
    fn isource_into_resistor() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.isource(a, Circuit::GROUND, Waveform::dc(1e-3));
        ckt.resistor(a, Circuit::GROUND, 1e3);

        let mut ws = SysScratch::default();
        let mut sys = System::new(&ckt, &mut ws);
        let mut x = vec![0.0; sys.unknowns()];
        sys.solve_newton(&mut x, 0.0, None, 1.0, 0.0, 50, "test")
            .unwrap();
        // 1 mA into 1 kΩ → 1 V
        assert!((System::node_voltage(&x, a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn floating_node_is_held_by_gmin_floor() {
        // A node connected only through a capacitor is floating in DC; the
        // gmin floor keeps the matrix solvable and parks it at 0 V.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource(a, Circuit::GROUND, Waveform::dc(1.0));
        ckt.capacitor(a, b, 1e-15);

        let mut ws = SysScratch::default();
        let mut sys = System::new(&ckt, &mut ws);
        let mut x = vec![0.0; sys.unknowns()];
        sys.solve_newton(&mut x, 0.0, None, 1.0, 0.0, 50, "test")
            .unwrap();
        assert!(System::node_voltage(&x, b).abs() < 1e-6);
    }

    #[test]
    fn nmos_pulldown_dc() {
        // NMOS with gate at VDD pulling a 10 kΩ-loaded node low.
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let out = ckt.node("out");
        ckt.vsource(vdd, Circuit::GROUND, Waveform::dc(1.8));
        ckt.resistor(vdd, out, 10e3);
        ckt.add_mosfet(Mosfet {
            kind: MosType::Nmos,
            d: out,
            g: vdd,
            s: Circuit::GROUND,
            params: MosfetParams {
                vt0: 0.4,
                kp: 170e-6,
                lambda: 0.05,
                w: 2e-6,
                l: 0.18e-6,
                cgs: 0.0,
                cgd: 0.0,
                cdb: 0.0,
            },
        });

        let mut ws = SysScratch::default();
        let mut sys = System::new(&ckt, &mut ws);
        let mut x = vec![0.0; sys.unknowns()];
        sys.solve_newton(&mut x, 0.0, None, 1.0, 0.0, 100, "test")
            .unwrap();
        let vout = System::node_voltage(&x, out);
        // Strong pulldown: output well below VDD/2, and KCL must hold:
        // resistor current equals transistor current.
        assert!(vout < 0.2, "expected strong pulldown, got {vout}");
        let ir = (1.8 - vout) / 10e3;
        let m = match ckt.elements().iter().find_map(|e| match e {
            Element::Mosfet(m) => Some(*m),
            _ => None,
        }) {
            Some(m) => m,
            None => unreachable!(),
        };
        let id = m.eval(vout, 1.8, 0.0).id;
        assert!((ir - id).abs() < 1e-6, "KCL violated: ir={ir:e}, id={id:e}");
    }

    #[test]
    fn cap_branch_order_matches_assembly() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.capacitor(a, Circuit::GROUND, 5e-15);
        ckt.add_mosfet(Mosfet {
            kind: MosType::Nmos,
            d: a,
            g: a,
            s: Circuit::GROUND,
            params: MosfetParams {
                vt0: 0.4,
                kp: 170e-6,
                lambda: 0.05,
                w: 1e-6,
                l: 0.18e-6,
                cgs: 1e-15,
                cgd: 2e-15,
                cdb: 3e-15,
            },
        });
        let mut ws = SysScratch::default();
        let sys = System::new(&ckt, &mut ws);
        let caps = sys.cap_branches();
        assert_eq!(caps.len(), 1 + MOS_CAPS);
        assert_eq!(caps[0].2, 5e-15);
        assert_eq!(caps[1].2, 1e-15); // cgs
        assert_eq!(caps[2].2, 2e-15); // cgd
        assert_eq!(caps[3].2, 3e-15); // cdb
    }
}
