//! Sparse LU with a cached symbolic factorization, driven by the MNA
//! [`StampPattern`](crate::solver::pattern::StampPattern).
//!
//! MNA matrices of long gate chains are large but extremely sparse (a
//! handful of nonzeros per row), and their *pattern* is invariant under
//! everything a study varies: Newton iterations, time steps, Monte Carlo
//! parameter fluctuation and fault-resistance sweeps. The expensive,
//! pattern-only work is therefore done **once per circuit topology**:
//!
//! 1. **Maximum transversal** — a row permutation placing a structurally
//!    nonzero entry on every diagonal (voltage-source branch rows have
//!    structurally zero diagonals, so this is mandatory for a static-pivot
//!    factorization). A transversal deficit is exactly the lint PL0101/
//!    PL0102 structural-singularity certificate: analysis fails and the
//!    caller falls back to dense LU, which reports the identical
//!    [`Error::SingularMatrix`](crate::error::Error::SingularMatrix).
//! 2. **Fill-reducing ordering** — greedy minimum degree (Markowitz on the
//!    symmetrized pattern), deterministic tie-break by lowest index.
//! 3. **Symbolic elimination** — the filled row patterns of `L+U`, stored
//!    as static CSR so numeric refactorization never allocates or searches.
//!
//! The numeric phase is an up-looking row LU *without* pivoting — the
//! transversal secures structural diagonals, and a vanishing numeric pivot
//! (possible since MOSFET stamps are value-dependent) aborts the
//! factorization so the caller can fall back to dense partial-pivot LU for
//! that solve. All phases are deterministic, so results are bitwise
//! reproducible across threads and runs for a fixed circuit.

use std::sync::OnceLock;

use crate::error::Error;
use crate::solver::pattern::StampPattern;
use pulsar_obs::{Counter, Recorder};

/// Smallest usable pivot magnitude, matching the dense LU threshold.
const PIVOT_MIN: f64 = 1e-300;

/// Largest dimension for which the O(1) `(row, col) → value-slot` lookup
/// table is built (`dim² × 4` bytes; 1024 → 4 MiB). Beyond it, stamps
/// fall back to binary search over the row's column list. Every circuit
/// this project builds is far below the bound; it only guards against
/// pathological memory use on enormous netlists.
const SLOT_TABLE_MAX_DIM: usize = 1024;

/// Sentinel in the slot table for cells outside the stamp pattern.
const NO_SLOT: u32 = u32::MAX;

/// Immutable symbolic factorization of one stamp pattern: permutations,
/// assembly CSR and the filled `L+U` structure. Shared read-only (via
/// `Arc`) between every sample of a study over the same topology.
#[derive(Debug)]
pub(crate) struct SymbolicLu {
    n: usize,
    /// Structural fingerprint of the circuit this was computed for.
    pub topo_key: u64,
    /// Assembly pattern, CSR over *original* row/column indices.
    a_start: Vec<usize>,
    a_cols: Vec<usize>,
    /// `a_perm_cols[slot]` = permuted column of `a_cols[slot]`, so the
    /// factorization can gather a row without per-entry index mapping.
    a_perm_cols: Vec<usize>,
    /// Permuted row `i` is original row `rperm[i]`.
    rperm: Vec<usize>,
    /// Permuted column `j` is original column `cperm[j]`.
    cperm: Vec<usize>,
    /// Filled `L+U` pattern, CSR over *permuted* indices, columns sorted.
    lu_start: Vec<usize>,
    lu_cols: Vec<usize>,
    /// Position of the diagonal inside each permuted row of `lu_cols`.
    lu_diag: Vec<usize>,
    /// O(1) stamp lookup: `slot_of[r * n + c]` is the value slot of cell
    /// `(r, c)`, or [`NO_SLOT`]. Empty above [`SLOT_TABLE_MAX_DIM`].
    /// Assembly runs once per Newton iteration with ~10 stamps per matrix
    /// row, so constant-time slot lookup (instead of a binary search per
    /// stamp) is what keeps the sparse engine's per-iteration cost below
    /// the dense engine's.
    slot_of: Vec<u32>,
}

impl SymbolicLu {
    /// Runs the symbolic analysis of `pattern`.
    ///
    /// # Errors
    ///
    /// [`Error::SingularMatrix`] when the pattern has a structural-rank
    /// deficit (no transversal exists) — the same verdict lint's
    /// PL0101/PL0102 matching reports, with `row` the first uncoverable
    /// row.
    pub fn analyze(pattern: &StampPattern, topo_key: u64) -> Result<SymbolicLu, Error> {
        global_recorder().add(Counter::SymbolicAnalyses, 1);
        let n = pattern.dim();
        let (col_match, unmatched) = pattern.matching();
        if let Some(&row) = unmatched.first() {
            return Err(Error::SingularMatrix { row });
        }
        // Transversal: placing original row `col_match[c]` at permuted
        // position `c` makes every diagonal structurally nonzero.
        let rperm0: Vec<usize> = col_match
            .into_iter()
            .map(|m| match m {
                Some(r) => r,
                // A full matching covers every column.
                None => unreachable!("full matching after deficit check"),
            })
            .collect();

        // Minimum-degree ordering on the symmetrized transversal pattern.
        let order = min_degree_order(pattern, &rperm0, n);
        let mut rperm = vec![0usize; n];
        let mut cperm = vec![0usize; n];
        for (k, &v) in order.iter().enumerate() {
            rperm[k] = rperm0[v];
            cperm[k] = v;
        }
        let mut cinv = vec![0usize; n];
        for (j, &c) in cperm.iter().enumerate() {
            cinv[c] = j;
        }

        // Assembly CSR over the original pattern.
        let mut a_start = Vec::with_capacity(n + 1);
        let mut a_cols = Vec::with_capacity(pattern.nnz());
        a_start.push(0);
        for r in 0..n {
            a_cols.extend_from_slice(pattern.row(r));
            a_start.push(a_cols.len());
        }
        let a_perm_cols: Vec<usize> = a_cols.iter().map(|&c| cinv[c]).collect();

        // Symbolic elimination: filled pattern of each permuted row, built
        // by merging the U-parts of the earlier rows it eliminates
        // against. `lu_cols` of finished rows is already sorted, and the
        // min-heap hands out the L-columns of the current row in ascending
        // order, which is exactly the order the numeric phase uses.
        let mut lu_start = Vec::with_capacity(n + 1);
        let mut lu_cols: Vec<usize> = Vec::new();
        let mut lu_diag = Vec::with_capacity(n);
        lu_start.push(0);
        let mut mark = vec![false; n];
        let mut heap = std::collections::BinaryHeap::new();
        let mut row_cols: Vec<usize> = Vec::new();
        for (i, &orig_row) in rperm.iter().enumerate() {
            row_cols.clear();
            for &c in pattern.row(orig_row) {
                let j = cinv[c];
                if !mark[j] {
                    mark[j] = true;
                    row_cols.push(j);
                    if j < i {
                        heap.push(std::cmp::Reverse(j));
                    }
                }
            }
            while let Some(std::cmp::Reverse(k)) = heap.pop() {
                for &c in &lu_cols[lu_diag[k] + 1..lu_start[k + 1]] {
                    if !mark[c] {
                        mark[c] = true;
                        row_cols.push(c);
                        if c < i {
                            heap.push(std::cmp::Reverse(c));
                        }
                    }
                }
            }
            row_cols.sort_unstable();
            for &c in &row_cols {
                mark[c] = false;
            }
            let base = lu_cols.len();
            lu_cols.extend_from_slice(&row_cols);
            let diag = match row_cols.binary_search(&i) {
                Ok(p) => base + p,
                // The transversal placed a structural nonzero on (i, i).
                Err(_) => unreachable!("transversal guarantees a structural diagonal"),
            };
            lu_diag.push(diag);
            lu_start.push(lu_cols.len());
        }

        let mut slot_of = Vec::new();
        if n <= SLOT_TABLE_MAX_DIM {
            slot_of.resize(n * n, NO_SLOT);
            for r in 0..n {
                for slot in a_start[r]..a_start[r + 1] {
                    slot_of[r * n + a_cols[slot]] = slot as u32;
                }
            }
        }

        Ok(SymbolicLu {
            n,
            topo_key,
            a_start,
            a_cols,
            a_perm_cols,
            rperm,
            cperm,
            lu_start,
            lu_cols,
            lu_diag,
            slot_of,
        })
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Nonzero count of the assembly pattern.
    pub fn nnz(&self) -> usize {
        self.a_cols.len()
    }

    /// Nonzero count of the filled `L+U` pattern.
    pub fn lu_nnz(&self) -> usize {
        self.lu_cols.len()
    }

    /// Permuted-row → original-row map (a permutation of `0..dim()`).
    pub fn row_permutation(&self) -> &[usize] {
        &self.rperm
    }

    /// Permuted-column → original-column map (a permutation of `0..dim()`).
    pub fn col_permutation(&self) -> &[usize] {
        &self.cperm
    }

    /// Resets `vals` to an all-zero value buffer for assembly.
    pub fn clear_values(&self, vals: &mut Vec<f64>) {
        vals.clear();
        vals.resize(self.a_cols.len(), 0.0);
    }

    /// Accumulates `v` into cell `(r, c)` of the assembled values.
    ///
    /// # Panics
    ///
    /// If `(r, c)` is outside the stamp pattern — that is a bug in the
    /// pattern construction (it must be a superset of everything the
    /// assembly writes), not a data-dependent condition.
    #[inline]
    pub fn add(&self, vals: &mut [f64], r: usize, c: usize, v: f64) {
        if !self.slot_of.is_empty() {
            let slot = self.slot_of[r * self.n + c];
            debug_assert_ne!(
                slot, NO_SLOT,
                "stamp ({r},{c}) outside the symbolic pattern"
            );
            // A NO_SLOT sentinel still panics here (index out of range),
            // preserving the documented bug-trap semantics.
            vals[slot as usize] += v;
            return;
        }
        let row = &self.a_cols[self.a_start[r]..self.a_start[r + 1]];
        match row.binary_search(&c) {
            Ok(p) => vals[self.a_start[r] + p] += v,
            Err(_) => unreachable!("stamp ({r},{c}) outside the symbolic pattern"),
        }
    }

    /// Computes the residual `out = rhs − A·x` over the assembly pattern
    /// and returns its max-norm.
    pub fn residual(&self, vals: &[f64], x: &[f64], rhs: &[f64], out: &mut Vec<f64>) -> f64 {
        out.clear();
        out.extend_from_slice(rhs);
        let mut norm = 0.0f64;
        for (r, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for slot in self.a_start[r]..self.a_start[r + 1] {
                acc += vals[slot] * x[self.a_cols[slot]];
            }
            *o -= acc;
            norm = norm.max(o.abs());
        }
        norm
    }

    /// Numeric refactorization: up-looking row LU of the assembled values
    /// into the precomputed filled pattern. `w` is caller-owned scratch of
    /// length `dim()`.
    ///
    /// # Errors
    ///
    /// `Err(original_row)` when a numeric pivot vanishes (or is not
    /// finite); the caller falls back to dense partial-pivot LU for the
    /// solve, which reproduces the baseline error exactly if the matrix is
    /// genuinely singular.
    pub fn factor(
        &self,
        a_vals: &[f64],
        lu_vals: &mut Vec<f64>,
        w: &mut Vec<f64>,
    ) -> Result<(), usize> {
        global_recorder().add(Counter::NumericFactorizations, 1);
        lu_vals.clear();
        lu_vals.resize(self.lu_cols.len(), 0.0);
        w.clear();
        w.resize(self.n, 0.0);
        for i in 0..self.n {
            // Scatter the permuted assembly row into the work vector.
            for pos in self.lu_start[i]..self.lu_start[i + 1] {
                w[self.lu_cols[pos]] = 0.0;
            }
            let r = self.rperm[i];
            for slot in self.a_start[r]..self.a_start[r + 1] {
                w[self.a_perm_cols[slot]] += a_vals[slot];
            }
            // Eliminate against earlier rows, ascending column order.
            for pos in self.lu_start[i]..self.lu_diag[i] {
                let k = self.lu_cols[pos];
                let lik = w[k] / lu_vals[self.lu_diag[k]];
                w[k] = lik;
                if lik != 0.0 {
                    for upos in self.lu_diag[k] + 1..self.lu_start[k + 1] {
                        w[self.lu_cols[upos]] -= lik * lu_vals[upos];
                    }
                }
            }
            // Gather the finished row.
            for pos in self.lu_start[i]..self.lu_start[i + 1] {
                lu_vals[pos] = w[self.lu_cols[pos]];
            }
            let d = lu_vals[self.lu_diag[i]];
            if d.abs() < PIVOT_MIN || !d.is_finite() {
                return Err(self.rperm[i]);
            }
        }
        Ok(())
    }

    /// Solves `A·x = b` with the current factors. `b` and `x` are in
    /// original index space; `y` is caller-owned scratch of length
    /// `dim()`. `b` and `x` may not alias.
    pub fn solve(&self, lu_vals: &[f64], b: &[f64], x: &mut [f64], y: &mut Vec<f64>) {
        y.clear();
        y.resize(self.n, 0.0);
        // Forward substitution on L (unit diagonal held implicitly: the
        // stored diagonal belongs to U).
        for i in 0..self.n {
            let mut acc = b[self.rperm[i]];
            for pos in self.lu_start[i]..self.lu_diag[i] {
                acc -= lu_vals[pos] * y[self.lu_cols[pos]];
            }
            y[i] = acc;
        }
        // Back substitution on U.
        for i in (0..self.n).rev() {
            let mut acc = y[i];
            for pos in self.lu_diag[i] + 1..self.lu_start[i + 1] {
                acc -= lu_vals[pos] * y[self.lu_cols[pos]];
            }
            y[i] = acc / lu_vals[self.lu_diag[i]];
        }
        for j in 0..self.n {
            x[self.cperm[j]] = y[j];
        }
    }
}

/// Greedy minimum-degree ordering of the symmetrized transversal pattern
/// `B` (`B[i][j]` set iff original cell `(rperm0[i], j)` is in the
/// pattern). Classic Markowitz-style elimination: repeatedly remove the
/// lowest-degree vertex and clique its neighborhood. Deterministic
/// (ties break toward the lowest index); returns the elimination order.
fn min_degree_order(pattern: &StampPattern, rperm0: &[usize], n: usize) -> Vec<usize> {
    // Symmetrized adjacency (off-diagonal only), deduplicated.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, &r) in rperm0.iter().enumerate() {
        for &j in pattern.row(r) {
            if i != j {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    for row in &mut adj {
        row.sort_unstable();
        row.dedup();
    }
    let mut alive = vec![true; n];
    let mut order = Vec::with_capacity(n);
    let mut nbrs: Vec<usize> = Vec::new();
    for _ in 0..n {
        let mut best = usize::MAX;
        let mut best_deg = usize::MAX;
        for v in 0..n {
            if alive[v] {
                let deg = adj[v].iter().filter(|&&u| alive[u]).count();
                if deg < best_deg {
                    best_deg = deg;
                    best = v;
                }
            }
        }
        let v = best;
        alive[v] = false;
        order.push(v);
        nbrs.clear();
        nbrs.extend(adj[v].iter().copied().filter(|&u| alive[u]));
        // Clique the live neighborhood (the fill elimination creates).
        for (ai, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[ai + 1..] {
                if !adj[a].contains(&b) {
                    adj[a].push(b);
                    adj[b].push(a);
                }
            }
        }
    }
    order
}

/// One snapshot of the global solver counters (monotonic, process-wide).
///
/// Counters attribute where solve time goes: how many symbolic analyses a
/// study performed (the caching contract is *one per circuit topology*),
/// how many numeric refactorizations the Newton loops paid, how many
/// iterations reused stale Jacobian factors, and how often the sparse path
/// fell back to dense LU. Obtain with [`crate::solver_counters`], diff
/// with [`SolverCounters::since`]. Updates are `Relaxed` atomics: exact
/// under single-threaded sections, eventually consistent across threads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverCounters {
    /// Symbolic analyses performed (pattern + ordering + fill).
    pub symbolic_analyses: u64,
    /// Numeric refactorizations of the sparse matrix.
    pub numeric_factorizations: u64,
    /// Newton iterations that reused existing factors (modified Newton).
    pub jacobian_reuses: u64,
    /// Newton solves routed through the sparse engine.
    pub sparse_solves: u64,
    /// Newton solves routed through the dense engine (excluding the
    /// preserved baseline engine, which is left uninstrumented).
    pub dense_solves: u64,
    /// Newton iterations (assemble + LU) taken by the dense engine.
    pub dense_iterations: u64,
    /// Sparse solves abandoned to dense LU (structural-rank deficit at
    /// analysis, or a vanishing numeric pivot).
    pub dense_fallbacks: u64,
}

impl SolverCounters {
    /// Counter increments since an `earlier` snapshot.
    #[must_use]
    pub fn since(&self, earlier: &SolverCounters) -> SolverCounters {
        SolverCounters {
            symbolic_analyses: self.symbolic_analyses - earlier.symbolic_analyses,
            numeric_factorizations: self.numeric_factorizations - earlier.numeric_factorizations,
            jacobian_reuses: self.jacobian_reuses - earlier.jacobian_reuses,
            sparse_solves: self.sparse_solves - earlier.sparse_solves,
            dense_solves: self.dense_solves - earlier.dense_solves,
            dense_iterations: self.dense_iterations - earlier.dense_iterations,
            dense_fallbacks: self.dense_fallbacks - earlier.dense_fallbacks,
        }
    }
}

/// The process-wide, always-enabled [`Recorder`] backing the legacy
/// [`solver_counters`] view. Every solver instrumentation point records
/// here *and* into the per-run recorder installed on the workspace (when
/// one is), so old global snapshots and new scoped snapshots agree.
pub(crate) fn global_recorder() -> &'static Recorder {
    static GLOBAL: OnceLock<Recorder> = OnceLock::new();
    GLOBAL.get_or_init(Recorder::enabled)
}

/// Snapshots the process-wide [`SolverCounters`].
#[deprecated(note = "process-wide counters race across concurrent runs; install a \
            per-run `pulsar_obs::Recorder` via `SolverWorkspace::set_recorder` \
            and use `Recorder::snapshot` instead")]
pub fn solver_counters() -> SolverCounters {
    let snap = global_recorder().snapshot();
    SolverCounters {
        symbolic_analyses: snap.counter(Counter::SymbolicAnalyses),
        numeric_factorizations: snap.counter(Counter::NumericFactorizations),
        jacobian_reuses: snap.counter(Counter::JacobianReuses),
        sparse_solves: snap.counter(Counter::SparseSolves),
        dense_solves: snap.counter(Counter::DenseSolves),
        dense_iterations: snap.counter(Counter::DenseIterations),
        dense_fallbacks: snap.counter(Counter::DenseFallbacks),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::circuit::Circuit;
    use crate::elements::{MosType, Mosfet, MosfetParams, Waveform};
    use crate::solver::matrix::DenseMatrix;
    use crate::solver::pattern::topology_key;
    use proptest::prelude::*;

    /// Deterministic LCG so the property tests do not depend on proptest's
    /// float value trees (mirrors the dense-matrix tests).
    struct Lcg(u64);
    impl Lcg {
        fn new(seed: u64) -> Self {
            Lcg(seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407))
        }
        fn next_f64(&mut self) -> f64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((self.0 >> 11) as f64) / ((1u64 << 53) as f64)
        }
    }

    fn mosp() -> MosfetParams {
        MosfetParams {
            vt0: 0.4,
            kp: 170e-6,
            lambda: 0.05,
            w: 1e-6,
            l: 0.18e-6,
            cgs: 1e-15,
            cgd: 1e-15,
            cdb: 1e-15,
        }
    }

    /// A random circuit with a healthy structure: a supply, a resistive
    /// spanning tree plus chords, sprinkled caps and MOSFETs. Its stamp
    /// pattern always has full structural rank.
    fn random_circuit(rng: &mut Lcg, nodes: usize) -> Circuit {
        let mut ckt = Circuit::new();
        let mut ids = Vec::new();
        for i in 0..nodes {
            ids.push(ckt.node(format!("n{i}")));
        }
        ckt.vsource(ids[0], Circuit::GROUND, Waveform::dc(1.8));
        for i in 1..nodes {
            let j = (rng.next_f64() * i as f64) as usize;
            ckt.resistor(ids[i], ids[j], 100.0 + rng.next_f64() * 9.9e3);
        }
        for _ in 0..nodes / 2 {
            let a = (rng.next_f64() * nodes as f64) as usize % nodes;
            let b = (rng.next_f64() * nodes as f64) as usize % nodes;
            if rng.next_f64() < 0.5 {
                ckt.capacitor(ids[a], ids[b], 1e-15);
            } else {
                ckt.resistor(ids[a], Circuit::GROUND, 1e3 + rng.next_f64() * 1e4);
            }
        }
        for _ in 0..nodes / 3 {
            let d = (rng.next_f64() * nodes as f64) as usize % nodes;
            let g = (rng.next_f64() * nodes as f64) as usize % nodes;
            ckt.add_mosfet(Mosfet {
                kind: if rng.next_f64() < 0.5 {
                    MosType::Nmos
                } else {
                    MosType::Pmos
                },
                d: ids[d],
                g: ids[g],
                s: Circuit::GROUND,
                params: mosp(),
            });
        }
        ckt
    }

    fn is_permutation(p: &[usize]) -> bool {
        let mut seen = vec![false; p.len()];
        for &v in p {
            if v >= p.len() || seen[v] {
                return false;
            }
            seen[v] = true;
        }
        true
    }

    proptest! {
        /// The fill-reducing ordering must produce genuine permutations on
        /// random circuit patterns.
        #[test]
        fn ordering_is_a_permutation(seed in 0u64..300, nodes in 2usize..14) {
            let mut rng = Lcg::new(seed);
            let ckt = random_circuit(&mut rng, nodes);
            let pat = StampPattern::build_transient(&ckt);
            let sym = SymbolicLu::analyze(&pat, topology_key(&ckt)).unwrap();
            prop_assert!(is_permutation(sym.row_permutation()));
            prop_assert!(is_permutation(sym.col_permutation()));
            prop_assert_eq!(sym.dim(), pat.dim());
            // Fill only ever adds cells to the permuted original pattern.
            prop_assert!(sym.lu_nnz() >= sym.nnz());
        }

        /// Symbolic + numeric factorization must solve random nonsingular
        /// systems assembled on real stamp patterns to within 1e-9 of the
        /// dense partial-pivot LU.
        ///
        /// The values mirror a real MNA assembly — symmetric positive
        /// conductance blocks on the node part plus ±1 voltage-source
        /// incidence with full column rank — which makes the matrix
        /// provably nonsingular (SPD node block, full-rank incidence), so
        /// neither engine may fail and both must agree.
        #[test]
        fn sparse_matches_dense_lu(seed in 0u64..300, nodes in 2usize..14) {
            let mut rng = Lcg::new(seed);
            let mut ckt = Circuit::new();
            let mut ids = Vec::new();
            for i in 0..nodes {
                ids.push(ckt.node(format!("n{i}")));
            }
            // Conductive spanning structure + chords.
            for i in 0..nodes {
                let j = (rng.next_f64() * i as f64) as usize;
                let other = if i == 0 { Circuit::GROUND } else { ids[j] };
                ckt.resistor(ids[i], other, 1e3);
            }
            for _ in 0..nodes / 2 {
                let a = (rng.next_f64() * nodes as f64) as usize % nodes;
                let b = (rng.next_f64() * nodes as f64) as usize % nodes;
                ckt.capacitor(ids[a], ids[b], 1e-15);
            }
            // Vsources from *distinct* nodes to ground: full-rank incidence.
            let nsrc = 1 + (rng.next_f64() * (nodes as f64 / 2.0)) as usize;
            for &id in ids.iter().take(nsrc.min(nodes)) {
                ckt.vsource(id, Circuit::GROUND, Waveform::dc(1.0));
            }

            let pat = StampPattern::build_transient(&ckt);
            let n = pat.dim();
            let nn = nodes;
            let sym = SymbolicLu::analyze(&pat, topology_key(&ckt)).unwrap();

            let mut vals = Vec::new();
            sym.clear_values(&mut vals);
            let mut dense = DenseMatrix::zeros(n);
            let stamp = |r: usize, c: usize, v: f64, sym: &SymbolicLu,
                             vals: &mut Vec<f64>, dense: &mut DenseMatrix| {
                sym.add(vals, r, c, v);
                dense.add(r, c, v);
            };
            for d in 0..nn {
                stamp(d, d, 1e-9, &sym, &mut vals, &mut dense);
            }
            let mut next_branch = nn;
            for e in ckt.elements() {
                match e {
                    crate::elements::Element::Resistor { a, b, .. }
                    | crate::elements::Element::Capacitor { a, b, .. } => {
                        let g = 1e-4 + rng.next_f64() * 1e-2;
                        let (ia, ib) = (a.index(), b.index());
                        if ia > 0 {
                            stamp(ia - 1, ia - 1, g, &sym, &mut vals, &mut dense);
                        }
                        if ib > 0 {
                            stamp(ib - 1, ib - 1, g, &sym, &mut vals, &mut dense);
                        }
                        if ia > 0 && ib > 0 {
                            stamp(ia - 1, ib - 1, -g, &sym, &mut vals, &mut dense);
                            stamp(ib - 1, ia - 1, -g, &sym, &mut vals, &mut dense);
                        }
                    }
                    crate::elements::Element::Vsource { p, .. } => {
                        let br = next_branch;
                        next_branch += 1;
                        let i = p.index() - 1;
                        stamp(i, br, 1.0, &sym, &mut vals, &mut dense);
                        stamp(br, i, 1.0, &sym, &mut vals, &mut dense);
                    }
                    _ => {}
                }
            }
            let b: Vec<f64> = (0..n).map(|_| rng.next_f64() * 10.0 - 5.0).collect();

            let (mut lu, mut w, mut y) = (Vec::new(), Vec::new(), Vec::new());
            sym.factor(&vals, &mut lu, &mut w).unwrap();
            let mut xs = vec![0.0; n];
            sym.solve(&lu, &b, &mut xs, &mut y);

            let mut xd = b.clone();
            dense.solve_in_place(&mut xd).unwrap();
            for i in 0..n {
                let scale = 1.0 + xd[i].abs();
                prop_assert!((xs[i] - xd[i]).abs() < 1e-9 * scale,
                    "x[{}] sparse {} vs dense {}", i, xs[i], xd[i]);
            }
        }
    }

    #[test]
    fn structural_deficit_reports_singular_matrix() {
        // Shorted voltage source: branch row is empty, exactly the
        // PL0101 certificate; analysis must agree with the lint verdict.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource(a, a, Waveform::dc(1.0));
        ckt.resistor(a, Circuit::GROUND, 1e3);
        let pat = StampPattern::build_transient(&ckt);
        assert!(!pat.unmatched_rows().is_empty());
        let res = SymbolicLu::analyze(&pat, topology_key(&ckt));
        assert!(matches!(res, Err(Error::SingularMatrix { .. })));
    }

    #[test]
    fn numeric_zero_pivot_is_reported() {
        // A structurally sound pattern whose assembled values are singular
        // (two identical rows) must fail in the numeric phase, not panic.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.resistor(a, b, 1e3);
        ckt.resistor(a, Circuit::GROUND, 1e3);
        ckt.resistor(b, Circuit::GROUND, 1e3);
        let pat = StampPattern::build_transient(&ckt);
        let sym = SymbolicLu::analyze(&pat, topology_key(&ckt)).unwrap();
        let mut vals = Vec::new();
        sym.clear_values(&mut vals);
        // Rank-1 values: every pattern cell set to 1.0.
        for r in 0..pat.dim() {
            for &c in pat.row(r) {
                sym.add(&mut vals, r, c, 1.0);
            }
        }
        let (mut lu, mut w) = (Vec::new(), Vec::new());
        assert!(sym.factor(&vals, &mut lu, &mut w).is_err());
    }

    #[test]
    fn residual_matches_direct_evaluation() {
        let mut rng = Lcg::new(7);
        let ckt = random_circuit(&mut rng, 6);
        let pat = StampPattern::build_transient(&ckt);
        let n = pat.dim();
        let sym = SymbolicLu::analyze(&pat, topology_key(&ckt)).unwrap();
        let mut vals = Vec::new();
        sym.clear_values(&mut vals);
        let mut dense = vec![0.0; n * n];
        for r in 0..n {
            for &c in pat.row(r) {
                let v = rng.next_f64();
                sym.add(&mut vals, r, c, v);
                dense[r * n + c] += v;
            }
        }
        let x: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
        let rhs: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
        let mut out = Vec::new();
        let norm = sym.residual(&vals, &x, &rhs, &mut out);
        let mut maxn = 0.0f64;
        for r in 0..n {
            let mut acc = rhs[r];
            for c in 0..n {
                acc -= dense[r * n + c] * x[c];
            }
            assert!((out[r] - acc).abs() < 1e-12);
            maxn = maxn.max(acc.abs());
        }
        assert!((norm - maxn).abs() < 1e-12);
    }
}
