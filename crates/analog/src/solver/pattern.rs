//! Symbolic MNA stamp pattern: the set of matrix cells the assembly *may*
//! write for a given circuit topology.
//!
//! The pattern is the shared source of truth between two consumers:
//!
//! * **`pulsar-lint`** uses the DC pattern's *structural rank* (maximum
//!   row↔column matching) as a sound singularity certificate: if the
//!   matching leaves a row uncovered, every matrix with support inside the
//!   pattern is singular in exact arithmetic (diagnostics PL0101/PL0102).
//! * **The sparse solver** ([`crate::solver::sparse`]) uses the transient
//!   pattern to drive compressed assembly and a cached symbolic
//!   factorization, so numeric refactorization touches only true nonzeros.
//!
//! Both views must agree on what the assembly stamps, which is why the
//! construction lives here in `analog` next to the stamping code rather
//! than being re-derived in the lint crate.
//!
//! ## Construction rules (mirroring `System::assemble_fast`)
//!
//! The gmin floor puts every node diagonal in the pattern unconditionally.
//! Resistors stamp their 2×2 conductance block. Voltage sources stamp ±1
//! incidence pairs against their branch row/column. MOSFETs *may* stamp
//! drain/source rows against the drain/gate/source columns (cutoff devices
//! stamp nothing, so the MOSFET entries are a safe over-approximation). In
//! the DC pattern capacitors and current sources contribute nothing; the
//! transient pattern additionally holds the capacitor companion blocks and
//! the MOSFET lumped-capacitance companions (gate–source, gate–drain,
//! drain–bulk, with the bulk pinned to ground for NMOS and to the source
//! for PMOS, exactly as the assembly does).
//!
//! One refinement keeps the superset exact where it matters: a voltage
//! source whose two terminals collapse to the same MNA variable accumulates
//! `+1 − 1 = 0` exactly, so it contributes *no* pattern entries — its empty
//! branch row/column is precisely what the matching must see.

use crate::circuit::{Circuit, NodeId};
use crate::elements::Element;
use crate::solver::mna::mos_bulk;

/// Which assembly the pattern describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternMode {
    /// Capacitors and current sources open (operating-point assembly).
    Dc,
    /// Capacitive companion conductances included (transient assembly).
    /// A superset of [`PatternMode::Dc`] for the same circuit.
    Transient,
}

/// Row-major sparsity pattern of the MNA system of one circuit topology.
#[derive(Debug, Clone)]
pub struct StampPattern {
    /// `rows[r]` = sorted, deduplicated columns that may hold a nonzero in
    /// row `r`.
    rows: Vec<Vec<usize>>,
}

/// MNA variable index of a node (ground has none).
#[inline]
fn var(node: NodeId) -> Option<usize> {
    if node.is_ground() {
        None
    } else {
        Some(node.index() - 1)
    }
}

impl StampPattern {
    /// Builds the DC stamp pattern of `ckt` (capacitors and current
    /// sources open), including the gmin-floor diagonal. This is the
    /// pattern the lint singularity verdict is computed over.
    pub fn build_dc(ckt: &Circuit) -> Self {
        Self::build(ckt, PatternMode::Dc)
    }

    /// Builds the transient stamp pattern of `ckt`: the DC pattern plus
    /// every capacitive companion block. This is the pattern the sparse
    /// solver factorizes; being a superset of the DC pattern, one symbolic
    /// analysis serves both operating-point and transient solves.
    pub fn build_transient(ckt: &Circuit) -> Self {
        Self::build(ckt, PatternMode::Transient)
    }

    /// Builds the stamp pattern of `ckt` for the given assembly mode.
    pub fn build(ckt: &Circuit, mode: PatternMode) -> Self {
        let nn = ckt.node_count() - 1;
        let nv = ckt
            .elements()
            .iter()
            .filter(|e| matches!(e, Element::Vsource { .. }))
            .count();
        let n = nn + nv;
        let mut rows: Vec<Vec<usize>> = vec![Vec::new(); n];
        fn push(rows: &mut [Vec<usize>], r: usize, c: usize) {
            if !rows[r].contains(&c) {
                rows[r].push(c);
            }
        }
        // A two-terminal conductance block between `a` and `b`.
        fn push_g(rows: &mut [Vec<usize>], a: NodeId, b: NodeId) {
            let (ia, ib) = (var(a), var(b));
            if let Some(i) = ia {
                push(rows, i, i);
            }
            if let Some(j) = ib {
                push(rows, j, j);
            }
            if let (Some(i), Some(j)) = (ia, ib) {
                push(rows, i, j);
                push(rows, j, i);
            }
        }
        // Gmin floor: every node diagonal, unconditionally.
        for d in 0..nn {
            push(&mut rows, d, d);
        }
        let dynamic = mode == PatternMode::Transient;
        let mut next_branch = nn;
        for e in ckt.elements() {
            match e {
                Element::Resistor { a, b, .. } => push_g(&mut rows, *a, *b),
                Element::Capacitor { a, b, .. } => {
                    if dynamic {
                        push_g(&mut rows, *a, *b);
                    }
                }
                Element::Vsource { p, n, .. } => {
                    let br = next_branch;
                    next_branch += 1;
                    // Same-variable terminals cancel exactly; see module doc.
                    if var(*p) != var(*n) {
                        if let Some(i) = var(*p) {
                            push(&mut rows, i, br);
                            push(&mut rows, br, i);
                        }
                        if let Some(j) = var(*n) {
                            push(&mut rows, j, br);
                            push(&mut rows, br, j);
                        }
                    }
                }
                Element::Mosfet(m) => {
                    // Drain and source rows may see the d/g/s columns; the
                    // gate row sees nothing in DC (zero gate current).
                    let cols = [var(m.d), var(m.g), var(m.s)];
                    for row in [var(m.d), var(m.s)].into_iter().flatten() {
                        for col in cols.into_iter().flatten() {
                            push(&mut rows, row, col);
                        }
                    }
                    if dynamic {
                        // Lumped device capacitances as companion blocks.
                        push_g(&mut rows, m.g, m.s);
                        push_g(&mut rows, m.g, m.d);
                        push_g(&mut rows, m.d, mos_bulk(m));
                    }
                }
                // Current sources touch the RHS only.
                Element::Isource { .. } => {}
            }
        }
        for row in &mut rows {
            row.sort_unstable();
        }
        StampPattern { rows }
    }

    /// Matrix dimension (node-voltage unknowns + voltage-source branches).
    pub fn dim(&self) -> usize {
        self.rows.len()
    }

    /// Number of potentially-nonzero cells.
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// The sorted columns that may hold a nonzero in row `r`.
    pub fn row(&self, r: usize) -> &[usize] {
        &self.rows[r]
    }

    /// Maximum row↔column matching via Kuhn's augmenting-path algorithm;
    /// returns `col_match` (`col_match[c]` = row matched to column `c`)
    /// plus the rows left unmatched. The matching is empty-deficit iff the
    /// pattern has full structural rank, and doubles as the transversal
    /// (diagonal-securing row permutation) of the sparse factorization.
    pub(crate) fn matching(&self) -> (Vec<Option<usize>>, Vec<usize>) {
        let n = self.dim();
        let mut col_match: Vec<Option<usize>> = vec![None; n];
        let mut visited = vec![false; n];
        let mut unmatched = Vec::new();
        // Seed with diagonal entries before augmenting. Node rows always
        // carry their gmin-floored diagonal, which is numerically nonzero
        // in *every* solve regime — whereas an arbitrary maximum matching
        // may route a node row through a capacitor-only entry, a pivot
        // that is exactly zero in DC (the transient pattern is a superset
        // of DC; see `build_transient`). Seeding changes only which
        // maximum matching is found, never its size, so the lint sprank
        // verdict is unaffected.
        for (r, cm) in col_match.iter_mut().enumerate() {
            if self.rows[r].binary_search(&r).is_ok() {
                *cm = Some(r);
            }
        }
        for r in 0..n {
            if col_match[r] == Some(r) {
                continue;
            }
            visited.fill(false);
            if !self.augment(r, &mut visited, &mut col_match) {
                unmatched.push(r);
            }
        }
        (col_match, unmatched)
    }

    /// Rows no maximum matching can cover (empty iff the pattern has full
    /// structural rank). A non-empty result proves every matrix with
    /// support inside the pattern is singular in exact arithmetic.
    pub fn unmatched_rows(&self) -> Vec<usize> {
        self.matching().1
    }

    fn augment(&self, r: usize, visited: &mut [bool], col_match: &mut [Option<usize>]) -> bool {
        for &c in &self.rows[r] {
            if visited[c] {
                continue;
            }
            visited[c] = true;
            if col_match[c].is_none()
                || self.augment(
                    match col_match[c] {
                        Some(prev) => prev,
                        None => unreachable!("guarded by is_none"),
                    },
                    visited,
                    col_match,
                )
            {
                col_match[c] = Some(r);
                return true;
            }
        }
        false
    }
}

/// A cheap structural fingerprint of a circuit: element kinds and terminal
/// indices (FNV-1a), *excluding every parameter value*. Two circuits share
/// a key exactly when they produce the same stamp pattern and unknown
/// layout, so a symbolic factorization cached under this key stays valid
/// across resistance sweeps, source-waveform changes and Monte Carlo
/// parameter fluctuation — the invariance the whole caching scheme rests
/// on. (Value-dependent stamping guards such as the `c > 0` companion
/// check only ever *skip* writes, which a superset pattern tolerates.)
pub fn topology_key(ckt: &Circuit) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut eat = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    eat(ckt.node_count() as u64);
    for e in ckt.elements() {
        match e {
            Element::Resistor { a, b, .. } => {
                eat(1);
                eat(a.index() as u64);
                eat(b.index() as u64);
            }
            Element::Capacitor { a, b, .. } => {
                eat(2);
                eat(a.index() as u64);
                eat(b.index() as u64);
            }
            Element::Vsource { p, n, .. } => {
                eat(3);
                eat(p.index() as u64);
                eat(n.index() as u64);
            }
            Element::Isource { p, n, .. } => {
                eat(4);
                eat(p.index() as u64);
                eat(n.index() as u64);
            }
            Element::Mosfet(m) => {
                eat(5);
                eat(match m.kind {
                    crate::elements::MosType::Nmos => 0,
                    crate::elements::MosType::Pmos => 1,
                });
                eat(m.d.index() as u64);
                eat(m.g.index() as u64);
                eat(m.s.index() as u64);
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::elements::{MosType, Mosfet, MosfetParams, Waveform};

    fn mos(d: NodeId, g: NodeId, s: NodeId) -> Mosfet {
        Mosfet {
            kind: MosType::Nmos,
            d,
            g,
            s,
            params: MosfetParams {
                vt0: 0.4,
                kp: 170e-6,
                lambda: 0.05,
                w: 1e-6,
                l: 0.18e-6,
                cgs: 1e-15,
                cgd: 1e-15,
                cdb: 1e-15,
            },
        }
    }

    #[test]
    fn transient_pattern_is_superset_of_dc() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource(vdd, Circuit::GROUND, Waveform::dc(1.8));
        ckt.resistor(vdd, a, 1e3);
        ckt.capacitor(a, b, 1e-15);
        ckt.add_mosfet(mos(b, a, Circuit::GROUND));
        let dc = StampPattern::build_dc(&ckt);
        let tr = StampPattern::build_transient(&ckt);
        assert_eq!(dc.dim(), tr.dim());
        for r in 0..dc.dim() {
            for c in dc.row(r) {
                assert!(tr.row(r).contains(c), "({r},{c}) missing from transient");
            }
        }
        // The cap block (a,b) appears only in the transient pattern.
        let (ia, ib) = (a.index() - 1, b.index() - 1);
        assert!(!dc.row(ia).contains(&ib));
        assert!(tr.row(ia).contains(&ib));
    }

    #[test]
    fn rows_are_sorted_and_unique() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource(a, Circuit::GROUND, Waveform::dc(1.0));
        ckt.resistor(a, b, 1e3);
        ckt.resistor(a, b, 2e3); // duplicate block must dedupe
        let p = StampPattern::build_transient(&ckt);
        for r in 0..p.dim() {
            let row = p.row(r);
            assert!(row.windows(2).all(|w| w[0] < w[1]), "row {r} not strict");
        }
    }

    #[test]
    fn topology_key_ignores_values_but_sees_structure() {
        let mut a = Circuit::new();
        let n1 = a.node("x");
        a.vsource(n1, Circuit::GROUND, Waveform::dc(1.0));
        let r = a.resistor(n1, Circuit::GROUND, 1e3);
        let mut b = a.clone();
        let k_a = topology_key(&a);
        // Value change: same key.
        b.set_resistance(r, 9e9).unwrap();
        assert_eq!(k_a, topology_key(&b));
        // Structural change: different key.
        let mut c = a.clone();
        c.resistor(n1, Circuit::GROUND, 1e3);
        assert_ne!(k_a, topology_key(&c));
    }
}
