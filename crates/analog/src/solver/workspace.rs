//! Reusable per-thread solver scratch memory.
//!
//! Every analysis in this crate solves the same MNA topology over and over:
//! a resistance sweep re-solves one circuit at dozens of operating points,
//! and a Monte Carlo study multiplies that by thousands of samples. A
//! [`SolverWorkspace`] owns every buffer those solves need — the MNA
//! matrix, RHS, Newton scratch, capacitor companion states, breakpoint
//! list and the transient double-buffers — so repeated solves reuse both
//! the allocations and the symbolic stamp layout instead of rebuilding
//! them per call.
//!
//! Reuse is allocation-only: the arithmetic performed with a warm
//! workspace is bit-for-bit identical to a fresh one (asserted by the
//! `workspace_equivalence` property tests). The one opt-in exception is
//! [`SolverWorkspace::enable_dc_warm_start`], which seeds Newton from the
//! previous DC solution and therefore converges to the same operating
//! point only within solver tolerances.

use crate::circuit::NodeId;
use crate::solver::matrix::DenseMatrix;
use crate::solver::mna::{CapState, Method};

/// Scratch for one assembled MNA system: matrix, RHS, Newton update and
/// the element→branch-current map (the symbolic stamp layout).
#[derive(Debug, Default)]
pub(crate) struct SysScratch {
    pub matrix: DenseMatrix,
    pub rhs: Vec<f64>,
    /// Newton update vector, hoisted out of `solve_newton`.
    pub newton: Vec<f64>,
    /// Element index → branch-current unknown index, for voltage sources.
    pub branch_index: Vec<Option<usize>>,
    /// Per-element hoisted value, indexed by element position: `1/R` for
    /// resistors, the scaled source value at the current time for sources.
    /// Refreshed once per Newton *solve* instead of once per iteration.
    pub elem_val: Vec<f64>,
    /// Companion conductance per capacitive branch (stamping order).
    /// Depends only on `(farads, h, method)`, so it survives across solve
    /// calls while the step size is unchanged — `cap_geq_key` tracks
    /// validity. Invalidated whenever a `System` is rebuilt.
    pub cap_geq: Vec<f64>,
    /// Companion history current per capacitive branch, refreshed every
    /// solve call (it depends on the previous accepted point).
    pub cap_ieq: Vec<f64>,
    /// `(h.to_bits(), method)` that `cap_geq` was computed for.
    pub cap_geq_key: Option<(u64, Method)>,
}

/// Scratch for the transient engine: companion states, the capacitive
/// branch list, breakpoints and the solution double-buffers.
#[derive(Debug, Default)]
pub(crate) struct TranScratch {
    pub caps: Vec<CapState>,
    pub cap_branches: Vec<(NodeId, NodeId, f64)>,
    pub breakpoints: Vec<f64>,
    /// Accepted solution at the current time point.
    pub x: Vec<f64>,
    /// Candidate solution for the step being attempted (double-buffer
    /// partner of `x`; swapped on acceptance instead of cloned).
    pub xn: Vec<f64>,
    /// Solution at the previously *accepted* point, for the LTE predictor.
    pub x_prev: Vec<f64>,
}

/// Reusable scratch memory for repeated solves of the same (or similar)
/// circuit topology.
///
/// Create one per thread — or one per [`crate::Circuit`]-owning object such
/// as a built path — and pass it to [`crate::Circuit::transient_with`] /
/// [`crate::Circuit::dc_op_with`]. Buffers are resized on entry, so a
/// workspace may be shared across circuits of different sizes; reuse only
/// pays off when the topology size is stable.
///
/// A default-constructed workspace is empty and allocates lazily on first
/// use; [`crate::Circuit::transient`] and [`crate::Circuit::dc_op`] create
/// one internally per call, which is the "fresh allocation" baseline the
/// benchmarks compare against.
#[derive(Debug, Default)]
pub struct SolverWorkspace {
    pub(crate) sys: SysScratch,
    pub(crate) tran: TranScratch,
    /// When true, DC solves seed Newton from `warm_x` (the previous DC
    /// solution for this workspace) before falling back to the cold
    /// gmin/source-stepping ladder.
    pub(crate) warm_dc: bool,
    /// Last successful DC solution, kept only while warm starting is on.
    pub(crate) warm_x: Vec<f64>,
}

impl SolverWorkspace {
    /// Creates an empty workspace; buffers are allocated on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables or disables DC warm starting.
    ///
    /// When enabled, [`crate::Circuit::dc_op_with`] first tries Newton from
    /// the previous successful DC solution held in this workspace — the
    /// intended use is a resistance sweep, where consecutive operating
    /// points are close. A failed warm attempt falls back to the cold
    /// ladder, so robustness is unaffected.
    ///
    /// **Not bit-exact:** a warm start changes the Newton trajectory, so
    /// the operating point matches a cold solve only within solver
    /// tolerances (≈1 µV). Leave this off (the default) wherever exact
    /// reproducibility across call orders matters.
    pub fn enable_dc_warm_start(&mut self, on: bool) {
        self.warm_dc = on;
        if !on {
            self.warm_x.clear();
        }
    }

    /// Whether DC warm starting is currently enabled.
    pub fn dc_warm_start(&self) -> bool {
        self.warm_dc
    }

    /// Drops the stored DC solution so the next solve runs cold, without
    /// disabling warm starting for subsequent solves.
    pub fn clear_dc_warm_start(&mut self) {
        self.warm_x.clear();
    }
}
