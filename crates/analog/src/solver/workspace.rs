//! Reusable per-thread solver scratch memory.
//!
//! Every analysis in this crate solves the same MNA topology over and over:
//! a resistance sweep re-solves one circuit at dozens of operating points,
//! and a Monte Carlo study multiplies that by thousands of samples. A
//! [`SolverWorkspace`] owns every buffer those solves need — the MNA
//! matrix, RHS, Newton scratch, capacitor companion states, breakpoint
//! list and the transient double-buffers — so repeated solves reuse both
//! the allocations and the symbolic stamp layout instead of rebuilding
//! them per call.
//!
//! Reuse is allocation-only: the arithmetic performed with a warm
//! workspace is bit-for-bit identical to a fresh one (asserted by the
//! `workspace_equivalence` property tests). Two exceptions trade bitwise
//! identity for speed, within solver tolerances: the opt-in
//! [`SolverWorkspace::enable_dc_warm_start`], which seeds Newton from the
//! previous DC solution, and the sparse linear engine, which [`SolverMode`]
//! engages above a crossover dimension (different elimination order ⇒
//! different rounding; the `sparse_solver` tests bound the drift).

use std::sync::Arc;
use std::sync::OnceLock;

use crate::circuit::{Circuit, NodeId};
use crate::solver::matrix::DenseMatrix;
use crate::solver::mna::{CapState, Method};
use crate::solver::pattern::{topology_key, StampPattern};
use crate::solver::sparse::{global_recorder, SymbolicLu};
use pulsar_obs::{CancelToken, Counter, Phase, Recorder};

/// Linear-engine selection for a [`SolverWorkspace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverMode {
    /// Sparse above the crossover dimension (24 unknowns), dense below
    /// (the default). Small systems fit the dense kernel's cache
    /// behavior; large chain-structured systems win from the sparse
    /// path.
    #[default]
    Auto,
    /// Always dense — the preserved, bit-identical-to-baseline engine.
    ForceDense,
    /// Always sparse (when the pattern is structurally sound); used by
    /// equivalence tests and benchmarks.
    ForceSparse,
}

/// Below this many MNA unknowns `SolverMode::Auto` stays dense: the dense
/// LU already skips structural zeros, and for small matrices its linear
/// memory layout beats the sparse engine's indirection (measured in
/// `bench_hotpath`; see BENCH_pr4.json). The paper-scale 7-gate path is
/// 12 unknowns (dense); a 32-stage inverter chain is 36 (sparse).
pub(crate) const SPARSE_CROSSOVER: usize = 24;

/// `PULSAR_FORCE_DENSE=1` routes every solve through the dense engine
/// regardless of [`SolverMode`] — the field escape hatch if the sparse
/// path ever misbehaves. Read once per process.
pub(crate) fn force_dense_env() -> bool {
    static FLAG: OnceLock<bool> = OnceLock::new();
    *FLAG.get_or_init(|| {
        std::env::var("PULSAR_FORCE_DENSE")
            .map(|v| v == "1")
            .unwrap_or(false)
    })
}

/// An opaque, shareable handle to a cached symbolic factorization.
///
/// Obtained from [`SolverWorkspace::prime_symbolic`] on one instance of a
/// circuit topology and installed into sibling workspaces with
/// [`SolverWorkspace::adopt_symbolic`], so a Monte Carlo study pays for
/// exactly one symbolic analysis per topology. Cloning shares (never
/// recomputes) the analysis. The handle remembers the structural
/// fingerprint of the circuit it was computed for; adopting it into a
/// workspace that then solves a *different* topology is safe — the
/// mismatch is detected and a fresh analysis runs.
#[derive(Debug, Clone)]
pub struct SymbolicCache(pub(crate) Arc<SymbolicLu>);

impl SymbolicCache {
    /// Matrix dimension the analysis was computed for.
    pub fn dim(&self) -> usize {
        self.0.dim()
    }

    /// Nonzero count of the assembly (stamp) pattern.
    pub fn nnz(&self) -> usize {
        self.0.nnz()
    }

    /// Nonzero count of the filled `L+U` pattern (≥ `nnz`; the difference
    /// is the fill the ordering could not avoid).
    pub fn lu_nnz(&self) -> usize {
        self.0.lu_nnz()
    }

    /// Structural fingerprint of the circuit this analysis belongs to.
    pub fn topology_key(&self) -> u64 {
        self.0.topo_key
    }

    /// The fill-reducing row permutation (permuted row → original row).
    pub fn row_permutation(&self) -> &[usize] {
        self.0.row_permutation()
    }

    /// The fill-reducing column permutation (permuted col → original col).
    pub fn col_permutation(&self) -> &[usize] {
        self.0.col_permutation()
    }
}

/// The factor environment: factors are valid only for one circuit
/// topology, gmin shunt and companion discretization `(h, method)`.
/// (The source scale is excluded on purpose: it touches the RHS only.)
pub(crate) type FactorEnv = (u64, u64, Option<(u64, Method)>);

/// Sparse-engine state carried by [`SysScratch`]: the cached symbolic
/// object, value buffers for assembly and factors, and the
/// modified-Newton bookkeeping.
#[derive(Debug, Default)]
pub(crate) struct SparseScratch {
    /// Engine selection for this workspace.
    pub mode: SolverMode,
    /// Cached symbolic factorization (shared across samples via `Arc`).
    pub symbolic: Option<Arc<SymbolicLu>>,
    /// Topology key whose symbolic analysis failed (structural-rank
    /// deficit); cached so a singular topology is analyzed once, not per
    /// solve.
    pub failed_key: Option<u64>,
    /// Decision for the current `System`: sparse engine engaged.
    pub active: bool,
    /// Assembled matrix values over the stamp pattern.
    pub a_vals: Vec<f64>,
    /// Numeric `L+U` values over the filled pattern.
    pub lu_vals: Vec<f64>,
    /// Factorization work vector.
    pub w: Vec<f64>,
    /// Triangular-solve work vector.
    pub y: Vec<f64>,
    /// Newton residual `b − A·x`.
    pub resid: Vec<f64>,
    /// Newton update `A⁻¹·resid`.
    pub delta: Vec<f64>,
    /// Initial guess saved across a sparse attempt, so a dense retry
    /// after sparse non-convergence starts from the same point.
    pub x_save: Vec<f64>,
    /// Whether `lu_vals` holds valid factors.
    pub factored: bool,
    /// Environment the factors were computed in.
    pub factor_env: Option<FactorEnv>,
    /// User-requested Jacobian reuse (modified Newton).
    pub jr_user: bool,
    /// Escalation-ladder suspension of Jacobian reuse: robust retries run
    /// exact Newton.
    pub jr_suspended: bool,
}

impl SparseScratch {
    /// Decides whether the sparse engine handles the next solves of `ckt`
    /// (`nu` MNA unknowns) and, if so, ensures a matching symbolic
    /// factorization is cached. Called once per `System` construction.
    /// `rec` is the per-run recorder of the owning workspace; the
    /// process-wide registry is updated regardless.
    pub fn prepare(&mut self, ckt: &Circuit, nu: usize, rec: &Recorder) -> bool {
        self.active = false;
        if force_dense_env() {
            return false;
        }
        let want = match self.mode {
            SolverMode::ForceDense => false,
            SolverMode::ForceSparse => true,
            SolverMode::Auto => nu >= SPARSE_CROSSOVER,
        };
        if !want {
            return false;
        }
        let key = topology_key(ckt);
        let cached = matches!(&self.symbolic, Some(s) if s.topo_key == key && s.dim() == nu);
        if !cached {
            if self.failed_key == Some(key) {
                return false;
            }
            let _span = rec.span(Phase::SymbolicAnalysis);
            let pattern = StampPattern::build_transient(ckt);
            rec.add(Counter::SymbolicAnalyses, 1);
            match SymbolicLu::analyze(&pattern, key) {
                Ok(sym) => {
                    self.symbolic = Some(Arc::new(sym));
                    self.factored = false;
                }
                Err(_) => {
                    // Structural-rank deficit: remember and let the dense
                    // engine report the identical SingularMatrix error.
                    self.failed_key = Some(key);
                    global_recorder().add(Counter::DenseFallbacks, 1);
                    rec.add(Counter::DenseFallbacks, 1);
                    return false;
                }
            }
        }
        self.active = true;
        true
    }

    /// Whether modified-Newton Jacobian reuse is in effect.
    pub fn jacobian_reuse_active(&self) -> bool {
        self.jr_user && !self.jr_suspended
    }

    /// Drops any numeric factors (forces a refactorization next solve).
    pub fn invalidate_factors(&mut self) {
        self.factored = false;
        self.factor_env = None;
    }
}

/// Scratch for one assembled MNA system: matrix, RHS, Newton update and
/// the element→branch-current map (the symbolic stamp layout).
#[derive(Debug, Default)]
pub(crate) struct SysScratch {
    pub matrix: DenseMatrix,
    pub rhs: Vec<f64>,
    /// Newton update vector, hoisted out of `solve_newton`.
    pub newton: Vec<f64>,
    /// Element index → branch-current unknown index, for voltage sources.
    pub branch_index: Vec<Option<usize>>,
    /// Per-element hoisted value, indexed by element position: `1/R` for
    /// resistors, the scaled source value at the current time for sources.
    /// Refreshed once per Newton *solve* instead of once per iteration.
    pub elem_val: Vec<f64>,
    /// Companion conductance per capacitive branch (stamping order).
    /// Depends only on `(farads, h, method)`, so it survives across solve
    /// calls while the step size is unchanged — `cap_geq_key` tracks
    /// validity. Invalidated whenever a `System` is rebuilt.
    pub cap_geq: Vec<f64>,
    /// Companion history current per capacitive branch, refreshed every
    /// solve call (it depends on the previous accepted point).
    pub cap_ieq: Vec<f64>,
    /// `(h.to_bits(), method)` that `cap_geq` was computed for.
    pub cap_geq_key: Option<(u64, Method)>,
    /// Sparse-engine state (symbolic cache, factors, Jacobian reuse).
    pub sparse: SparseScratch,
    /// Per-run observability handle; disabled by default, so every
    /// instrumentation call is one `Option` branch.
    pub recorder: Recorder,
    /// Cooperative cancellation token, checked once per accepted point in
    /// the transient step loop. `None` (the default) skips the check
    /// entirely, so uncancellable runs pay one `Option` branch per point.
    pub cancel: Option<CancelToken>,
}

/// Scratch for the transient engine: companion states, the capacitive
/// branch list, breakpoints and the solution double-buffers.
#[derive(Debug, Default)]
pub(crate) struct TranScratch {
    pub caps: Vec<CapState>,
    pub cap_branches: Vec<(NodeId, NodeId, f64)>,
    pub breakpoints: Vec<f64>,
    /// Accepted solution at the current time point.
    pub x: Vec<f64>,
    /// Candidate solution for the step being attempted (double-buffer
    /// partner of `x`; swapped on acceptance instead of cloned).
    pub xn: Vec<f64>,
    /// Solution at the previously *accepted* point, for the LTE predictor.
    pub x_prev: Vec<f64>,
}

/// Reusable scratch memory for repeated solves of the same (or similar)
/// circuit topology.
///
/// Create one per thread — or one per [`crate::Circuit`]-owning object such
/// as a built path — and pass it to [`crate::Circuit::transient_with`] /
/// [`crate::Circuit::dc_op_with`]. Buffers are resized on entry, so a
/// workspace may be shared across circuits of different sizes; reuse only
/// pays off when the topology size is stable.
///
/// A default-constructed workspace is empty and allocates lazily on first
/// use; [`crate::Circuit::transient`] and [`crate::Circuit::dc_op`] create
/// one internally per call, which is the "fresh allocation" baseline the
/// benchmarks compare against.
#[derive(Debug, Default)]
pub struct SolverWorkspace {
    pub(crate) sys: SysScratch,
    pub(crate) tran: TranScratch,
    /// When true, DC solves seed Newton from `warm_x` (the previous DC
    /// solution for this workspace) before falling back to the cold
    /// gmin/source-stepping ladder.
    pub(crate) warm_dc: bool,
    /// Last successful DC solution, kept only while warm starting is on.
    pub(crate) warm_x: Vec<f64>,
}

impl SolverWorkspace {
    /// Creates an empty workspace; buffers are allocated on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables or disables DC warm starting.
    ///
    /// When enabled, [`crate::Circuit::dc_op_with`] first tries Newton from
    /// the previous successful DC solution held in this workspace — the
    /// intended use is a resistance sweep, where consecutive operating
    /// points are close. A failed warm attempt falls back to the cold
    /// ladder, so robustness is unaffected.
    ///
    /// **Not bit-exact:** a warm start changes the Newton trajectory, so
    /// the operating point matches a cold solve only within solver
    /// tolerances (≈1 µV). Leave this off (the default) wherever exact
    /// reproducibility across call orders matters.
    pub fn enable_dc_warm_start(&mut self, on: bool) {
        self.warm_dc = on;
        if !on {
            self.warm_x.clear();
        }
    }

    /// Whether DC warm starting is currently enabled.
    pub fn dc_warm_start(&self) -> bool {
        self.warm_dc
    }

    /// Drops the stored DC solution so the next solve runs cold, without
    /// disabling warm starting for subsequent solves.
    pub fn clear_dc_warm_start(&mut self) {
        self.warm_x.clear();
    }

    /// Selects the linear engine for this workspace. The default,
    /// [`SolverMode::Auto`], switches from dense to sparse at a measured
    /// crossover dimension. `PULSAR_FORCE_DENSE=1` in the environment
    /// overrides every mode.
    pub fn set_solver_mode(&mut self, mode: SolverMode) {
        self.sys.sparse.mode = mode;
        self.sys.sparse.invalidate_factors();
    }

    /// The currently selected [`SolverMode`].
    pub fn solver_mode(&self) -> SolverMode {
        self.sys.sparse.mode
    }

    /// Enables opt-in modified-Newton Jacobian reuse on the sparse engine:
    /// while the Newton residual keeps contracting, iterations reuse the
    /// existing LU factors (skipping the numeric refactorization) and a
    /// stall triggers a full refactorize-and-retry.
    ///
    /// **Not bit-exact:** reusing a stale Jacobian changes the Newton
    /// trajectory, so results agree with exact Newton only within solver
    /// tolerances. Robust retries (`suspend_jacobian_reuse`) run exact
    /// Newton regardless of this flag. No effect on the dense engine.
    pub fn set_jacobian_reuse(&mut self, on: bool) {
        self.sys.sparse.jr_user = on;
        if !on {
            self.sys.sparse.invalidate_factors();
        }
    }

    /// Whether modified-Newton Jacobian reuse has been requested.
    pub fn jacobian_reuse(&self) -> bool {
        self.sys.sparse.jr_user
    }

    /// Temporarily disables Jacobian reuse without clearing the user's
    /// request — the hook the robustness escalation ladder uses so
    /// resilience retries always run exact Newton with fresh factors.
    pub fn suspend_jacobian_reuse(&mut self, suspend: bool) {
        self.sys.sparse.jr_suspended = suspend;
        if suspend {
            self.sys.sparse.invalidate_factors();
        }
    }

    /// Runs (or reuses) the symbolic analysis of `ckt` under this
    /// workspace's engine selection and returns a shareable handle, or
    /// `None` when the sparse engine would not be used for this circuit
    /// (mode/crossover/escape hatch) or the pattern is structurally
    /// singular. Install the handle into sibling workspaces with
    /// [`SolverWorkspace::adopt_symbolic`] so a whole study performs
    /// exactly one analysis per topology.
    pub fn prime_symbolic(&mut self, ckt: &Circuit) -> Option<SymbolicCache> {
        let rec = self.sys.recorder.clone();
        if self.sys.sparse.prepare(ckt, ckt.unknown_count(), &rec) {
            self.sys.sparse.symbolic.clone().map(SymbolicCache)
        } else {
            None
        }
    }

    /// Installs a symbolic factorization primed elsewhere (see
    /// [`SolverWorkspace::prime_symbolic`]). Safe against mismatches: the
    /// handle's structural fingerprint is revalidated before every use, so
    /// adopting a cache for a different topology merely costs a fresh
    /// analysis.
    pub fn adopt_symbolic(&mut self, cache: &SymbolicCache) {
        self.sys.sparse.symbolic = Some(Arc::clone(&cache.0));
        self.sys.sparse.invalidate_factors();
    }

    /// Installs a per-run [`Recorder`]; every solve through this workspace
    /// then records counters, spans, and histograms there in addition to
    /// the process-wide registry behind the deprecated
    /// `solver_counters()`. The default recorder is disabled, in which
    /// case each instrumentation point costs a single `Option` branch and
    /// never reads the clock (overhead measured in `bench_hotpath`).
    pub fn set_recorder(&mut self, rec: Recorder) {
        self.sys.recorder = rec;
    }

    /// The per-run recorder installed on this workspace.
    pub fn recorder(&self) -> &Recorder {
        &self.sys.recorder
    }

    /// Installs a cooperative [`CancelToken`]; the transient step loop
    /// then checks it once per accepted point and bails out with
    /// [`Error::Cancelled`](crate::Error::Cancelled) when it trips. The
    /// check is one (for a child token, two) relaxed atomic loads, so it
    /// never contends with other workers on the hot path.
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.sys.cancel = Some(token);
    }

    /// The cancellation token installed on this workspace, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.sys.cancel.as_ref()
    }
}
