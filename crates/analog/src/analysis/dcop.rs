//! DC operating-point analysis with gmin stepping and a source-stepping
//! fallback for stubborn circuits.

use crate::circuit::{Circuit, NodeId};
use crate::elements::Element;
use crate::error::Error;
use crate::solver::mna::System;
use crate::solver::workspace::{SolverWorkspace, SysScratch};

/// Solved DC operating point of a circuit.
///
/// Produced by [`Circuit::dc_op`]; exposes node voltages and (internally)
/// the full MNA solution vector used to seed transient analysis.
#[derive(Debug, Clone)]
pub struct DcSolution {
    pub(crate) x: Vec<f64>,
}

impl DcSolution {
    /// Voltage of `node` relative to ground.
    pub fn voltage(&self, node: NodeId) -> f64 {
        System::node_voltage(&self.x, node)
    }

    /// Current flowing *out of the positive terminal* of the voltage
    /// source at element index `idx`, amperes. For a supply rail this is
    /// the quiescent current the circuit draws (I_DDQ), a classic bridge
    /// detector: a resistive short between fighting drivers shows up as
    /// elevated static current.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] if `idx` is not a voltage source of
    /// `circuit`.
    pub fn source_current(&self, circuit: &Circuit, idx: usize) -> Result<f64, Error> {
        match circuit.elements().get(idx) {
            Some(Element::Vsource { .. }) => {}
            _ => {
                return Err(Error::InvalidParameter {
                    element: "vsource",
                    parameter: "index",
                    value: idx as f64,
                })
            }
        }
        // Branch variables follow the node voltages, in vsource order.
        let nn = circuit.node_count() - 1;
        let branch = circuit.elements()[..idx]
            .iter()
            .filter(|e| matches!(e, Element::Vsource { .. }))
            .count();
        // MNA's branch current is defined flowing p → n *through the
        // source*; the current delivered out of the positive terminal is
        // its negation.
        Ok(-self.x[nn + branch])
    }
}

impl Circuit {
    /// Computes the DC operating point with all sources at their `t = 0`
    /// values (capacitors open).
    ///
    /// The solver first tries plain Newton–Raphson, then gmin stepping
    /// (shunting every node with a decreasing conductance), then source
    /// stepping (ramping all sources from zero). This three-stage strategy
    /// converges for all static-CMOS structures used in this project.
    ///
    /// # Errors
    ///
    /// [`Error::NoConvergence`] if all strategies fail, or
    /// [`Error::SingularMatrix`] for structurally defective circuits.
    pub fn dc_op(&self) -> Result<DcSolution, Error> {
        self.dc_op_at(0.0)
    }

    /// DC operating point with sources evaluated at time `t`.
    pub fn dc_op_at(&self, t: f64) -> Result<DcSolution, Error> {
        self.dc_op_with(t, &mut SolverWorkspace::new())
    }

    /// DC operating point reusing a caller-owned [`SolverWorkspace`].
    ///
    /// Numerically identical to [`Circuit::dc_op_at`] — workspace reuse
    /// only recycles allocations — unless the workspace has
    /// [`SolverWorkspace::enable_dc_warm_start`] switched on, in which case
    /// Newton is first seeded from the workspace's previous DC solution
    /// (with a cold-ladder fallback) and the result matches a cold solve
    /// within solver tolerances rather than bit-exactly.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Circuit::dc_op`].
    pub fn dc_op_with(&self, t: f64, ws: &mut SolverWorkspace) -> Result<DcSolution, Error> {
        let mut x = Vec::new();
        let SolverWorkspace {
            sys,
            warm_dc,
            warm_x,
            ..
        } = ws;
        let warm = if *warm_dc { Some(warm_x) } else { None };
        self.dc_into(t, sys, warm, &mut x)?;
        Ok(DcSolution { x })
    }

    /// DC solve into a caller-owned solution vector, using `scratch` for
    /// all intermediate storage and optionally warm-starting from (and
    /// refreshing) `warm`.
    pub(crate) fn dc_into(
        &self,
        t: f64,
        scratch: &mut SysScratch,
        warm: Option<&mut Vec<f64>>,
        x: &mut Vec<f64>,
    ) -> Result<(), Error> {
        let mut sys = System::new(self, scratch);
        x.clear();
        x.resize(sys.unknowns(), 0.0);

        let mut warm = warm;
        if let Some(w) = warm.as_deref_mut() {
            if w.len() == x.len() {
                x.copy_from_slice(w);
                if sys
                    .solve_newton(x, t, None, 1.0, 0.0, 100, "dc operating point (warm)")
                    .is_ok()
                {
                    w.copy_from_slice(x);
                    return Ok(());
                }
                // Warm attempt failed: fall back to the cold ladder.
                x.fill(0.0);
            }
        }

        dc_cold(&mut sys, x, t)?;
        if let Some(w) = warm {
            w.clear();
            w.extend_from_slice(x);
        }
        Ok(())
    }
}

/// The three-stage cold DC strategy: direct Newton, then gmin stepping,
/// then source stepping. `x` must be zeroed on entry.
fn dc_cold(sys: &mut System<'_, '_>, x: &mut [f64], t: f64) -> Result<(), Error> {
    // 1. Direct attempt.
    if sys
        .solve_newton(x, t, None, 1.0, 0.0, 100, "dc operating point")
        .is_ok()
    {
        return Ok(());
    }

    // 2. Gmin stepping: solve with a large shunt conductance and relax
    // it geometrically, warm-starting each stage.
    x.fill(0.0);
    let mut gmin = 1e-2;
    let mut ok = true;
    while gmin > 1e-13 {
        if sys
            .solve_newton(x, t, None, 1.0, gmin, 100, "dc operating point (gmin)")
            .is_err()
        {
            ok = false;
            break;
        }
        gmin /= 10.0;
    }
    if ok {
        // Final solve with only the built-in gmin floor.
        if sys
            .solve_newton(x, t, None, 1.0, 0.0, 100, "dc operating point")
            .is_ok()
        {
            return Ok(());
        }
    }

    // 3. Source stepping.
    x.fill(0.0);
    let mut scale = 0.0_f64;
    while scale < 1.0 {
        scale = (scale + 0.1).min(1.0);
        sys.solve_newton(x, t, None, scale, 0.0, 100, "dc operating point (source)")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::elements::{MosType, Mosfet, MosfetParams, Waveform};

    fn params(kind: MosType, w: f64) -> MosfetParams {
        MosfetParams {
            vt0: if matches!(kind, MosType::Nmos) {
                0.4
            } else {
                -0.42
            },
            kp: if matches!(kind, MosType::Nmos) {
                170e-6
            } else {
                60e-6
            },
            lambda: 0.06,
            w,
            l: 0.18e-6,
            cgs: 1e-15,
            cgd: 1e-15,
            cdb: 1e-15,
        }
    }

    /// Builds a CMOS inverter; returns (circuit, in, out).
    fn inverter(vin: f64) -> (Circuit, NodeId, NodeId) {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource(vdd, Circuit::GROUND, Waveform::dc(1.8));
        ckt.vsource(inp, Circuit::GROUND, Waveform::dc(vin));
        ckt.add_mosfet(Mosfet {
            kind: MosType::Pmos,
            d: out,
            g: inp,
            s: vdd,
            params: params(MosType::Pmos, 2.0e-6),
        });
        ckt.add_mosfet(Mosfet {
            kind: MosType::Nmos,
            d: out,
            g: inp,
            s: Circuit::GROUND,
            params: params(MosType::Nmos, 1.0e-6),
        });
        (ckt, inp, out)
    }

    #[test]
    fn inverter_logic_levels() {
        let (ckt, _, out) = inverter(0.0);
        let dc = ckt.dc_op().unwrap();
        assert!(
            dc.voltage(out) > 1.75,
            "low input → high output, got {}",
            dc.voltage(out)
        );

        let (ckt, _, out) = inverter(1.8);
        let dc = ckt.dc_op().unwrap();
        assert!(
            dc.voltage(out) < 0.05,
            "high input → low output, got {}",
            dc.voltage(out)
        );
    }

    #[test]
    fn inverter_vtc_is_monotonic_decreasing() {
        let mut last = f64::INFINITY;
        for i in 0..=18 {
            let vin = i as f64 * 0.1;
            let (ckt, _, out) = inverter(vin);
            let v = ckt.dc_op().unwrap().voltage(out);
            assert!(
                v <= last + 1e-6,
                "VTC not monotonic at vin={vin}: {v} > {last}"
            );
            last = v;
        }
    }

    #[test]
    fn inverter_switching_threshold_is_midish() {
        // Find the input where out crosses VDD/2; for this sizing it must
        // be somewhere inside the middle third of the supply.
        let mut cross = None;
        let mut prev = None;
        for i in 0..=90 {
            let vin = i as f64 * 0.02;
            let (ckt, _, out) = inverter(vin);
            let v = ckt.dc_op().unwrap().voltage(out);
            if let Some((pvin, pv)) = prev {
                if pv >= 0.9 && v < 0.9 {
                    cross = Some((pvin + vin) / 2.0);
                    break;
                }
                let _ = pvin;
            }
            prev = Some((vin, v));
        }
        let vm = cross.expect("VTC must cross VDD/2");
        assert!(
            vm > 0.6 && vm < 1.2,
            "switching threshold {vm} out of range"
        );
    }

    #[test]
    fn source_current_matches_ohms_law() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let src = ckt.vsource(a, Circuit::GROUND, Waveform::dc(2.0));
        ckt.resistor(a, Circuit::GROUND, 2e3);
        let dc = ckt.dc_op().unwrap();
        let i = dc.source_current(&ckt, src).unwrap();
        assert!(
            (i - 1e-3).abs() < 1e-9,
            "2 V into 2 kΩ must deliver 1 mA, got {i:e}"
        );
    }

    #[test]
    fn quiescent_cmos_draws_almost_nothing() {
        let (ckt, _, _) = inverter(0.0);
        let dc = ckt.dc_op().unwrap();
        // Element 0 is the VDD source in `inverter`.
        let iddq = dc.source_current(&ckt, 0).unwrap();
        assert!(
            iddq.abs() < 1e-6,
            "static CMOS leaks microamps at most, got {iddq:e}"
        );
    }

    #[test]
    fn source_current_rejects_non_sources() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource(a, Circuit::GROUND, Waveform::dc(1.0));
        let r = ckt.resistor(a, Circuit::GROUND, 1e3);
        let dc = ckt.dc_op().unwrap();
        assert!(dc.source_current(&ckt, r).is_err());
        assert!(dc.source_current(&ckt, 99).is_err());
    }

    #[test]
    fn resistive_ladder_matches_analytic() {
        // 5-resistor ladder from a 1 V source: taps at i/5 volts.
        let mut ckt = Circuit::new();
        let mut nodes = vec![Circuit::GROUND];
        for i in 1..=5 {
            nodes.push(ckt.node(format!("n{i}")));
        }
        ckt.vsource(nodes[5], Circuit::GROUND, Waveform::dc(1.0));
        for i in 0..5 {
            ckt.resistor(nodes[i], nodes[i + 1], 100.0);
        }
        let dc = ckt.dc_op().unwrap();
        for (i, n) in nodes.iter().enumerate() {
            assert!((dc.voltage(*n) - i as f64 / 5.0).abs() < 1e-6);
        }
    }
}
