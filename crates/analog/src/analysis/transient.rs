//! Transient analysis.
//!
//! The engine takes fixed base steps, snaps to waveform breakpoints so
//! pulse edges are never stepped over, starts each discontinuity with a
//! backward-Euler step (damping trapezoidal ringing), and integrates with
//! the trapezoidal rule elsewhere.

use crate::circuit::{Circuit, NodeId};
use crate::elements::Element;
use crate::error::Error;
use crate::solver::mna::{collect_cap_branches, CapState, Method, System};
use crate::solver::workspace::{SolverWorkspace, SysScratch, TranScratch};
use crate::waveform::Trace;
use pulsar_obs::{Counter, Phase};

/// Configuration of a transient run.
#[derive(Debug, Clone, PartialEq)]
pub struct TranConfig {
    /// Base time step, seconds. In adaptive mode this is the *maximum*
    /// step; the controller shrinks below it as the local truncation
    /// error demands.
    pub step: f64,
    /// Stop time, seconds (simulation spans `[0, stop]`).
    pub stop: f64,
    /// Integration method inside smooth intervals.
    pub integrator: Integrator,
    /// Maximum Newton iterations per time point.
    pub max_newton: usize,
    /// Enable local-truncation-error step control.
    pub adaptive: bool,
    /// Node-voltage LTE tolerance for the adaptive controller, volts.
    pub lte_tol: f64,
    /// Budget of accepted time points (the `t = 0` point included). A run
    /// that would exceed it fails with [`Error::StepBudgetExhausted`]
    /// instead of stepping indefinitely; the default is far above any
    /// well-posed deck at these time scales.
    pub max_points: usize,
}

/// Companion-model integration method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Integrator {
    /// Trapezoidal rule (second order); the default.
    #[default]
    Trapezoidal,
    /// Backward Euler (first order, maximally damped). Useful as an
    /// accuracy/robustness ablation.
    BackwardEuler,
}

impl TranConfig {
    /// A transient run with `step` resolution up to `stop`, using the
    /// default trapezoidal integrator at fixed step.
    pub fn new(step: f64, stop: f64) -> Self {
        TranConfig {
            step,
            stop,
            integrator: Integrator::Trapezoidal,
            max_newton: 60,
            adaptive: false,
            lte_tol: 2e-3,
            max_points: 5_000_000,
        }
    }

    /// Same, but selecting the integrator.
    pub fn with_integrator(step: f64, stop: f64, integrator: Integrator) -> Self {
        TranConfig {
            integrator,
            ..TranConfig::new(step, stop)
        }
    }

    /// An adaptive run: steps grow toward `max_step` in quiet intervals
    /// and shrink (down to `max_step / 1024`) wherever the estimated
    /// local truncation error exceeds `lte_tol` (default 2 mV).
    pub fn adaptive(max_step: f64, stop: f64) -> Self {
        TranConfig {
            adaptive: true,
            ..TranConfig::new(max_step, stop)
        }
    }

    pub(crate) fn validate(&self) -> Result<(), Error> {
        if !(self.step.is_finite() && self.step > 0.0) {
            return Err(Error::InvalidTranConfig {
                reason: "step must be positive and finite",
            });
        }
        if !(self.stop.is_finite() && self.stop > 0.0) {
            return Err(Error::InvalidTranConfig {
                reason: "stop must be positive and finite",
            });
        }
        if self.step > self.stop {
            return Err(Error::InvalidTranConfig {
                reason: "step must not exceed stop",
            });
        }
        if self.max_newton == 0 {
            return Err(Error::InvalidTranConfig {
                reason: "max_newton must be at least 1",
            });
        }
        if self.max_points < 2 {
            return Err(Error::InvalidTranConfig {
                reason: "max_points must allow at least two time points",
            });
        }
        Ok(())
    }
}

/// Which node waveforms a transient run materializes.
///
/// Every accepted time point appends one sample per captured node, so a
/// Monte Carlo study that only measures a couple of outputs pays for every
/// node's waveform under [`TraceCapture::All`]. Capture selection never
/// touches the solver: the same points are accepted with the same
/// arithmetic, only the recording differs, so measurements on captured
/// nodes are bit-identical across policies.
///
/// A "measurements-only" policy is spelled `Nodes(...)` listing exactly
/// the nodes the caller will measure.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum TraceCapture {
    /// Record every node (the behavior of [`Circuit::transient`]).
    #[default]
    All,
    /// Record only the listed nodes, in the order given (duplicates are
    /// recorded once). [`TranResult::trace`] panics for any other node.
    Nodes(Vec<NodeId>),
}

/// Bookkeeping counters from one transient run.
///
/// Useful both as an allocation-free observability hook for benchmarks
/// (points accepted ≈ solver work) and to assert step-control behavior in
/// tests (e.g. that the LTE controller actually rejected a step).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TranStats {
    /// Accepted time points, including the `t = 0` sample.
    pub accepted_points: usize,
    /// Newton failures that triggered a step-halving retry.
    pub newton_retries: usize,
    /// Steps rejected (and re-taken at half size) by the adaptive LTE
    /// controller.
    pub lte_rejections: usize,
}

/// Result of a transient run: sampled node voltages over time.
#[derive(Debug, Clone)]
pub struct TranResult {
    times: Vec<f64>,
    /// One sample series per captured column.
    voltages: Vec<Vec<f64>>,
    /// Column → node map for `TraceCapture::Nodes`; `None` means all
    /// nodes were captured and column `i` is node `i`.
    captured: Option<Vec<NodeId>>,
    stats: TranStats,
}

impl TranResult {
    /// Assembles a result from raw sample storage — the batch engine's
    /// hand-off into the same result type the scalar engine returns.
    pub(crate) fn from_parts(
        times: Vec<f64>,
        voltages: Vec<Vec<f64>>,
        captured: Option<Vec<NodeId>>,
        stats: TranStats,
    ) -> Self {
        TranResult {
            times,
            voltages,
            captured,
            stats,
        }
    }

    /// Simulated time points (strictly increasing, starting at 0).
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Borrowing view of one node's waveform, ready for measurements.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to the simulated circuit, or if
    /// the run was made with a [`TraceCapture::Nodes`] policy that did not
    /// include `node`.
    pub fn trace(&self, node: NodeId) -> Trace<'_> {
        let col = match &self.captured {
            None => node.index(),
            Some(cols) => match cols.iter().position(|&c| c == node) {
                Some(col) => col,
                None => panic!(
                    "node {} was not captured by this transient run; \
                     add it to TraceCapture::Nodes or use TraceCapture::All",
                    node.index()
                ),
            },
        };
        Trace::new(&self.times, &self.voltages[col])
    }

    /// Number of accepted time points.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when the run produced no samples (never the case on success).
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Step-control and solver counters for this run.
    pub fn stats(&self) -> TranStats {
        self.stats
    }
}

/// Collects waveform breakpoints of all sources into `out` (cleared
/// first), sorted and deduplicated.
pub(crate) fn collect_breakpoints(ckt: &Circuit, stop: f64, out: &mut Vec<f64>) {
    out.clear();
    for e in ckt.elements() {
        match e {
            Element::Vsource { wave, .. } | Element::Isource { wave, .. } => {
                out.extend(wave.breakpoints(stop));
            }
            _ => {}
        }
    }
    out.sort_by(|a, b| a.total_cmp(b));
    out.dedup_by(|a, b| (*a - *b).abs() < 1e-18);
}

impl Circuit {
    /// Runs a transient analysis over `[0, cfg.stop]`.
    ///
    /// The initial condition is the DC operating point at `t = 0` with all
    /// capacitor currents zero (quiescent start). Every node's waveform is
    /// recorded; allocates a fresh [`SolverWorkspace`] internally. Batch
    /// callers should prefer [`Circuit::transient_with`], which reuses a
    /// workspace across solves and can slim the capture set.
    ///
    /// # Errors
    ///
    /// Propagates DC-op failures, Newton non-convergence at a time point
    /// (after step-halving retries), invalid configurations and singular
    /// matrices.
    pub fn transient(&self, cfg: &TranConfig) -> Result<TranResult, Error> {
        self.transient_with(cfg, &mut SolverWorkspace::new(), &TraceCapture::All)
    }

    /// Runs a transient analysis reusing a caller-owned [`SolverWorkspace`]
    /// and recording only the nodes selected by `capture`.
    ///
    /// Numerics are bit-identical to [`Circuit::transient`] regardless of
    /// workspace reuse or capture policy (the workspace recycles
    /// allocations, never intermediate values), with one opt-in exception:
    /// a workspace with [`SolverWorkspace::enable_dc_warm_start`] switched
    /// on seeds the initial DC solve from the previous operating point and
    /// matches a cold start only within solver tolerances.
    ///
    /// # Panics
    ///
    /// Panics if `capture` names a node that does not belong to `self`.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Circuit::transient`].
    pub fn transient_with(
        &self,
        cfg: &TranConfig,
        ws: &mut SolverWorkspace,
        capture: &TraceCapture,
    ) -> Result<TranResult, Error> {
        cfg.validate()?;

        // Resolve the capture policy into a column → node map.
        let captured: Option<Vec<NodeId>> = match capture {
            TraceCapture::All => None,
            TraceCapture::Nodes(nodes) => {
                let mut cols: Vec<NodeId> = Vec::with_capacity(nodes.len());
                for &n in nodes {
                    assert!(
                        n.index() < self.node_count(),
                        "TraceCapture names node {} but the circuit has {} nodes",
                        n.index(),
                        self.node_count()
                    );
                    if !cols.contains(&n) {
                        cols.push(n);
                    }
                }
                Some(cols)
            }
        };

        let SolverWorkspace {
            sys: sys_scratch,
            tran,
            warm_dc,
            warm_x,
        } = ws;
        let TranScratch {
            caps,
            cap_branches,
            breakpoints,
            x,
            xn,
            x_prev,
        } = tran;

        // Initial condition: DC operating point into the workspace buffer.
        let warm = if *warm_dc { Some(warm_x) } else { None };
        // Cheap handle clones (one Arc bump each per run); the borrow of
        // `sys_scratch` below would otherwise pin these fields.
        let rec = sys_scratch.recorder.clone();
        let cancel = sys_scratch.cancel.clone();
        self.dc_into(0.0, sys_scratch, warm, x)?;
        let mut sys = System::new(self, sys_scratch);
        let nu = x.len();
        xn.clear();
        xn.resize(nu, 0.0);
        x_prev.clear();
        x_prev.resize(nu, 0.0);

        // Companion-model states, one per capacitive branch.
        collect_cap_branches(self, cap_branches);
        caps.clear();
        caps.extend(cap_branches.iter().map(|&(a, b, _)| CapState {
            v_prev: System::node_voltage(x, a) - System::node_voltage(x, b),
            i_prev: 0.0,
        }));

        // Breakpoints: all waveform corners, sorted and deduplicated.
        collect_breakpoints(self, cfg.stop, breakpoints);
        let mut next_bp = 0usize;

        // Result storage is freshly allocated — it is handed to the caller
        // — but only for the captured columns.
        let capacity = (cfg.stop / cfg.step) as usize + breakpoints.len() + 2;
        let ncols = captured.as_ref().map_or(self.node_count(), Vec::len);
        let mut times = Vec::with_capacity(capacity);
        let mut voltages: Vec<Vec<f64>> = vec![Vec::with_capacity(capacity); ncols];
        let record = |t: f64, x: &[f64], times: &mut Vec<f64>, voltages: &mut Vec<Vec<f64>>| {
            times.push(t);
            match &captured {
                None => {
                    for (n, column) in voltages.iter_mut().enumerate() {
                        column.push(System::node_voltage(x, NodeId(n)));
                    }
                }
                Some(cols) => {
                    for (&node, column) in cols.iter().zip(voltages.iter_mut()) {
                        column.push(System::node_voltage(x, node));
                    }
                }
            }
        };
        record(0.0, x, &mut times, &mut voltages);

        let mut stats = TranStats::default();
        let mut t = 0.0;
        // Force a BE step right after t=0 and after every breakpoint.
        let mut after_discontinuity = true;
        // Adaptive-control state: current step and predictor history. The
        // predictor buffers hold the solution at the previously *accepted*
        // point and the size of the step that produced the current point
        // (`h_prev` is written only after any rejection/retry shrinking,
        // so a rejected trial size never enters the LTE slope).
        let h_min = cfg.step / 1024.0;
        let mut h_cur = if cfg.adaptive {
            cfg.step / 8.0
        } else {
            cfg.step
        };
        let mut have_prev = false;
        let mut h_prev = 0.0_f64;
        let nn = self.node_count() - 1;

        // Counters are bumped as the loop goes (not once at the end), so a
        // run that dies on the step budget still journals its true spend.
        let _step_span = rec.span(Phase::TransientStepLoop);
        while t < cfg.stop - 1e-18 {
            // Step budget: another point is needed but the budget is spent.
            if times.len() >= cfg.max_points {
                return Err(Error::StepBudgetExhausted {
                    points: times.len(),
                    time: t,
                });
            }
            // Cooperative cancellation: one relaxed load per accepted
            // point, only when a token is installed.
            if let Some(token) = &cancel {
                if let Some(reason) = token.cancelled() {
                    return Err(Error::Cancelled { time: t, reason });
                }
            }
            // Test-only injection hook (inert unless this thread armed a
            // FaultPlan); checked per accepted point, before the solve.
            if let Some(e) = crate::inject::fire(times.len(), t) {
                return Err(e);
            }
            // Next target time: current step, clipped to breakpoint/stop.
            let mut tn = t + h_cur;
            let mut hit_bp = false;
            while next_bp < breakpoints.len() && breakpoints[next_bp] <= t + 1e-18 {
                next_bp += 1;
            }
            if next_bp < breakpoints.len() && breakpoints[next_bp] < tn - 1e-18 {
                tn = breakpoints[next_bp];
                hit_bp = true;
            }
            if tn > cfg.stop {
                tn = cfg.stop;
            }

            let method = match cfg.integrator {
                Integrator::BackwardEuler => Method::BackwardEuler,
                Integrator::Trapezoidal => {
                    if after_discontinuity {
                        Method::BackwardEuler
                    } else {
                        Method::Trapezoidal
                    }
                }
            };

            // Solve at tn, halving the step on Newton failure (up to 10x)
            // or, in adaptive mode, on an LTE violation. `xn` is the
            // double-buffer partner of `x`: seeded by copy, swapped (not
            // cloned) on acceptance.
            let mut sub_t = tn;
            let mut attempts = 0;
            xn.copy_from_slice(x);
            let mut lte = 0.0_f64;
            loop {
                let h = sub_t - t;
                match sys.solve_newton(
                    xn,
                    sub_t,
                    Some((caps.as_slice(), h, method)),
                    1.0,
                    0.0,
                    cfg.max_newton,
                    "transient",
                ) {
                    Ok(()) => {
                        // LTE estimate: deviation from the linear
                        // predictor built on the previous accepted step.
                        if cfg.adaptive && !after_discontinuity && have_prev {
                            lte = 0.0;
                            for i in 0..nn {
                                let slope = (x[i] - x_prev[i]) / h_prev;
                                let pred = x[i] + slope * h;
                                lte = lte.max((xn[i] - pred).abs());
                            }
                            if lte > cfg.lte_tol && h > h_min && attempts <= 10 {
                                attempts += 1;
                                stats.lte_rejections += 1;
                                rec.add(Counter::LteRejections, 1);
                                sub_t = t + h / 2.0;
                                xn.copy_from_slice(x);
                                continue;
                            }
                        }
                        break;
                    }
                    Err(e @ Error::SingularMatrix { .. }) => return Err(e),
                    Err(e) => {
                        attempts += 1;
                        stats.newton_retries += 1;
                        rec.add(Counter::NewtonRetries, 1);
                        if attempts > 10 {
                            return Err(e);
                        }
                        sub_t = t + (sub_t - t) / 2.0;
                        xn.copy_from_slice(x);
                    }
                }
            }

            // Accept the (possibly shortened) step: `h` is recomputed from
            // the final `sub_t`, so it is the *accepted* step size even
            // after rejections halved the trial step.
            let h = sub_t - t;
            if cfg.adaptive {
                // Grow in quiet intervals, shrink when the error crowds
                // the tolerance.
                if lte < 0.25 * cfg.lte_tol {
                    h_cur = (h * 1.6).min(cfg.step);
                } else if lte > 0.75 * cfg.lte_tol {
                    h_cur = (h / 1.5).max(h_min);
                } else {
                    h_cur = h.min(cfg.step);
                }
                // Predictor history for the next step's LTE estimate
                // (only read in adaptive mode, so only maintained there).
                x_prev.copy_from_slice(x);
                h_prev = h;
                have_prev = true;
            }
            // Advance the companion states, reusing the `c/h` conductances
            // the last (accepted) solve hoisted for exactly this `h` and
            // method — the same bits the baseline recomputes per branch.
            for ((st, &(a, b, _)), &geq) in
                caps.iter_mut().zip(cap_branches.iter()).zip(sys.cap_geq())
            {
                let v_now = System::node_voltage(xn, a) - System::node_voltage(xn, b);
                let i_now = match method {
                    Method::BackwardEuler => geq * (v_now - st.v_prev),
                    Method::Trapezoidal => geq * (v_now - st.v_prev) - st.i_prev,
                };
                st.v_prev = v_now;
                st.i_prev = i_now;
            }
            core::mem::swap(x, xn);
            t = sub_t;
            record(t, x, &mut times, &mut voltages);
            rec.add(Counter::StepsAccepted, 1);
            after_discontinuity = hit_bp && (sub_t - tn).abs() < 1e-18;
        }

        stats.accepted_points = times.len();
        Ok(TranResult {
            times,
            voltages,
            captured,
            stats,
        })
    }

    /// The pre-workspace transient engine, preserved verbatim as the
    /// benchmark baseline and as an independent numerical cross-check.
    ///
    /// This is what [`Circuit::transient`] was before workspace reuse:
    /// it clones the solution vector on every step attempt and every
    /// accepted step, keeps the LTE predictor history as a per-step
    /// allocation, records every node, and runs the preserved pre-PR
    /// Newton and LU kernels (`System::solve_newton_baseline`). Results
    /// are bit-identical to the workspace engine run dense (asserted by
    /// the `workspace_equivalence` tests).
    ///
    /// Not part of the simulation API proper; `bench_hotpath` uses it for
    /// same-run before/after comparisons, and it will be dropped once the
    /// perf trajectory no longer needs the anchor.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Circuit::transient`].
    pub fn transient_baseline(&self, cfg: &TranConfig) -> Result<TranResult, Error> {
        cfg.validate()?;
        let mut scratch = SysScratch::default();
        // The baseline engine is dense end to end: pin its DC seed dense
        // too, so it stays bit-identical to the pre-sparse implementation
        // even for circuits above the `Auto` crossover dimension.
        scratch.sparse.mode = crate::solver::workspace::SolverMode::ForceDense;
        let mut x = Vec::new();
        self.dc_into(0.0, &mut scratch, None, &mut x)?;
        let mut sys = System::new(self, &mut scratch);

        // Companion-model states, one per capacitive branch.
        let mut branches = Vec::new();
        collect_cap_branches(self, &mut branches);
        let mut caps: Vec<CapState> = branches
            .iter()
            .map(|&(a, b, _)| CapState {
                v_prev: System::node_voltage(&x, a) - System::node_voltage(&x, b),
                i_prev: 0.0,
            })
            .collect();

        let mut breakpoints: Vec<f64> = Vec::new();
        collect_breakpoints(self, cfg.stop, &mut breakpoints);
        let mut next_bp = 0usize;

        let capacity = (cfg.stop / cfg.step) as usize + breakpoints.len() + 2;
        let mut times = Vec::with_capacity(capacity);
        let mut voltages: Vec<Vec<f64>> = vec![Vec::with_capacity(capacity); self.node_count()];
        let record = |t: f64, x: &[f64], times: &mut Vec<f64>, voltages: &mut Vec<Vec<f64>>| {
            times.push(t);
            for (n, column) in voltages.iter_mut().enumerate() {
                column.push(System::node_voltage(x, NodeId(n)));
            }
        };
        record(0.0, &x, &mut times, &mut voltages);

        let mut t = 0.0;
        let mut after_discontinuity = true;
        let h_min = cfg.step / 1024.0;
        let mut h_cur = if cfg.adaptive {
            cfg.step / 8.0
        } else {
            cfg.step
        };
        let mut prev: Option<(f64, Vec<f64>)> = None; // (h of last step, x before it)
        let nn = self.node_count() - 1;

        while t < cfg.stop - 1e-18 {
            if times.len() >= cfg.max_points {
                return Err(Error::StepBudgetExhausted {
                    points: times.len(),
                    time: t,
                });
            }
            if let Some(e) = crate::inject::fire(times.len(), t) {
                return Err(e);
            }
            let mut tn = t + h_cur;
            let mut hit_bp = false;
            while next_bp < breakpoints.len() && breakpoints[next_bp] <= t + 1e-18 {
                next_bp += 1;
            }
            if next_bp < breakpoints.len() && breakpoints[next_bp] < tn - 1e-18 {
                tn = breakpoints[next_bp];
                hit_bp = true;
            }
            if tn > cfg.stop {
                tn = cfg.stop;
            }

            let method = match cfg.integrator {
                Integrator::BackwardEuler => Method::BackwardEuler,
                Integrator::Trapezoidal => {
                    if after_discontinuity {
                        Method::BackwardEuler
                    } else {
                        Method::Trapezoidal
                    }
                }
            };

            let mut sub_t = tn;
            let mut attempts = 0;
            let mut xn = x.clone();
            let mut lte = 0.0_f64;
            loop {
                let h = sub_t - t;
                match sys.solve_newton_baseline(
                    &mut xn,
                    sub_t,
                    Some((&caps, h, method)),
                    1.0,
                    0.0,
                    cfg.max_newton,
                    "transient",
                ) {
                    Ok(()) => {
                        if cfg.adaptive && !after_discontinuity {
                            if let Some((h_prev, ref x_prev)) = prev {
                                lte = 0.0;
                                for i in 0..nn {
                                    let slope = (x[i] - x_prev[i]) / h_prev;
                                    let pred = x[i] + slope * h;
                                    lte = lte.max((xn[i] - pred).abs());
                                }
                                if lte > cfg.lte_tol && h > h_min && attempts <= 10 {
                                    attempts += 1;
                                    sub_t = t + h / 2.0;
                                    xn.copy_from_slice(&x);
                                    continue;
                                }
                            }
                        }
                        break;
                    }
                    Err(e @ Error::SingularMatrix { .. }) => return Err(e),
                    Err(e) => {
                        attempts += 1;
                        if attempts > 10 {
                            return Err(e);
                        }
                        sub_t = t + (sub_t - t) / 2.0;
                        xn.copy_from_slice(&x);
                    }
                }
            }

            let h = sub_t - t;
            if cfg.adaptive {
                if lte < 0.25 * cfg.lte_tol {
                    h_cur = (h * 1.6).min(cfg.step);
                } else if lte > 0.75 * cfg.lte_tol {
                    h_cur = (h / 1.5).max(h_min);
                } else {
                    h_cur = h.min(cfg.step);
                }
            }
            prev = Some((h, x.clone()));
            for (st, &(a, b, c)) in caps.iter_mut().zip(&branches) {
                let v_now = System::node_voltage(&xn, a) - System::node_voltage(&xn, b);
                let i_now = match method {
                    Method::BackwardEuler => c / h * (v_now - st.v_prev),
                    Method::Trapezoidal => 2.0 * c / h * (v_now - st.v_prev) - st.i_prev,
                };
                st.v_prev = v_now;
                st.i_prev = i_now;
            }
            x = xn;
            t = sub_t;
            record(t, &x, &mut times, &mut voltages);
            after_discontinuity = hit_bp && (sub_t - tn).abs() < 1e-18;
        }

        let stats = TranStats {
            accepted_points: times.len(),
            ..TranStats::default()
        };
        Ok(TranResult {
            times,
            voltages,
            captured: None,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::elements::Waveform;

    /// RC charging must match the analytic exponential.
    #[test]
    fn rc_step_response_matches_analytic() {
        let r = 1e3;
        let c = 1e-12;
        let tau = r * c; // 1 ns
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource(
            vin,
            Circuit::GROUND,
            Waveform::step(0.0, 1.0, 0.1e-9, 1e-12),
        );
        ckt.resistor(vin, out, r);
        ckt.capacitor(out, Circuit::GROUND, c);

        let res = ckt.transient(&TranConfig::new(5e-12, 6e-9)).unwrap();
        let trace = res.trace(out);
        for k in 1..=4 {
            let t = 0.1e-9 + k as f64 * tau;
            let expect = 1.0 - (-(k as f64)).exp();
            let got = trace.value_at(t);
            assert!(
                (got - expect).abs() < 5e-3,
                "at t={k}τ expected {expect:.4}, got {got:.4}"
            );
        }
    }

    #[test]
    fn rc_with_backward_euler_also_converges() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource(vin, Circuit::GROUND, Waveform::step(0.0, 1.0, 0.0, 1e-12));
        ckt.resistor(vin, out, 1e3);
        ckt.capacitor(out, Circuit::GROUND, 1e-12);

        let cfg = TranConfig::with_integrator(2e-12, 10e-9, Integrator::BackwardEuler);
        let res = ckt.transient(&cfg).unwrap();
        assert!((res.trace(out).last_value() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn pulse_passes_through_rc_and_returns() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource(
            vin,
            Circuit::GROUND,
            Waveform::single_pulse(0.0, 1.0, 1e-9, 50e-12, 50e-12, 2e-9),
        );
        ckt.resistor(vin, out, 1e3);
        ckt.capacitor(out, Circuit::GROUND, 0.2e-12);

        let res = ckt.transient(&TranConfig::new(10e-12, 8e-9)).unwrap();
        let tr = res.trace(out);
        // The output peaks near 1 V during the pulse and decays after.
        let peak = tr.max_value();
        assert!(peak > 0.98, "peak {peak}");
        assert!(
            tr.last_value() < 0.02,
            "should discharge, got {}",
            tr.last_value()
        );
    }

    #[test]
    fn breakpoints_are_sampled_exactly() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        ckt.vsource(
            vin,
            Circuit::GROUND,
            Waveform::single_pulse(0.0, 1.0, 1.0e-9, 0.1e-9, 0.1e-9, 0.5e-9),
        );
        ckt.resistor(vin, Circuit::GROUND, 1e3);

        // Base step of 0.3 ns would step over the 1.0 ns edge without
        // breakpoint snapping.
        let res = ckt.transient(&TranConfig::new(0.3e-9, 3e-9)).unwrap();
        for bp in [1.0e-9, 1.1e-9, 1.6e-9, 1.7e-9] {
            assert!(
                res.times().iter().any(|&t| (t - bp).abs() < 1e-15),
                "breakpoint {bp:e} not sampled"
            );
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource(a, Circuit::GROUND, Waveform::dc(1.0));
        ckt.resistor(a, Circuit::GROUND, 1.0);

        assert!(ckt.transient(&TranConfig::new(-1.0, 1.0)).is_err());
        assert!(ckt.transient(&TranConfig::new(1.0, -1.0)).is_err());
        assert!(ckt.transient(&TranConfig::new(2.0, 1.0)).is_err());
        let mut cfg = TranConfig::new(1e-12, 1e-9);
        cfg.max_newton = 0;
        assert!(ckt.transient(&cfg).is_err());
    }

    #[test]
    fn adaptive_matches_fixed_step_accuracy_with_fewer_points() {
        let r = 1e3;
        let c = 1e-12;
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource(
            vin,
            Circuit::GROUND,
            Waveform::step(0.0, 1.0, 0.1e-9, 1e-12),
        );
        ckt.resistor(vin, out, r);
        ckt.capacitor(out, Circuit::GROUND, c);

        let fixed = ckt.transient(&TranConfig::new(2e-12, 8e-9)).unwrap();
        let adapt = ckt.transient(&TranConfig::adaptive(200e-12, 8e-9)).unwrap();
        assert!(
            adapt.len() < fixed.len() / 4,
            "adaptive should need far fewer points: {} vs {}",
            adapt.len(),
            fixed.len()
        );
        // Accuracy against the analytic exponential at several times.
        let tau = r * c;
        for k in 1..=4 {
            let t = 0.1e-9 + k as f64 * tau;
            let expect = 1.0 - (-(k as f64)).exp();
            let got = adapt.trace(out).value_at(t);
            assert!((got - expect).abs() < 1e-2, "at {k}τ: {got} vs {expect}");
        }
    }

    #[test]
    fn adaptive_still_resolves_short_pulses() {
        // A 150 ps pulse must not be smeared away by large steps: the
        // breakpoint snapping + LTE control keep it sharp.
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource(
            vin,
            Circuit::GROUND,
            Waveform::single_pulse(0.0, 1.0, 1e-9, 20e-12, 20e-12, 150e-12),
        );
        ckt.resistor(vin, out, 1e3);
        ckt.capacitor(out, Circuit::GROUND, 20e-15); // τ = 20 ps

        let res = ckt.transient(&TranConfig::adaptive(500e-12, 3e-9)).unwrap();
        let w = res
            .trace(out)
            .widest_pulse_width(0.5, crate::waveform::Polarity::PositiveGoing);
        assert!(
            (w - 170e-12).abs() < 25e-12,
            "pulse width distorted by adaptive stepping: {w:e}"
        );
    }

    #[test]
    fn step_budget_degrades_into_reported_failure() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource(
            vin,
            Circuit::GROUND,
            Waveform::step(0.0, 1.0, 0.1e-9, 1e-12),
        );
        ckt.resistor(vin, out, 1e3);
        ckt.capacitor(out, Circuit::GROUND, 1e-12);

        let mut cfg = TranConfig::new(5e-12, 6e-9);
        cfg.max_points = 10;
        match ckt.transient(&cfg) {
            Err(Error::StepBudgetExhausted { points, time }) => {
                assert_eq!(points, 10);
                assert!(time < 6e-9);
            }
            other => panic!("expected StepBudgetExhausted, got {other:?}"),
        }
        // A budget the run fits inside must not trip.
        cfg.max_points = 100_000;
        assert!(ckt.transient(&cfg).is_ok());
    }

    #[test]
    fn armed_fault_plan_trips_the_solver() {
        use crate::inject::{FaultKind, FaultPlan};

        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource(
            vin,
            Circuit::GROUND,
            Waveform::step(0.0, 1.0, 0.1e-9, 1e-12),
        );
        ckt.resistor(vin, out, 1e3);
        ckt.capacitor(out, Circuit::GROUND, 1e-12);
        let cfg = TranConfig::new(5e-12, 2e-9);

        let plan = FaultPlan::new()
            .fail_sample_at_point(0, FaultKind::NonConvergence, 3, 1)
            .fail_sample(1, FaultKind::SingularMatrix, FaultPlan::ALWAYS);
        {
            let _g = plan.arm(0, 1);
            match ckt.transient(&cfg) {
                Err(Error::NoConvergence { context, .. }) => assert_eq!(context, "injected fault"),
                other => panic!("expected injected NoConvergence, got {other:?}"),
            }
        }
        {
            // Attempt 2 is past sample 0's failing window: the run heals.
            let _g = plan.arm(0, 2);
            assert!(ckt.transient(&cfg).is_ok());
        }
        {
            let _g = plan.arm(1, 5);
            assert!(matches!(
                ckt.transient(&cfg),
                Err(Error::SingularMatrix { row: usize::MAX })
            ));
        }
        // Nothing armed: clean run.
        assert!(ckt.transient(&cfg).is_ok());
    }

    /// RC deck shared by the adaptive/capture tests below.
    fn rc_deck() -> (Circuit, NodeId, NodeId) {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource(
            vin,
            Circuit::GROUND,
            Waveform::step(0.0, 1.0, 0.1e-9, 1e-12),
        );
        ckt.resistor(vin, out, 1e3);
        ckt.capacitor(out, Circuit::GROUND, 1e-12);
        (ckt, vin, out)
    }

    #[test]
    fn forced_lte_rejection_keeps_accepted_step_bookkeeping() {
        // An inverter driven by a slow ramp: the only breakpoints are the
        // ramp endpoints, so the step controller grows toward the 1 ns
        // maximum over the flat pre-threshold stretch and is then surprised
        // by the output switching mid-ramp — a hard LTE rejection, not a
        // gradual band shrink. The predictor history (h_prev, x_prev) must
        // then hold the *accepted* step, not the rejected trial size —
        // verified by bit-identity with the preserved clone-based baseline
        // engine, which recomputes h after the retry loop by construction.
        use crate::elements::{MosType, Mosfet, MosfetParams};
        let params = |kind: MosType, w: f64| MosfetParams {
            vt0: if matches!(kind, MosType::Nmos) {
                0.4
            } else {
                -0.42
            },
            kp: if matches!(kind, MosType::Nmos) {
                170e-6
            } else {
                60e-6
            },
            lambda: 0.06,
            w,
            l: 0.18e-6,
            cgs: 1e-15,
            cgd: 1e-15,
            cdb: 1e-15,
        };
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource(vdd, Circuit::GROUND, Waveform::dc(1.8));
        ckt.vsource(inp, Circuit::GROUND, Waveform::step(0.0, 1.8, 0.2e-9, 4e-9));
        ckt.add_mosfet(Mosfet {
            kind: MosType::Pmos,
            d: out,
            g: inp,
            s: vdd,
            params: params(MosType::Pmos, 2.0e-6),
        });
        ckt.add_mosfet(Mosfet {
            kind: MosType::Nmos,
            d: out,
            g: inp,
            s: Circuit::GROUND,
            params: params(MosType::Nmos, 1.0e-6),
        });
        ckt.capacitor(out, Circuit::GROUND, 20e-15);

        let cfg = TranConfig::adaptive(1e-9, 6e-9);
        let res = ckt.transient(&cfg).unwrap();
        assert!(
            res.stats().lte_rejections > 0,
            "deck chosen to force rejections, got {:?}",
            res.stats()
        );
        assert_eq!(res.stats().accepted_points, res.len());
        assert!(
            res.trace(out).last_value() < 0.05,
            "inverter must settle low after the ramp"
        );

        let base = ckt.transient_baseline(&cfg).unwrap();
        assert_eq!(res.times(), base.times(), "step sequences must match");
        for n in 0..ckt.node_count() {
            let node = NodeId(n);
            assert_eq!(
                res.trace(node).values(),
                base.trace(node).values(),
                "node {n} diverged from the baseline engine"
            );
        }
    }

    #[test]
    fn fixed_step_runs_report_no_rejections() {
        let (ckt, _, _) = rc_deck();
        let res = ckt.transient(&TranConfig::new(5e-12, 2e-9)).unwrap();
        assert_eq!(res.stats().lte_rejections, 0);
        assert_eq!(res.stats().newton_retries, 0);
        assert_eq!(res.stats().accepted_points, res.len());
    }

    #[test]
    fn capture_nodes_is_bit_identical_to_all() {
        let (ckt, vin, out) = rc_deck();
        let cfg = TranConfig::new(5e-12, 2e-9);
        let all = ckt.transient(&cfg).unwrap();
        let mut ws = SolverWorkspace::new();
        let slim = ckt
            .transient_with(&cfg, &mut ws, &TraceCapture::Nodes(vec![out, out, vin]))
            .unwrap();
        assert_eq!(all.times(), slim.times());
        assert_eq!(all.trace(out).values(), slim.trace(out).values());
        assert_eq!(all.trace(vin).values(), slim.trace(vin).values());
    }

    #[test]
    #[should_panic(expected = "was not captured")]
    fn uncaptured_node_trace_panics_with_guidance() {
        let (ckt, vin, out) = rc_deck();
        let cfg = TranConfig::new(5e-12, 2e-9);
        let mut ws = SolverWorkspace::new();
        let res = ckt
            .transient_with(&cfg, &mut ws, &TraceCapture::Nodes(vec![vin]))
            .unwrap();
        let _ = res.trace(out);
    }

    #[test]
    fn workspace_reuse_across_runs_is_bit_identical() {
        // One workspace reused across three runs (including a different
        // deck in between) must reproduce the fresh-workspace results
        // exactly: reuse recycles allocations, never values.
        let (ckt, _, out) = rc_deck();
        let cfg = TranConfig::new(5e-12, 2e-9);
        let fresh = ckt.transient(&cfg).unwrap();
        let mut ws = SolverWorkspace::new();
        let first = ckt
            .transient_with(&cfg, &mut ws, &TraceCapture::All)
            .unwrap();
        // Interleave a different topology to dirty the buffers.
        let mut other = Circuit::new();
        let a = other.node("a");
        other.vsource(a, Circuit::GROUND, Waveform::dc(1.0));
        other.resistor(a, Circuit::GROUND, 50.0);
        other
            .transient_with(&TranConfig::new(1e-12, 0.1e-9), &mut ws, &TraceCapture::All)
            .unwrap();
        let again = ckt
            .transient_with(&cfg, &mut ws, &TraceCapture::All)
            .unwrap();
        for res in [&first, &again] {
            assert_eq!(fresh.times(), res.times());
            assert_eq!(fresh.trace(out).values(), res.trace(out).values());
        }
    }

    #[test]
    fn coupling_capacitor_divider() {
        // Two series capacitors from a stepped source: the middle node
        // settles at the capacitive divider voltage right after the edge.
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let mid = ckt.node("mid");
        ckt.vsource(
            vin,
            Circuit::GROUND,
            Waveform::step(0.0, 1.0, 0.5e-9, 1e-12),
        );
        ckt.capacitor(vin, mid, 3e-15);
        ckt.capacitor(mid, Circuit::GROUND, 1e-15);

        let res = ckt.transient(&TranConfig::new(5e-12, 1.0e-9)).unwrap();
        let v = res.trace(mid).value_at(0.6e-9);
        // Divider: 3f/(3f+1f) = 0.75 (slowly discharged by the gmin floor,
        // negligible at this time scale).
        assert!((v - 0.75).abs() < 0.01, "capacitive divider voltage {v}");
    }
}
