//! Transient analysis.
//!
//! The engine takes fixed base steps, snaps to waveform breakpoints so
//! pulse edges are never stepped over, starts each discontinuity with a
//! backward-Euler step (damping trapezoidal ringing), and integrates with
//! the trapezoidal rule elsewhere.

use crate::circuit::{Circuit, NodeId};
use crate::elements::Element;
use crate::error::Error;
use crate::solver::mna::{CapState, Method, System};
use crate::waveform::Trace;

/// Configuration of a transient run.
#[derive(Debug, Clone, PartialEq)]
pub struct TranConfig {
    /// Base time step, seconds. In adaptive mode this is the *maximum*
    /// step; the controller shrinks below it as the local truncation
    /// error demands.
    pub step: f64,
    /// Stop time, seconds (simulation spans `[0, stop]`).
    pub stop: f64,
    /// Integration method inside smooth intervals.
    pub integrator: Integrator,
    /// Maximum Newton iterations per time point.
    pub max_newton: usize,
    /// Enable local-truncation-error step control.
    pub adaptive: bool,
    /// Node-voltage LTE tolerance for the adaptive controller, volts.
    pub lte_tol: f64,
    /// Budget of accepted time points (the `t = 0` point included). A run
    /// that would exceed it fails with [`Error::StepBudgetExhausted`]
    /// instead of stepping indefinitely; the default is far above any
    /// well-posed deck at these time scales.
    pub max_points: usize,
}

/// Companion-model integration method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Integrator {
    /// Trapezoidal rule (second order); the default.
    #[default]
    Trapezoidal,
    /// Backward Euler (first order, maximally damped). Useful as an
    /// accuracy/robustness ablation.
    BackwardEuler,
}

impl TranConfig {
    /// A transient run with `step` resolution up to `stop`, using the
    /// default trapezoidal integrator at fixed step.
    pub fn new(step: f64, stop: f64) -> Self {
        TranConfig {
            step,
            stop,
            integrator: Integrator::Trapezoidal,
            max_newton: 60,
            adaptive: false,
            lte_tol: 2e-3,
            max_points: 5_000_000,
        }
    }

    /// Same, but selecting the integrator.
    pub fn with_integrator(step: f64, stop: f64, integrator: Integrator) -> Self {
        TranConfig {
            integrator,
            ..TranConfig::new(step, stop)
        }
    }

    /// An adaptive run: steps grow toward `max_step` in quiet intervals
    /// and shrink (down to `max_step / 1024`) wherever the estimated
    /// local truncation error exceeds `lte_tol` (default 2 mV).
    pub fn adaptive(max_step: f64, stop: f64) -> Self {
        TranConfig {
            adaptive: true,
            ..TranConfig::new(max_step, stop)
        }
    }

    fn validate(&self) -> Result<(), Error> {
        if !(self.step.is_finite() && self.step > 0.0) {
            return Err(Error::InvalidTranConfig {
                reason: "step must be positive and finite",
            });
        }
        if !(self.stop.is_finite() && self.stop > 0.0) {
            return Err(Error::InvalidTranConfig {
                reason: "stop must be positive and finite",
            });
        }
        if self.step > self.stop {
            return Err(Error::InvalidTranConfig {
                reason: "step must not exceed stop",
            });
        }
        if self.max_newton == 0 {
            return Err(Error::InvalidTranConfig {
                reason: "max_newton must be at least 1",
            });
        }
        if self.max_points < 2 {
            return Err(Error::InvalidTranConfig {
                reason: "max_points must allow at least two time points",
            });
        }
        Ok(())
    }
}

/// Result of a transient run: sampled node voltages over time.
#[derive(Debug, Clone)]
pub struct TranResult {
    times: Vec<f64>,
    /// `voltages[node_index]` is the sample series of that node.
    voltages: Vec<Vec<f64>>,
}

impl TranResult {
    /// Simulated time points (strictly increasing, starting at 0).
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Borrowing view of one node's waveform, ready for measurements.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to the simulated circuit.
    pub fn trace(&self, node: NodeId) -> Trace<'_> {
        Trace::new(&self.times, &self.voltages[node.index()])
    }

    /// Number of accepted time points.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when the run produced no samples (never the case on success).
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }
}

impl Circuit {
    /// Runs a transient analysis over `[0, cfg.stop]`.
    ///
    /// The initial condition is the DC operating point at `t = 0` with all
    /// capacitor currents zero (quiescent start).
    ///
    /// # Errors
    ///
    /// Propagates DC-op failures, Newton non-convergence at a time point
    /// (after step-halving retries), invalid configurations and singular
    /// matrices.
    pub fn transient(&self, cfg: &TranConfig) -> Result<TranResult, Error> {
        cfg.validate()?;
        let dc = self.dc_op()?;
        let mut sys = System::new(self);
        let mut x = dc.x;

        // Companion-model states, one per capacitive branch.
        let branches = sys.cap_branches();
        let mut caps: Vec<CapState> = branches
            .iter()
            .map(|&(a, b, _)| CapState {
                v_prev: System::node_voltage(&x, a) - System::node_voltage(&x, b),
                i_prev: 0.0,
            })
            .collect();

        // Breakpoints: all waveform corners, sorted and deduplicated.
        let mut breakpoints: Vec<f64> = Vec::new();
        for e in self.elements() {
            match e {
                Element::Vsource { wave, .. } | Element::Isource { wave, .. } => {
                    breakpoints.extend(wave.breakpoints(cfg.stop));
                }
                _ => {}
            }
        }
        breakpoints.sort_by(|a, b| a.total_cmp(b));
        breakpoints.dedup_by(|a, b| (*a - *b).abs() < 1e-18);
        let mut next_bp = 0usize;

        let capacity = (cfg.stop / cfg.step) as usize + breakpoints.len() + 2;
        let mut times = Vec::with_capacity(capacity);
        let mut voltages: Vec<Vec<f64>> = vec![Vec::with_capacity(capacity); self.node_count()];
        let record = |t: f64, x: &[f64], times: &mut Vec<f64>, voltages: &mut Vec<Vec<f64>>| {
            times.push(t);
            for (n, column) in voltages.iter_mut().enumerate() {
                column.push(System::node_voltage(x, NodeId(n)));
            }
        };
        record(0.0, &x, &mut times, &mut voltages);

        let mut t = 0.0;
        // Force a BE step right after t=0 and after every breakpoint.
        let mut after_discontinuity = true;
        // Adaptive-control state: current step and predictor history.
        let h_min = cfg.step / 1024.0;
        let mut h_cur = if cfg.adaptive {
            cfg.step / 8.0
        } else {
            cfg.step
        };
        let mut prev: Option<(f64, Vec<f64>)> = None; // (h of last step, x before it)
        let nn = self.node_count() - 1;

        while t < cfg.stop - 1e-18 {
            // Step budget: another point is needed but the budget is spent.
            if times.len() >= cfg.max_points {
                return Err(Error::StepBudgetExhausted {
                    points: times.len(),
                    time: t,
                });
            }
            // Test-only injection hook (inert unless this thread armed a
            // FaultPlan); checked per accepted point, before the solve.
            if let Some(e) = crate::inject::fire(times.len(), t) {
                return Err(e);
            }
            // Next target time: current step, clipped to breakpoint/stop.
            let mut tn = t + h_cur;
            let mut hit_bp = false;
            while next_bp < breakpoints.len() && breakpoints[next_bp] <= t + 1e-18 {
                next_bp += 1;
            }
            if next_bp < breakpoints.len() && breakpoints[next_bp] < tn - 1e-18 {
                tn = breakpoints[next_bp];
                hit_bp = true;
            }
            if tn > cfg.stop {
                tn = cfg.stop;
            }

            let method = match cfg.integrator {
                Integrator::BackwardEuler => Method::BackwardEuler,
                Integrator::Trapezoidal => {
                    if after_discontinuity {
                        Method::BackwardEuler
                    } else {
                        Method::Trapezoidal
                    }
                }
            };

            // Solve at tn, halving the step on Newton failure (up to 6x)
            // or, in adaptive mode, on an LTE violation.
            let mut sub_t = tn;
            let mut attempts = 0;
            let mut xn = x.clone();
            let mut lte = 0.0_f64;
            loop {
                let h = sub_t - t;
                match sys.solve_newton(
                    &mut xn,
                    sub_t,
                    Some((&caps, h, method)),
                    1.0,
                    0.0,
                    cfg.max_newton,
                    "transient",
                ) {
                    Ok(()) => {
                        // LTE estimate: deviation from the linear
                        // predictor built on the previous accepted step.
                        if cfg.adaptive && !after_discontinuity {
                            if let Some((h_prev, ref x_prev)) = prev {
                                lte = 0.0;
                                for i in 0..nn {
                                    let slope = (x[i] - x_prev[i]) / h_prev;
                                    let pred = x[i] + slope * h;
                                    lte = lte.max((xn[i] - pred).abs());
                                }
                                if lte > cfg.lte_tol && h > h_min && attempts <= 10 {
                                    attempts += 1;
                                    sub_t = t + h / 2.0;
                                    xn.copy_from_slice(&x);
                                    continue;
                                }
                            }
                        }
                        break;
                    }
                    Err(e @ Error::SingularMatrix { .. }) => return Err(e),
                    Err(e) => {
                        attempts += 1;
                        if attempts > 10 {
                            return Err(e);
                        }
                        sub_t = t + (sub_t - t) / 2.0;
                        xn.copy_from_slice(&x);
                    }
                }
            }

            // Accept the (possibly shortened) step: update companion states.
            let h = sub_t - t;
            if cfg.adaptive {
                // Grow in quiet intervals, shrink when the error crowds
                // the tolerance.
                if lte < 0.25 * cfg.lte_tol {
                    h_cur = (h * 1.6).min(cfg.step);
                } else if lte > 0.75 * cfg.lte_tol {
                    h_cur = (h / 1.5).max(h_min);
                } else {
                    h_cur = h.min(cfg.step);
                }
            }
            prev = Some((h, x.clone()));
            for (st, &(a, b, c)) in caps.iter_mut().zip(&branches) {
                let v_now = System::node_voltage(&xn, a) - System::node_voltage(&xn, b);
                let i_now = match method {
                    Method::BackwardEuler => c / h * (v_now - st.v_prev),
                    Method::Trapezoidal => 2.0 * c / h * (v_now - st.v_prev) - st.i_prev,
                };
                st.v_prev = v_now;
                st.i_prev = i_now;
            }
            x = xn;
            t = sub_t;
            record(t, &x, &mut times, &mut voltages);
            after_discontinuity = hit_bp && (sub_t - tn).abs() < 1e-18;
        }

        Ok(TranResult { times, voltages })
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::elements::Waveform;

    /// RC charging must match the analytic exponential.
    #[test]
    fn rc_step_response_matches_analytic() {
        let r = 1e3;
        let c = 1e-12;
        let tau = r * c; // 1 ns
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource(
            vin,
            Circuit::GROUND,
            Waveform::step(0.0, 1.0, 0.1e-9, 1e-12),
        );
        ckt.resistor(vin, out, r);
        ckt.capacitor(out, Circuit::GROUND, c);

        let res = ckt.transient(&TranConfig::new(5e-12, 6e-9)).unwrap();
        let trace = res.trace(out);
        for k in 1..=4 {
            let t = 0.1e-9 + k as f64 * tau;
            let expect = 1.0 - (-(k as f64)).exp();
            let got = trace.value_at(t);
            assert!(
                (got - expect).abs() < 5e-3,
                "at t={k}τ expected {expect:.4}, got {got:.4}"
            );
        }
    }

    #[test]
    fn rc_with_backward_euler_also_converges() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource(vin, Circuit::GROUND, Waveform::step(0.0, 1.0, 0.0, 1e-12));
        ckt.resistor(vin, out, 1e3);
        ckt.capacitor(out, Circuit::GROUND, 1e-12);

        let cfg = TranConfig::with_integrator(2e-12, 10e-9, Integrator::BackwardEuler);
        let res = ckt.transient(&cfg).unwrap();
        assert!((res.trace(out).last_value() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn pulse_passes_through_rc_and_returns() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource(
            vin,
            Circuit::GROUND,
            Waveform::single_pulse(0.0, 1.0, 1e-9, 50e-12, 50e-12, 2e-9),
        );
        ckt.resistor(vin, out, 1e3);
        ckt.capacitor(out, Circuit::GROUND, 0.2e-12);

        let res = ckt.transient(&TranConfig::new(10e-12, 8e-9)).unwrap();
        let tr = res.trace(out);
        // The output peaks near 1 V during the pulse and decays after.
        let peak = tr.max_value();
        assert!(peak > 0.98, "peak {peak}");
        assert!(
            tr.last_value() < 0.02,
            "should discharge, got {}",
            tr.last_value()
        );
    }

    #[test]
    fn breakpoints_are_sampled_exactly() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        ckt.vsource(
            vin,
            Circuit::GROUND,
            Waveform::single_pulse(0.0, 1.0, 1.0e-9, 0.1e-9, 0.1e-9, 0.5e-9),
        );
        ckt.resistor(vin, Circuit::GROUND, 1e3);

        // Base step of 0.3 ns would step over the 1.0 ns edge without
        // breakpoint snapping.
        let res = ckt.transient(&TranConfig::new(0.3e-9, 3e-9)).unwrap();
        for bp in [1.0e-9, 1.1e-9, 1.6e-9, 1.7e-9] {
            assert!(
                res.times().iter().any(|&t| (t - bp).abs() < 1e-15),
                "breakpoint {bp:e} not sampled"
            );
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource(a, Circuit::GROUND, Waveform::dc(1.0));
        ckt.resistor(a, Circuit::GROUND, 1.0);

        assert!(ckt.transient(&TranConfig::new(-1.0, 1.0)).is_err());
        assert!(ckt.transient(&TranConfig::new(1.0, -1.0)).is_err());
        assert!(ckt.transient(&TranConfig::new(2.0, 1.0)).is_err());
        let mut cfg = TranConfig::new(1e-12, 1e-9);
        cfg.max_newton = 0;
        assert!(ckt.transient(&cfg).is_err());
    }

    #[test]
    fn adaptive_matches_fixed_step_accuracy_with_fewer_points() {
        let r = 1e3;
        let c = 1e-12;
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource(
            vin,
            Circuit::GROUND,
            Waveform::step(0.0, 1.0, 0.1e-9, 1e-12),
        );
        ckt.resistor(vin, out, r);
        ckt.capacitor(out, Circuit::GROUND, c);

        let fixed = ckt.transient(&TranConfig::new(2e-12, 8e-9)).unwrap();
        let adapt = ckt.transient(&TranConfig::adaptive(200e-12, 8e-9)).unwrap();
        assert!(
            adapt.len() < fixed.len() / 4,
            "adaptive should need far fewer points: {} vs {}",
            adapt.len(),
            fixed.len()
        );
        // Accuracy against the analytic exponential at several times.
        let tau = r * c;
        for k in 1..=4 {
            let t = 0.1e-9 + k as f64 * tau;
            let expect = 1.0 - (-(k as f64)).exp();
            let got = adapt.trace(out).value_at(t);
            assert!((got - expect).abs() < 1e-2, "at {k}τ: {got} vs {expect}");
        }
    }

    #[test]
    fn adaptive_still_resolves_short_pulses() {
        // A 150 ps pulse must not be smeared away by large steps: the
        // breakpoint snapping + LTE control keep it sharp.
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource(
            vin,
            Circuit::GROUND,
            Waveform::single_pulse(0.0, 1.0, 1e-9, 20e-12, 20e-12, 150e-12),
        );
        ckt.resistor(vin, out, 1e3);
        ckt.capacitor(out, Circuit::GROUND, 20e-15); // τ = 20 ps

        let res = ckt.transient(&TranConfig::adaptive(500e-12, 3e-9)).unwrap();
        let w = res
            .trace(out)
            .widest_pulse_width(0.5, crate::waveform::Polarity::PositiveGoing);
        assert!(
            (w - 170e-12).abs() < 25e-12,
            "pulse width distorted by adaptive stepping: {w:e}"
        );
    }

    #[test]
    fn step_budget_degrades_into_reported_failure() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource(
            vin,
            Circuit::GROUND,
            Waveform::step(0.0, 1.0, 0.1e-9, 1e-12),
        );
        ckt.resistor(vin, out, 1e3);
        ckt.capacitor(out, Circuit::GROUND, 1e-12);

        let mut cfg = TranConfig::new(5e-12, 6e-9);
        cfg.max_points = 10;
        match ckt.transient(&cfg) {
            Err(Error::StepBudgetExhausted { points, time }) => {
                assert_eq!(points, 10);
                assert!(time < 6e-9);
            }
            other => panic!("expected StepBudgetExhausted, got {other:?}"),
        }
        // A budget the run fits inside must not trip.
        cfg.max_points = 100_000;
        assert!(ckt.transient(&cfg).is_ok());
    }

    #[test]
    fn armed_fault_plan_trips_the_solver() {
        use crate::inject::{FaultKind, FaultPlan};

        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource(
            vin,
            Circuit::GROUND,
            Waveform::step(0.0, 1.0, 0.1e-9, 1e-12),
        );
        ckt.resistor(vin, out, 1e3);
        ckt.capacitor(out, Circuit::GROUND, 1e-12);
        let cfg = TranConfig::new(5e-12, 2e-9);

        let plan = FaultPlan::new()
            .fail_sample_at_point(0, FaultKind::NonConvergence, 3, 1)
            .fail_sample(1, FaultKind::SingularMatrix, FaultPlan::ALWAYS);
        {
            let _g = plan.arm(0, 1);
            match ckt.transient(&cfg) {
                Err(Error::NoConvergence { context, .. }) => assert_eq!(context, "injected fault"),
                other => panic!("expected injected NoConvergence, got {other:?}"),
            }
        }
        {
            // Attempt 2 is past sample 0's failing window: the run heals.
            let _g = plan.arm(0, 2);
            assert!(ckt.transient(&cfg).is_ok());
        }
        {
            let _g = plan.arm(1, 5);
            assert!(matches!(
                ckt.transient(&cfg),
                Err(Error::SingularMatrix { row: usize::MAX })
            ));
        }
        // Nothing armed: clean run.
        assert!(ckt.transient(&cfg).is_ok());
    }

    #[test]
    fn coupling_capacitor_divider() {
        // Two series capacitors from a stepped source: the middle node
        // settles at the capacitive divider voltage right after the edge.
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let mid = ckt.node("mid");
        ckt.vsource(
            vin,
            Circuit::GROUND,
            Waveform::step(0.0, 1.0, 0.5e-9, 1e-12),
        );
        ckt.capacitor(vin, mid, 3e-15);
        ckt.capacitor(mid, Circuit::GROUND, 1e-15);

        let res = ckt.transient(&TranConfig::new(5e-12, 1.0e-9)).unwrap();
        let v = res.trace(mid).value_at(0.6e-9);
        // Divider: 3f/(3f+1f) = 0.75 (slowly discharged by the gmin floor,
        // negligible at this time scale).
        assert!((v - 0.75).abs() < 0.01, "capacitive divider voltage {v}");
    }
}
