//! Circuit analyses: DC operating point and transient simulation.

pub(crate) mod dcop;
pub(crate) mod transient;
