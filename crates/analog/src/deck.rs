//! A SPICE-flavoured netlist deck parser.
//!
//! Lets users drive the simulator from text instead of the builder API —
//! handy for regression decks and for importing small circuits from other
//! tools. The supported subset covers what this engine simulates:
//!
//! ```text
//! * title / comment lines
//! V1 in 0 DC 1.8
//! VIN a 0 PULSE(0 1.8 1n 0.1n 0.1n 0.5n)
//! R1 in out 4.7k
//! C1 out 0 12f
//! I1 0 out DC 1m
//! M1 out in 0 NMOS W=0.9u L=0.18u
//! .model NMOS nmos VT0=0.4 KP=170u LAMBDA=0.06 CGS=1f CGD=1f CDB=1f
//! .tran 4p 8n
//! .end
//! ```
//!
//! Node `0` (or `gnd`) is ground. Engineering suffixes `f p n u m k meg g
//! t` are accepted on all numbers. Elements may reference `.model` cards
//! defined later in the deck.

use crate::analysis::transient::TranConfig;
use crate::circuit::{Circuit, NodeId};
use crate::elements::{MosType, Mosfet, MosfetParams, Waveform};
use crate::error::Error;
use std::collections::HashMap;

/// A parsed deck: the circuit, named-node lookup and the `.tran`
/// directive if one was present.
#[derive(Debug, Clone)]
pub struct Deck {
    /// The assembled circuit.
    pub circuit: Circuit,
    /// The `.tran` configuration, when the deck contained one.
    pub tran: Option<TranConfig>,
}

impl Deck {
    /// Resolves a node by its deck name.
    pub fn node(&self, name: &str) -> Option<NodeId> {
        if is_ground(name) {
            Some(Circuit::GROUND)
        } else {
            self.circuit.find_node(name)
        }
    }
}

/// Parses a deck; see the module docs for the supported subset.
///
/// # Errors
///
/// [`Error::InvalidParameter`] with the element kind for malformed cards;
/// the message names the failing construct. Line numbers are carried in
/// the panic-free API via the `parameter` field (`"line"`).
pub fn parse_deck(text: &str) -> Result<Deck, Error> {
    let mut circuit = Circuit::new();
    let mut nodes: HashMap<String, NodeId> = HashMap::new();
    let mut models: HashMap<String, MosfetParams> = HashMap::new();
    let mut mosfets: Vec<(NodeId, NodeId, NodeId, String, f64, f64, usize)> = Vec::new();
    let mut tran = None;

    let mut node = |circuit: &mut Circuit, name: &str| -> NodeId {
        if is_ground(name) {
            return Circuit::GROUND;
        }
        *nodes
            .entry(name.to_lowercase())
            .or_insert_with(|| circuit.node(name.to_lowercase()))
    };

    for (lineno, raw) in text.lines().enumerate() {
        let line_no = lineno + 1;
        let line = raw.split(';').next().unwrap_or("").trim();
        // SPICE convention: the first line is always the title.
        if line.is_empty() || line.starts_with('*') || line_no == 1 {
            continue;
        }
        let lower = line.to_lowercase();
        let toks: Vec<&str> = tokenize(&lower);
        if toks.is_empty() {
            continue;
        }

        let fail = |why: &'static str| Error::InvalidParameter {
            element: why,
            parameter: "line",
            value: line_no as f64,
        };

        match toks[0].chars().next().expect("non-empty token") {
            'r' => {
                let [_, a, b, v] = toks.as_slice() else {
                    return Err(fail("resistor card"));
                };
                let ohms = number(v).ok_or_else(|| fail("resistor value"))?;
                let (na, nb) = (node(&mut circuit, a), node(&mut circuit, b));
                if !(ohms.is_finite() && ohms > 0.0) {
                    return Err(fail("resistor value"));
                }
                circuit.resistor(na, nb, ohms);
            }
            'c' => {
                let [_, a, b, v] = toks.as_slice() else {
                    return Err(fail("capacitor card"));
                };
                let farads = number(v).ok_or_else(|| fail("capacitor value"))?;
                let (na, nb) = (node(&mut circuit, a), node(&mut circuit, b));
                if !(farads.is_finite() && farads >= 0.0) {
                    return Err(fail("capacitor value"));
                }
                circuit.capacitor(na, nb, farads);
            }
            'v' | 'i' => {
                if toks.len() < 4 {
                    return Err(fail("source card"));
                }
                let (p, n) = (node(&mut circuit, toks[1]), node(&mut circuit, toks[2]));
                let wave = parse_source(&toks[3..]).ok_or_else(|| fail("source waveform"))?;
                if toks[0].starts_with('v') {
                    circuit.vsource(p, n, wave);
                } else {
                    circuit.isource(p, n, wave);
                }
            }
            'm' => {
                // M<name> d g s <model> [W=..] [L=..]
                if toks.len() < 5 {
                    return Err(fail("mosfet card"));
                }
                let d = node(&mut circuit, toks[1]);
                let g = node(&mut circuit, toks[2]);
                let s = node(&mut circuit, toks[3]);
                let model = toks[4].to_owned();
                let mut w = 1e-6;
                let mut l = 0.18e-6;
                for t in &toks[5..] {
                    if let Some(v) = t.strip_prefix("w=").and_then(number) {
                        w = v;
                    } else if let Some(v) = t.strip_prefix("l=").and_then(number) {
                        l = v;
                    } else {
                        return Err(fail("mosfet parameter"));
                    }
                }
                mosfets.push((d, g, s, model, w, l, line_no));
            }
            '.' => match toks[0] {
                ".model" => {
                    if toks.len() < 3 {
                        return Err(fail(".model card"));
                    }
                    let name = toks[1].to_owned();
                    let kind = toks[2];
                    if kind != "nmos" && kind != "pmos" {
                        return Err(fail(".model kind"));
                    }
                    let mut p = MosfetParams {
                        vt0: if kind == "nmos" { 0.4 } else { -0.4 },
                        kp: if kind == "nmos" { 170e-6 } else { 60e-6 },
                        lambda: 0.06,
                        w: 1e-6,
                        l: 0.18e-6,
                        cgs: 0.0,
                        cgd: 0.0,
                        cdb: 0.0,
                    };
                    for t in &toks[3..] {
                        let Some((k, v)) = t.split_once('=') else {
                            return Err(fail(".model parameter"));
                        };
                        let v = number(v).ok_or_else(|| fail(".model value"))?;
                        match k {
                            "vt0" => p.vt0 = v,
                            "kp" => p.kp = v,
                            "lambda" => p.lambda = v,
                            "cgs" => p.cgs = v,
                            "cgd" => p.cgd = v,
                            "cdb" => p.cdb = v,
                            _ => return Err(fail(".model parameter")),
                        }
                    }
                    // Encode the polarity in the sign convention of vt0
                    // plus an explicit marker entry.
                    models.insert(format!("{name}:{kind}"), p);
                    models.insert(name, p);
                    if kind == "pmos" {
                        models.insert(format!("{}:pmos-flag", toks[1]), p);
                    }
                }
                ".tran" => {
                    let [_, step, stop] = toks.as_slice() else {
                        return Err(fail(".tran card"));
                    };
                    let step = number(step).ok_or_else(|| fail(".tran step"))?;
                    let stop = number(stop).ok_or_else(|| fail(".tran stop"))?;
                    tran = Some(TranConfig::new(step, stop));
                }
                ".end" => break,
                _ => return Err(fail("directive")),
            },
            _ => return Err(fail("card")),
        }
    }

    // Second pass: instantiate MOSFETs now that all models are known.
    for (d, g, s, model, w, l, line_no) in mosfets {
        let params = models.get(&model).ok_or(Error::InvalidParameter {
            element: "mosfet model reference",
            parameter: "line",
            value: line_no as f64,
        })?;
        let kind = if models.contains_key(&format!("{model}:pmos-flag")) {
            MosType::Pmos
        } else {
            MosType::Nmos
        };
        let params = MosfetParams { w, l, ..*params };
        circuit.add_mosfet(Mosfet {
            kind,
            d,
            g,
            s,
            params,
        });
    }

    Ok(Deck { circuit, tran })
}

fn is_ground(name: &str) -> bool {
    name == "0" || name.eq_ignore_ascii_case("gnd")
}

/// Splits a card into tokens, keeping `PULSE(...)`-style groups together.
fn tokenize(line: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = None;
    for (i, ch) in line.char_indices() {
        match ch {
            '(' => {
                depth += 1;
                if start.is_none() {
                    start = Some(i);
                }
            }
            ')' => depth = depth.saturating_sub(1),
            c if c.is_whitespace() && depth == 0 => {
                if let Some(s) = start.take() {
                    out.push(&line[s..i]);
                }
            }
            _ => {
                if start.is_none() {
                    start = Some(i);
                }
            }
        }
    }
    if let Some(s) = start {
        out.push(&line[s..]);
    }
    out
}

/// Parses a number with engineering suffix (`4.7k`, `12f`, `3meg`).
fn number(s: &str) -> Option<f64> {
    let s = s.trim();
    let (digits, mult) = if let Some(p) = s.to_lowercase().strip_suffix("meg").map(|p| p.len()) {
        (&s[..p], 1e6)
    } else {
        match s.chars().last()? {
            't' | 'T' => (&s[..s.len() - 1], 1e12),
            'g' | 'G' => (&s[..s.len() - 1], 1e9),
            'k' | 'K' => (&s[..s.len() - 1], 1e3),
            'm' | 'M' => (&s[..s.len() - 1], 1e-3),
            'u' | 'U' => (&s[..s.len() - 1], 1e-6),
            'n' | 'N' => (&s[..s.len() - 1], 1e-9),
            'p' | 'P' => (&s[..s.len() - 1], 1e-12),
            'f' | 'F' => (&s[..s.len() - 1], 1e-15),
            _ => (s, 1.0),
        }
    };
    digits.parse::<f64>().ok().map(|v| v * mult)
}

/// Parses the source-value part of a V/I card.
fn parse_source(toks: &[&str]) -> Option<Waveform> {
    let first = toks.first()?;
    if let Some(rest) = first.strip_prefix("pulse(") {
        let inner = rest.strip_suffix(')')?;
        let vals: Vec<f64> = inner
            .split([',', ' '])
            .filter(|s| !s.is_empty())
            .map(number)
            .collect::<Option<_>>()?;
        if vals.len() < 6 {
            return None;
        }
        return Some(Waveform::Pulse {
            v1: vals[0],
            v2: vals[1],
            delay: vals[2],
            rise: vals[3],
            fall: vals[4],
            width: vals[5],
            period: vals.get(6).copied().unwrap_or(f64::INFINITY),
        });
    }
    if let Some(rest) = first.strip_prefix("pwl(") {
        let inner = rest.strip_suffix(')')?;
        let vals: Vec<f64> = inner
            .split([',', ' '])
            .filter(|s| !s.is_empty())
            .map(number)
            .collect::<Option<_>>()?;
        if !vals.len().is_multiple_of(2) || vals.is_empty() {
            return None;
        }
        return Some(Waveform::Pwl(
            vals.chunks(2).map(|c| (c[0], c[1])).collect(),
        ));
    }
    if *first == "dc" {
        return Some(Waveform::Dc(number(toks.get(1)?)?));
    }
    // Bare value = DC.
    Some(Waveform::Dc(number(first)?))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn numbers_with_suffixes() {
        let close = |got: Option<f64>, want: f64| {
            let got = got.expect("parses");
            assert!((got - want).abs() <= 1e-12 * want.abs(), "{got} vs {want}");
        };
        close(number("4.7k"), 4700.0);
        close(number("12f"), 12e-15);
        close(number("3meg"), 3e6);
        close(number("100"), 100.0);
        close(number("1.5n"), 1.5e-9);
        close(number("2u"), 2e-6);
        assert_eq!(number("bogus"), None);
    }

    #[test]
    fn rc_divider_deck_simulates() {
        let deck = parse_deck(
            "rc divider test\n\
             V1 in 0 DC 2.0\n\
             R1 in mid 1k\n\
             R2 mid 0 1k\n\
             .end\n",
        )
        .unwrap();
        let dc = deck.circuit.dc_op().unwrap();
        let mid = deck.node("mid").unwrap();
        assert!((dc.voltage(mid) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn pulse_source_and_tran_directive() {
        let deck = parse_deck(
            "pulse deck\n\
             V1 in 0 PULSE(0 1.8 1n 0.1n 0.1n 0.5n)\n\
             R1 in out 1k\n\
             C1 out 0 0.1p\n\
             .tran 4p 4n\n\
             .end\n",
        )
        .unwrap();
        let cfg = deck.tran.clone().expect(".tran parsed");
        assert_eq!(cfg.step, 4e-12);
        let res = deck.circuit.transient(&cfg).unwrap();
        let out = deck.node("out").unwrap();
        assert!(
            res.trace(out).max_value() > 1.5,
            "pulse must reach the output"
        );
    }

    #[test]
    fn mosfet_inverter_deck() {
        let deck = parse_deck(
            "cmos inverter\n\
             V1 vdd 0 DC 1.8\n\
             V2 in 0 DC 0\n\
             M1 out in vdd PCH W=2u L=0.18u\n\
             M2 out in 0 NCH W=1u L=0.18u\n\
             C1 out 0 10f\n\
             .model NCH nmos VT0=0.4 KP=170u LAMBDA=0.06\n\
             .model PCH pmos VT0=-0.42 KP=60u LAMBDA=0.08\n\
             .end\n",
        )
        .unwrap();
        let dc = deck.circuit.dc_op().unwrap();
        let out = deck.node("out").unwrap();
        assert!(
            dc.voltage(out) > 1.7,
            "inverter with low input must pull high"
        );
    }

    #[test]
    fn model_can_be_defined_after_use() {
        let deck = parse_deck(
            "forward model reference\n\
             V1 g 0 DC 1.8\n\
             V2 d 0 DC 1.8\n\
             M1 d g 0 NX W=1u L=0.2u\n\
             .model NX nmos VT0=0.4 KP=100u\n\
             .end\n",
        )
        .unwrap();
        assert_eq!(deck.circuit.elements().len(), 3);
    }

    #[test]
    fn pwl_source() {
        let deck =
            parse_deck("pwl deck\nV1 a 0 PWL(0 0 1n 1.0 2n 0.5)\nR1 a 0 1k\n.end\n").unwrap();
        match &deck.circuit.elements()[0] {
            crate::elements::Element::Vsource {
                wave: Waveform::Pwl(pts),
                ..
            } => {
                assert_eq!(pts.len(), 3);
                assert_eq!(pts[1], (1e-9, 1.0));
            }
            other => panic!("expected pwl source, got {other:?}"),
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_deck("title\nR1 in out\n").unwrap_err();
        match err {
            Error::InvalidParameter {
                parameter: "line",
                value,
                ..
            } => {
                assert_eq!(value, 2.0)
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(parse_deck("title\nM1 d g 0 GHOST W=1u\n.end\n").is_err());
        assert!(parse_deck("title\nQ1 a b c\n").is_err());
        assert!(parse_deck("title\n.model X bjt\n").is_err());
        assert!(parse_deck("title\nV1 a 0 PULSE(0 1)\n").is_err());
    }

    #[test]
    fn title_line_and_comments_skipped() {
        let deck = parse_deck(
            "My Fancy Circuit Title 123\n\
             * a comment\n\
             R1 a 0 1k ; trailing comment\n\
             V1 a 0 1.0\n",
        )
        .unwrap();
        assert_eq!(deck.circuit.elements().len(), 2);
    }

    #[test]
    fn ground_aliases() {
        let deck = parse_deck("t\nR1 a GND 1k\nV1 a 0 1.0\n").unwrap();
        let dc = deck.circuit.dc_op().unwrap();
        let a = deck.node("a").unwrap();
        assert!((dc.voltage(a) - 1.0).abs() < 1e-9);
        assert_eq!(deck.node("gnd"), Some(Circuit::GROUND));
    }
}
