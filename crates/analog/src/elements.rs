use crate::circuit::NodeId;

/// Time-dependent value of an independent source.
///
/// The variants mirror the SPICE source kinds the experiments need: DC
/// levels, trapezoidal pulses (for pulse injection and clock-like stimuli)
/// and piecewise-linear waveforms (for arbitrary stimuli).
///
/// # Example
///
/// ```
/// use pulsar_analog::Waveform;
///
/// let w = Waveform::single_pulse(0.0, 1.8, 1e-9, 0.1e-9, 0.1e-9, 0.5e-9);
/// assert_eq!(w.value_at(0.0), 0.0);     // before the pulse
/// assert_eq!(w.value_at(1.3e-9), 1.8);  // flat top
/// assert_eq!(w.value_at(5.0e-9), 0.0);  // after
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Waveform {
    /// Constant value for all time.
    Dc(f64),
    /// SPICE-style trapezoidal pulse train.
    Pulse {
        /// Initial (resting) value.
        v1: f64,
        /// Pulsed value.
        v2: f64,
        /// Time of the first departure from `v1`.
        delay: f64,
        /// 0 → 100 % rise time of the leading edge.
        rise: f64,
        /// Fall time of the trailing edge.
        fall: f64,
        /// Time spent at `v2` between the edges.
        width: f64,
        /// Repetition period; `f64::INFINITY` for a single pulse.
        period: f64,
    },
    /// Piecewise-linear waveform through `(time, value)` points.
    ///
    /// Before the first point the value is the first point's value; after
    /// the last it holds the last value. Points must be sorted by time.
    Pwl(Vec<(f64, f64)>),
}

impl Waveform {
    /// Convenience constructor for a DC source.
    pub fn dc(v: f64) -> Self {
        Waveform::Dc(v)
    }

    /// A single trapezoidal pulse from `v1` to `v2` and back.
    ///
    /// `width` is measured between the end of the rising edge and the start
    /// of the falling edge (flat-top width).
    pub fn single_pulse(v1: f64, v2: f64, delay: f64, rise: f64, fall: f64, width: f64) -> Self {
        Waveform::Pulse {
            v1,
            v2,
            delay,
            rise,
            fall,
            width,
            period: f64::INFINITY,
        }
    }

    /// A single voltage step from `v1` to `v2` with the given `rise` time.
    pub fn step(v1: f64, v2: f64, delay: f64, rise: f64) -> Self {
        Waveform::Pulse {
            v1,
            v2,
            delay,
            rise,
            fall: rise,
            width: f64::INFINITY,
            period: f64::INFINITY,
        }
    }

    /// Value of the waveform at time `t` (t may be negative; sources hold
    /// their initial value for `t <= 0`).
    pub fn value_at(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Pulse {
                v1,
                v2,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                let mut tl = t - delay;
                if tl < 0.0 {
                    return *v1;
                }
                if period.is_finite() && *period > 0.0 {
                    tl %= period;
                }
                if tl < *rise {
                    if *rise == 0.0 {
                        return *v2;
                    }
                    return v1 + (v2 - v1) * tl / rise;
                }
                tl -= rise;
                if tl < *width {
                    return *v2;
                }
                tl -= width;
                if tl < *fall {
                    if *fall == 0.0 {
                        return *v1;
                    }
                    return v2 + (v1 - v2) * tl / fall;
                }
                *v1
            }
            Waveform::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                for w in points.windows(2) {
                    let (t0, v0) = w[0];
                    let (t1, v1) = w[1];
                    if t <= t1 {
                        if t1 == t0 {
                            return v1;
                        }
                        return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
                    }
                }
                points.last().expect("non-empty").1
            }
        }
    }

    /// Times at which the waveform has corners (slope discontinuities)
    /// within `[0, stop]`. The transient engine forces time points here so
    /// sharp edges are never stepped over.
    pub fn breakpoints(&self, stop: f64) -> Vec<f64> {
        let mut out = Vec::new();
        match self {
            Waveform::Dc(_) => {}
            Waveform::Pulse {
                delay,
                rise,
                fall,
                width,
                period,
                ..
            } => {
                let mut base = *delay;
                loop {
                    for t in [
                        base,
                        base + rise,
                        base + rise + width,
                        base + rise + width + fall,
                    ] {
                        if t.is_finite() && t >= 0.0 && t <= stop {
                            out.push(t);
                        }
                    }
                    if !(period.is_finite() && *period > 0.0) {
                        break;
                    }
                    base += period;
                    if base > stop {
                        break;
                    }
                }
            }
            Waveform::Pwl(points) => {
                out.extend(
                    points
                        .iter()
                        .map(|&(t, _)| t)
                        .filter(|&t| t >= 0.0 && t <= stop),
                );
            }
        }
        out
    }
}

/// MOSFET channel polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MosType {
    /// N-channel: conducts for `vgs > vt0`.
    Nmos,
    /// P-channel: conducts for `vgs < vt0` (with `vt0 < 0`).
    Pmos,
}

/// Level-1 (Shichman–Hodges) MOSFET model parameters.
///
/// This is the classic square-law model with channel-length modulation,
/// which captures the drive-strength physics the pulse-dampening study
/// depends on: a resistive open in series with the pull-up/-down path
/// reduces the effective `vds` across the device and thereby the charging
/// current into the load capacitance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosfetParams {
    /// Zero-bias threshold voltage (negative for PMOS), volts.
    pub vt0: f64,
    /// Transconductance parameter `KP = µ·Cox`, A/V².
    pub kp: f64,
    /// Channel-length modulation, 1/V.
    pub lambda: f64,
    /// Channel width, meters.
    pub w: f64,
    /// Channel length, meters.
    pub l: f64,
    /// Lumped gate-source capacitance, farads.
    pub cgs: f64,
    /// Lumped gate-drain capacitance, farads.
    pub cgd: f64,
    /// Lumped drain-bulk junction capacitance to the rail, farads.
    pub cdb: f64,
}

impl MosfetParams {
    /// Transconductance factor `beta = KP * W / L` of this geometry.
    pub fn beta(&self) -> f64 {
        self.kp * self.w / self.l
    }
}

/// A MOSFET instance connecting drain, gate and source nodes.
///
/// The bulk terminal is implicit: the model ignores the body effect
/// (`gamma = 0`), which is adequate for the static-CMOS gates used in the
/// pulse-propagation experiments where sources sit at the rails.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mosfet {
    /// Channel polarity.
    pub kind: MosType,
    /// Drain node.
    pub d: NodeId,
    /// Gate node.
    pub g: NodeId,
    /// Source node.
    pub s: NodeId,
    /// Model parameters.
    pub params: MosfetParams,
}

/// Evaluated large-signal state of a MOSFET at a candidate solution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosEval {
    /// Drain current flowing D → S (negative for PMOS in conduction).
    pub id: f64,
    /// ∂id/∂vgs.
    pub gm: f64,
    /// ∂id/∂vds.
    pub gds: f64,
}

impl Mosfet {
    /// Evaluates the square-law model at terminal voltages `vd`, `vg`, `vs`.
    ///
    /// Handles source/drain symmetry: if the nominal `vds` is negative the
    /// terminals are swapped internally and the current sign adjusted, so
    /// pass transistors and bidirectional conduction are modeled correctly.
    pub fn eval(&self, vd: f64, vg: f64, vs: f64) -> MosEval {
        match self.kind {
            MosType::Nmos => eval_polarity(vd, vg, vs, &self.params, 1.0),
            // A PMOS is an NMOS in mirrored voltages: flip all node
            // voltages and the threshold, then flip the current back.
            MosType::Pmos => {
                let p = MosfetParams {
                    vt0: -self.params.vt0,
                    ..self.params
                };
                let e = eval_polarity(-vd, -vg, -vs, &p, 1.0);
                MosEval {
                    id: -e.id,
                    gm: e.gm,
                    gds: e.gds,
                }
            }
        }
    }
}

fn eval_polarity(vd: f64, vg: f64, vs: f64, p: &MosfetParams, sign: f64) -> MosEval {
    // Source/drain swap for vds < 0 (symmetric device).
    let (vd, vs, flip) = if vd >= vs {
        (vd, vs, 1.0)
    } else {
        (vs, vd, -1.0)
    };
    let vgs = vg - vs;
    let vds = vd - vs;
    let beta = p.kp * p.w / p.l;
    let vov = vgs - p.vt0;

    let (id, gm, gds) = if vov <= 0.0 {
        // Cutoff: tiny leakage conductance keeps the matrix well-posed.
        (0.0, 0.0, 0.0)
    } else if vds < vov {
        // Triode region.
        let clm = 1.0 + p.lambda * vds;
        let id = beta * (vov * vds - 0.5 * vds * vds) * clm;
        let gm = beta * vds * clm;
        let gds = beta * ((vov - vds) * clm + (vov * vds - 0.5 * vds * vds) * p.lambda);
        (id, gm, gds)
    } else {
        // Saturation.
        let clm = 1.0 + p.lambda * vds;
        let id = 0.5 * beta * vov * vov * clm;
        let gm = beta * vov * clm;
        let gds = 0.5 * beta * vov * vov * p.lambda;
        (id, gm, gds)
    };

    MosEval {
        id: sign * flip * id,
        gm,
        gds,
    }
}

/// A circuit element.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Element {
    /// Linear resistor between `a` and `b`.
    Resistor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance, ohms.
        ohms: f64,
    },
    /// Linear capacitor between `a` and `b`.
    Capacitor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance, farads.
        farads: f64,
    },
    /// Independent voltage source, positive terminal `p`.
    Vsource {
        /// Positive terminal.
        p: NodeId,
        /// Negative terminal.
        n: NodeId,
        /// Source waveform.
        wave: Waveform,
    },
    /// Independent current source injecting conventional current into `p`
    /// and drawing it out of `n`.
    Isource {
        /// Terminal receiving the injected current.
        p: NodeId,
        /// Terminal the current is drawn from.
        n: NodeId,
        /// Source waveform, amperes.
        wave: Waveform,
    },
    /// MOSFET (see [`Mosfet`]).
    Mosfet(Mosfet),
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    fn nmos_params() -> MosfetParams {
        MosfetParams {
            vt0: 0.4,
            kp: 170e-6,
            lambda: 0.05,
            w: 1e-6,
            l: 0.18e-6,
            cgs: 1e-15,
            cgd: 1e-15,
            cdb: 1e-15,
        }
    }

    fn nmos() -> Mosfet {
        Mosfet {
            kind: MosType::Nmos,
            d: NodeId(1),
            g: NodeId(2),
            s: NodeId(0),
            params: nmos_params(),
        }
    }

    #[test]
    fn dc_waveform_is_flat() {
        let w = Waveform::dc(1.8);
        assert_eq!(w.value_at(-1.0), 1.8);
        assert_eq!(w.value_at(0.0), 1.8);
        assert_eq!(w.value_at(1e9), 1.8);
        assert!(w.breakpoints(1.0).is_empty());
    }

    #[test]
    fn pulse_waveform_shape() {
        let w = Waveform::single_pulse(0.0, 1.8, 1e-9, 0.1e-9, 0.1e-9, 0.5e-9);
        assert_eq!(w.value_at(0.0), 0.0);
        assert_eq!(w.value_at(0.99e-9), 0.0);
        // mid-rise
        let v = w.value_at(1.05e-9);
        assert!(
            (v - 0.9).abs() < 1e-12,
            "mid-rise should be half swing, got {v}"
        );
        // flat top
        assert_eq!(w.value_at(1.3e-9), 1.8);
        // mid-fall at delay + rise + width + fall/2 = 1.65ns
        let v = w.value_at(1.65e-9);
        assert!((v - 0.9).abs() < 1e-12);
        // back to base
        assert_eq!(w.value_at(2.0e-9), 0.0);
    }

    #[test]
    fn pulse_breakpoints_cover_all_edges() {
        let w = Waveform::single_pulse(0.0, 1.8, 1e-9, 0.1e-9, 0.1e-9, 0.5e-9);
        let bp = w.breakpoints(10e-9);
        assert_eq!(bp.len(), 4);
        assert!((bp[0] - 1.0e-9).abs() < 1e-18);
        assert!((bp[3] - 1.7e-9).abs() < 1e-18);
    }

    #[test]
    fn periodic_pulse_repeats() {
        let w = Waveform::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 0.0,
            rise: 0.0,
            fall: 0.0,
            width: 0.5,
            period: 1.0,
        };
        assert_eq!(w.value_at(0.25), 1.0);
        assert_eq!(w.value_at(0.75), 0.0);
        assert_eq!(w.value_at(1.25), 1.0);
        assert_eq!(w.value_at(7.75), 0.0);
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let w = Waveform::Pwl(vec![(0.0, 0.0), (1.0, 2.0), (3.0, 2.0)]);
        assert_eq!(w.value_at(-1.0), 0.0);
        assert_eq!(w.value_at(0.5), 1.0);
        assert_eq!(w.value_at(2.0), 2.0);
        assert_eq!(w.value_at(9.0), 2.0);
    }

    #[test]
    fn nmos_cutoff_has_zero_current() {
        let m = nmos();
        let e = m.eval(1.8, 0.0, 0.0);
        assert_eq!(e.id, 0.0);
        assert_eq!(e.gm, 0.0);
    }

    #[test]
    fn nmos_saturation_square_law() {
        let m = nmos();
        // vgs = 1.4, vds = 1.8 > vov = 1.0 → saturation
        let e = m.eval(1.8, 1.4, 0.0);
        let beta = m.params.beta();
        let expect = 0.5 * beta * 1.0 * (1.0 + 0.05 * 1.8);
        assert!((e.id - expect).abs() / expect < 1e-12);
        assert!(e.gm > 0.0 && e.gds > 0.0);
    }

    #[test]
    fn nmos_triode_current_below_saturation() {
        let m = nmos();
        // vgs = 1.8 (vov = 1.4), vds = 0.1 → deep triode
        let e = m.eval(0.1, 1.8, 0.0);
        let beta = m.params.beta();
        let expect = beta * (1.4 * 0.1 - 0.5 * 0.01) * (1.0 + 0.05 * 0.1);
        assert!((e.id - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn nmos_is_symmetric_in_drain_source() {
        let m = nmos();
        // Swap roles: current must flip sign exactly.
        let fwd = m.eval(0.5, 1.8, 0.0);
        let rev = m.eval(0.0, 1.8, 0.5);
        // In rev, the physical source is the lower node (0.5 side is drain
        // after swap); vgs differs, so just check sign and continuity at
        // vds = 0.
        assert!(fwd.id > 0.0);
        assert!(rev.id < 0.0);
        let zero = m.eval(0.7, 1.8, 0.7);
        assert_eq!(zero.id, 0.0);
    }

    #[test]
    fn pmos_mirrors_nmos() {
        let p = Mosfet {
            kind: MosType::Pmos,
            d: NodeId(1),
            g: NodeId(2),
            s: NodeId(3),
            params: MosfetParams {
                vt0: -0.4,
                ..nmos_params()
            },
        };
        // Source at 1.8 V, gate at 0 → vgs = -1.8 (on), drain pulled low.
        let e = p.eval(0.0, 0.0, 1.8);
        assert!(
            e.id < 0.0,
            "pmos sources current into the drain, id = {}",
            e.id
        );
        // Off when gate at rail.
        let off = p.eval(0.0, 1.8, 1.8);
        assert_eq!(off.id, 0.0);
    }

    #[test]
    fn mos_current_is_continuous_across_triode_saturation() {
        let m = nmos();
        let vov = 1.0; // vgs = 1.4
        let just_below = m.eval(vov - 1e-9, 1.4, 0.0);
        let just_above = m.eval(vov + 1e-9, 1.4, 0.0);
        assert!((just_below.id - just_above.id).abs() < 1e-9 * m.params.beta());
    }
}
