use crate::elements::{Element, Mosfet, Waveform};
use crate::error::Error;

/// Handle to a circuit node.
///
/// `NodeId`s are produced by [`Circuit::node`]; the distinguished
/// [`Circuit::GROUND`] node is the 0 V reference of every analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Raw index of this node inside its circuit (0 is ground).
    pub fn index(self) -> usize {
        self.0
    }

    /// True for the ground reference node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

/// A flat netlist of electrical elements connecting named nodes.
///
/// A circuit is built imperatively (`node`, `resistor`, `capacitor`,
/// `vsource`, `add_mosfet`, ...) and then analyzed with
/// [`Circuit::dc_op`](crate::Circuit::dc_op) or
/// [`Circuit::transient`](crate::Circuit::transient).
///
/// # Example
///
/// ```
/// use pulsar_analog::{Circuit, Waveform};
///
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// ckt.vsource(a, Circuit::GROUND, Waveform::dc(1.0));
/// ckt.resistor(a, Circuit::GROUND, 50.0);
/// assert_eq!(ckt.node_count(), 2); // ground + "a"
/// ```
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    node_names: Vec<String>,
    elements: Vec<Element>,
}

impl Circuit {
    /// The 0 V reference node, implicitly present in every circuit.
    pub const GROUND: NodeId = NodeId(0);

    /// Creates an empty circuit containing only the ground node.
    pub fn new() -> Self {
        Circuit {
            node_names: vec!["0".to_owned()],
            elements: Vec::new(),
        }
    }

    /// Creates a fresh node with a diagnostic name and returns its handle.
    ///
    /// Names are not required to be unique; they only appear in debug
    /// output and trace labels.
    pub fn node(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.node_names.len());
        self.node_names.push(name.into());
        id
    }

    /// Looks up the first node carrying `name`, if any.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.node_names.iter().position(|n| n == name).map(NodeId)
    }

    /// Diagnostic name of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to this circuit.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.node_names[node.0]
    }

    /// Number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// All non-ground nodes, in creation order.
    pub fn nodes(&self) -> Vec<NodeId> {
        (1..self.node_names.len()).map(NodeId).collect()
    }

    /// All elements added so far, in insertion order.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Adds a linear resistor of `ohms` between `a` and `b`.
    ///
    /// Returns the element index (useful to later identify e.g. an injected
    /// fault resistance).
    ///
    /// # Panics
    ///
    /// Panics if `ohms` is not strictly positive and finite; resistive
    /// defect sweeps must stay in the physical domain.
    pub fn resistor(&mut self, a: NodeId, b: NodeId, ohms: f64) -> usize {
        assert!(
            ohms.is_finite() && ohms > 0.0,
            "resistance must be positive, got {ohms}"
        );
        self.check_nodes(&[a, b]);
        self.push(Element::Resistor { a, b, ohms })
    }

    /// Adds a linear capacitor of `farads` between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `farads` is negative or not finite.
    pub fn capacitor(&mut self, a: NodeId, b: NodeId, farads: f64) -> usize {
        assert!(
            farads.is_finite() && farads >= 0.0,
            "capacitance must be >= 0, got {farads}"
        );
        self.check_nodes(&[a, b]);
        self.push(Element::Capacitor { a, b, farads })
    }

    /// Adds an independent voltage source; `p` is the positive terminal.
    pub fn vsource(&mut self, p: NodeId, n: NodeId, wave: Waveform) -> usize {
        self.check_nodes(&[p, n]);
        self.push(Element::Vsource { p, n, wave })
    }

    /// Adds an independent current source pushing current from `p` to `n`
    /// through the external circuit.
    pub fn isource(&mut self, p: NodeId, n: NodeId, wave: Waveform) -> usize {
        self.check_nodes(&[p, n]);
        self.push(Element::Isource { p, n, wave })
    }

    /// Adds a MOSFET.
    pub fn add_mosfet(&mut self, m: Mosfet) -> usize {
        self.check_nodes(&[m.d, m.g, m.s]);
        self.push(Element::Mosfet(m))
    }

    /// Replaces the value of the resistor at element index `idx`.
    ///
    /// This is the hook used by resistance sweeps: build the faulty circuit
    /// once, then re-simulate while varying only the defect resistance.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `idx` does not refer to a
    /// resistor or `ohms` is out of domain.
    pub fn set_resistance(&mut self, idx: usize, ohms: f64) -> Result<(), Error> {
        if !(ohms.is_finite() && ohms > 0.0) {
            return Err(Error::InvalidParameter {
                element: "resistor",
                parameter: "ohms",
                value: ohms,
            });
        }
        match self.elements.get_mut(idx) {
            Some(Element::Resistor { ohms: r, .. }) => {
                *r = ohms;
                Ok(())
            }
            _ => Err(Error::InvalidParameter {
                element: "resistor",
                parameter: "index",
                value: idx as f64,
            }),
        }
    }

    /// Replaces the waveform of the voltage source at element index `idx`.
    ///
    /// Stimulus sweeps (pulse-width searches, transition direction flips)
    /// reuse one built circuit and only swap the input waveform.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `idx` does not refer to a
    /// voltage source.
    pub fn set_vsource_wave(&mut self, idx: usize, wave: Waveform) -> Result<(), Error> {
        match self.elements.get_mut(idx) {
            Some(Element::Vsource { wave: w, .. }) => {
                *w = wave;
                Ok(())
            }
            _ => Err(Error::InvalidParameter {
                element: "vsource",
                parameter: "index",
                value: idx as f64,
            }),
        }
    }

    /// Number of extra MNA unknowns (one branch current per voltage source).
    #[cfg_attr(not(test), allow(dead_code))] // exercised by unit tests
    pub(crate) fn vsource_count(&self) -> usize {
        self.elements
            .iter()
            .filter(|e| matches!(e, Element::Vsource { .. }))
            .count()
    }

    /// Total number of MNA unknowns: node voltages (minus ground) plus
    /// voltage-source branch currents.
    #[cfg_attr(not(test), allow(dead_code))] // exercised by unit tests
    pub(crate) fn unknown_count(&self) -> usize {
        self.node_count() - 1 + self.vsource_count()
    }

    fn push(&mut self, e: Element) -> usize {
        self.elements.push(e);
        self.elements.len() - 1
    }

    fn check_nodes(&self, nodes: &[NodeId]) {
        for n in nodes {
            assert!(
                n.0 < self.node_names.len(),
                "node index {} is not in this circuit (have {} nodes)",
                n.0,
                self.node_names.len()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn ground_is_node_zero() {
        let ckt = Circuit::new();
        assert!(Circuit::GROUND.is_ground());
        assert_eq!(ckt.node_count(), 1);
        assert_eq!(ckt.node_name(Circuit::GROUND), "0");
    }

    #[test]
    fn nodes_are_sequential_and_named() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        assert_eq!(a.index(), 1);
        assert_eq!(b.index(), 2);
        assert_eq!(ckt.node_name(b), "b");
        assert_eq!(ckt.find_node("a"), Some(a));
        assert_eq!(ckt.find_node("zz"), None);
    }

    #[test]
    fn unknown_count_includes_vsource_branches() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource(a, Circuit::GROUND, Waveform::dc(1.0));
        ckt.resistor(a, b, 10.0);
        ckt.resistor(b, Circuit::GROUND, 10.0);
        // 2 node voltages + 1 branch current
        assert_eq!(ckt.unknown_count(), 3);
    }

    #[test]
    fn set_resistance_replaces_value() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let idx = ckt.resistor(a, Circuit::GROUND, 100.0);
        ckt.set_resistance(idx, 250.0).unwrap();
        match ckt.elements()[idx] {
            Element::Resistor { ohms, .. } => assert_eq!(ohms, 250.0),
            _ => panic!("expected resistor"),
        }
    }

    #[test]
    fn set_resistance_rejects_bad_inputs() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let r = ckt.resistor(a, Circuit::GROUND, 100.0);
        let c = ckt.capacitor(a, Circuit::GROUND, 1e-15);
        assert!(ckt.set_resistance(r, -5.0).is_err());
        assert!(ckt.set_resistance(r, f64::NAN).is_err());
        assert!(ckt.set_resistance(c, 10.0).is_err());
        assert!(ckt.set_resistance(999, 10.0).is_err());
    }

    #[test]
    #[should_panic(expected = "resistance must be positive")]
    fn negative_resistor_panics() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.resistor(a, Circuit::GROUND, -1.0);
    }

    #[test]
    #[should_panic(expected = "node index")]
    fn foreign_node_panics() {
        let mut ckt = Circuit::new();
        ckt.resistor(NodeId(42), Circuit::GROUND, 1.0);
    }
}
