//! Waveform traces and the measurements the pulse-propagation experiments
//! are built on: threshold crossings, propagation delays and pulse widths.
//!
//! A pulse that a faulty path "dampens" shows up here as either no
//! threshold crossing at all (fully filtered) or a much narrower width
//! between its two crossings (incomplete pulse) — exactly the phenomena of
//! Figs. 2, 3 and 5 of the paper.

/// Signal edge direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Edge {
    /// Low-to-high crossing.
    Rising,
    /// High-to-low crossing.
    Falling,
}

impl Edge {
    /// The opposite edge.
    pub fn inverted(self) -> Edge {
        match self {
            Edge::Rising => Edge::Falling,
            Edge::Falling => Edge::Rising,
        }
    }
}

/// Polarity of a pulse relative to its resting level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Polarity {
    /// Rests low, pulses high (`0 → 1 → 0`); the paper's kind *l*.
    PositiveGoing,
    /// Rests high, pulses low (`1 → 0 → 1`); the paper's kind *h*.
    NegativeGoing,
}

impl Polarity {
    /// Leading edge of a pulse of this polarity.
    pub fn leading_edge(self) -> Edge {
        match self {
            Polarity::PositiveGoing => Edge::Rising,
            Polarity::NegativeGoing => Edge::Falling,
        }
    }

    /// Polarity after passing through an inverting stage.
    pub fn inverted(self) -> Polarity {
        match self {
            Polarity::PositiveGoing => Polarity::NegativeGoing,
            Polarity::NegativeGoing => Polarity::PositiveGoing,
        }
    }
}

/// A measured pulse: the interval a signal spends beyond a threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pulse {
    /// Time of the leading threshold crossing.
    pub t_start: f64,
    /// Time of the trailing threshold crossing.
    pub t_end: f64,
    /// Extreme value reached inside the pulse (max for positive-going,
    /// min for negative-going).
    pub peak: f64,
}

impl Pulse {
    /// Pulse width measured at the threshold, seconds.
    pub fn width(&self) -> f64 {
        self.t_end - self.t_start
    }
}

/// Borrowed view of a sampled waveform `(t[i], v[i])`.
///
/// Time points must be non-decreasing. All measurements interpolate
/// linearly between samples.
///
/// # Example
///
/// ```
/// use pulsar_analog::{Polarity, Trace};
///
/// // A triangular bump: the kind of degraded pulse a defect produces.
/// let t = [0.0, 1e-9, 2e-9];
/// let v = [0.0, 1.8, 0.0];
/// let trace = Trace::new(&t, &v);
/// let width = trace.widest_pulse_width(0.9, Polarity::PositiveGoing);
/// assert!((width - 1e-9).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Trace<'a> {
    t: &'a [f64],
    v: &'a [f64],
}

impl<'a> Trace<'a> {
    /// Wraps borrowed sample arrays.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths or are empty.
    pub fn new(t: &'a [f64], v: &'a [f64]) -> Self {
        assert_eq!(t.len(), v.len(), "time/value slices must have equal length");
        assert!(!t.is_empty(), "a trace needs at least one sample");
        Trace { t, v }
    }

    /// Time points.
    pub fn times(&self) -> &'a [f64] {
        self.t
    }

    /// Sample values.
    pub fn values(&self) -> &'a [f64] {
        self.v
    }

    /// Linear interpolation at time `time`, clamped to the trace ends.
    pub fn value_at(&self, time: f64) -> f64 {
        if time <= self.t[0] {
            return self.v[0];
        }
        // hot-path: `t`/`v` are non-empty by the constructor's contract
        // (the `self.t[0]` read above already enforces it), so these
        // `last()` calls cannot fail.
        if time >= *self.t.last().expect("non-empty") {
            return *self.v.last().expect("non-empty"); // hot-path: see above
        }
        // Binary search for the bracketing interval.
        let idx = self.t.partition_point(|&x| x < time);
        let (t0, t1) = (self.t[idx - 1], self.t[idx]);
        let (v0, v1) = (self.v[idx - 1], self.v[idx]);
        if t1 == t0 {
            return v1;
        }
        v0 + (v1 - v0) * (time - t0) / (t1 - t0)
    }

    /// Last sampled value.
    pub fn last_value(&self) -> f64 {
        // hot-path: non-empty by the constructor's contract.
        *self.v.last().expect("non-empty")
    }

    /// Maximum sampled value.
    pub fn max_value(&self) -> f64 {
        self.v.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum sampled value.
    pub fn min_value(&self) -> f64 {
        self.v.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// All times at which the trace crosses `threshold` with the given
    /// `edge` direction, interpolated between samples.
    ///
    /// A crossing is a strict side change: the signal must have been
    /// strictly on one side of the threshold and later be strictly on the
    /// other. Samples *exactly at* the threshold carry no side of their
    /// own — a flat segment sitting on the threshold yields no crossing
    /// (and therefore no zero-width phantom pulse) unless the signal
    /// continues through to the other side, in which case the crossing
    /// time is the *first touch* of the threshold. Consecutive duplicate
    /// time points interpolate to their shared time. A trace that starts
    /// at the threshold takes its initial side from the first off-threshold
    /// sample without producing a crossing.
    ///
    /// Rising and falling crossings of one threshold always strictly
    /// alternate; pulse pairing in [`Trace::pulses`] relies on this.
    pub fn crossings(&self, threshold: f64, edge: Edge) -> Vec<f64> {
        // Side of a sample: None while exactly at the threshold.
        let side = |v: f64| -> Option<bool> {
            if v > threshold {
                Some(true)
            } else if v < threshold {
                Some(false)
            } else {
                None
            }
        };

        let mut out = Vec::new();
        // Last known strict side, and the index of the sample that set it.
        let mut state = side(self.v[0]);
        let mut last_off = 0usize;
        for i in 1..self.t.len() {
            let Some(above) = side(self.v[i]) else {
                // Exactly at the threshold: hold the previous side.
                continue;
            };
            match state {
                None => {
                    // Leading at-threshold run: establishes the side only.
                    state = Some(above);
                    last_off = i;
                }
                Some(prev) if prev != above => {
                    // Strict side change. Since the samples between
                    // `last_off` and `i` (if any) sit exactly on the
                    // threshold, the signal first reaches the threshold in
                    // the segment right after `last_off`.
                    let wanted = match edge {
                        Edge::Rising => above,
                        Edge::Falling => !above,
                    };
                    if wanted {
                        let (t0, t1) = (self.t[last_off], self.t[last_off + 1]);
                        let (v0, v1) = (self.v[last_off], self.v[last_off + 1]);
                        // v0 is strictly off-threshold and v1 is at or
                        // beyond it, so v1 != v0; the clamp only guards
                        // against float round-off on extreme segments.
                        let f = ((threshold - v0) / (v1 - v0)).clamp(0.0, 1.0);
                        out.push(t0 + f * (t1 - t0));
                    }
                    state = Some(above);
                    last_off = i;
                }
                Some(_) => {
                    last_off = i;
                }
            }
        }
        out
    }

    /// First crossing of `threshold` with direction `edge` at or after
    /// time `after`.
    pub fn first_crossing_after(&self, threshold: f64, edge: Edge, after: f64) -> Option<f64> {
        self.crossings(threshold, edge)
            .into_iter()
            .find(|&t| t >= after)
    }

    /// Extracts every pulse of the given `polarity` with respect to
    /// `threshold`: maximal intervals during which the signal stays beyond
    /// the threshold, with the peak excursion reached inside each.
    ///
    /// A fully dampened pulse produces no entry — the signal never crosses
    /// the threshold — which is precisely the paper's detection condition.
    ///
    /// # Truncation semantics
    ///
    /// Only *complete* pulses — a leading crossing matched by a later
    /// trailing crossing — are reported:
    ///
    /// * a trace that starts beyond the threshold contributes a trailing
    ///   crossing with no leading partner; it is skipped, never paired
    ///   with a later pulse's leading edge;
    /// * a trace that ends beyond the threshold (trailing edge truncated
    ///   at `stop`) has a final leading crossing with no partner; it is
    ///   dropped. Callers that must account for such pulses can compare
    ///   the counts of leading and trailing [`Trace::crossings`].
    ///
    /// Because crossings of one threshold strictly alternate (see
    /// [`Trace::crossings`]), every reported pulse has positive width;
    /// flat segments resting exactly on the threshold yield no zero-width
    /// pulses.
    pub fn pulses(&self, threshold: f64, polarity: Polarity) -> Vec<Pulse> {
        let lead = polarity.leading_edge();
        let trail = lead.inverted();
        let starts = self.crossings(threshold, lead);
        let ends = self.crossings(threshold, trail);
        let mut out = Vec::new();
        let mut ei = 0usize;
        for s in starts {
            // Skip unmatched trailing crossings before this leading edge
            // (e.g. the trace started beyond the threshold).
            while ei < ends.len() && ends[ei] <= s {
                ei += 1;
            }
            if ei >= ends.len() {
                // Leading edge with no trailing partner: truncated pulse.
                break;
            }
            let e = ends[ei];
            ei += 1;
            // Peak within [s, e]: samples are time-ordered, so the window
            // is a contiguous index range.
            let lo = self.t.partition_point(|&tt| tt < s);
            let mut peak = self.value_at(s);
            for i in lo..self.t.len() {
                if self.t[i] > e {
                    break;
                }
                peak = match polarity {
                    Polarity::PositiveGoing => peak.max(self.v[i]),
                    Polarity::NegativeGoing => peak.min(self.v[i]),
                };
            }
            out.push(Pulse {
                t_start: s,
                t_end: e,
                peak,
            });
        }
        out
    }

    /// Width of the widest pulse of `polarity` around `threshold`, or 0.0
    /// when the signal never completes a pulse (fully dampened).
    pub fn widest_pulse_width(&self, threshold: f64, polarity: Polarity) -> f64 {
        self.pulses(threshold, polarity)
            .iter()
            .map(Pulse::width)
            .fold(0.0, f64::max)
    }

    /// Transition (slew) time of the first `edge` after `after`: the time
    /// spent between the `lo` and `hi` thresholds (e.g. 10 %/90 % of
    /// VDD). Returns `None` when the trace never completes such a
    /// transition — which is itself a signal: a resistive open that
    /// degrades a slope may keep the node from ever reaching `hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn transition_time(&self, lo: f64, hi: f64, edge: Edge, after: f64) -> Option<f64> {
        assert!(lo < hi, "thresholds must be ordered: lo {lo} >= hi {hi}");
        match edge {
            Edge::Rising => {
                let t_lo = self.first_crossing_after(lo, Edge::Rising, after)?;
                let t_hi = self.first_crossing_after(hi, Edge::Rising, t_lo)?;
                Some(t_hi - t_lo)
            }
            Edge::Falling => {
                let t_hi = self.first_crossing_after(hi, Edge::Falling, after)?;
                let t_lo = self.first_crossing_after(lo, Edge::Falling, t_hi)?;
                Some(t_lo - t_hi)
            }
        }
    }

    /// Peak excursion from `rest` in the direction of `polarity`, in volts.
    ///
    /// Useful to quantify *partial* dampening: an incomplete pulse may still
    /// move the node without crossing the threshold.
    pub fn peak_excursion(&self, rest: f64, polarity: Polarity) -> f64 {
        match polarity {
            Polarity::PositiveGoing => self.max_value() - rest,
            Polarity::NegativeGoing => rest - self.min_value(),
        }
    }
}

/// Propagation delay from an edge on `input` to the corresponding edge on
/// `output`, both measured at `threshold`. Returns `None` if either edge
/// is missing (e.g. the transition was swallowed by the fault).
///
/// `after` restricts the search to edges at or after that time, which lets
/// callers skip initial settling.
pub fn propagation_delay(
    input: &Trace<'_>,
    in_edge: Edge,
    output: &Trace<'_>,
    out_edge: Edge,
    threshold: f64,
    after: f64,
) -> Option<f64> {
    let t_in = input.first_crossing_after(threshold, in_edge, after)?;
    let t_out = output.first_crossing_after(threshold, out_edge, t_in)?;
    Some(t_out - t_in)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    fn triangle() -> (Vec<f64>, Vec<f64>) {
        // 0 → 1 → 0 triangle over t in [0, 2].
        (vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 0.0])
    }

    #[test]
    fn value_at_interpolates_and_clamps() {
        let (t, v) = triangle();
        let tr = Trace::new(&t, &v);
        assert_eq!(tr.value_at(-1.0), 0.0);
        assert_eq!(tr.value_at(0.5), 0.5);
        assert_eq!(tr.value_at(1.5), 0.5);
        assert_eq!(tr.value_at(99.0), 0.0);
    }

    #[test]
    fn crossings_both_directions() {
        let (t, v) = triangle();
        let tr = Trace::new(&t, &v);
        let rise = tr.crossings(0.5, Edge::Rising);
        let fall = tr.crossings(0.5, Edge::Falling);
        assert_eq!(rise, vec![0.5]);
        assert_eq!(fall, vec![1.5]);
    }

    #[test]
    fn pulse_extraction_positive() {
        let (t, v) = triangle();
        let tr = Trace::new(&t, &v);
        let pulses = tr.pulses(0.5, Polarity::PositiveGoing);
        assert_eq!(pulses.len(), 1);
        let p = pulses[0];
        assert!((p.width() - 1.0).abs() < 1e-12);
        assert_eq!(p.peak, 1.0);
    }

    #[test]
    fn dampened_pulse_yields_no_crossing() {
        // A bump that stays below threshold: fully dampened.
        let t = vec![0.0, 1.0, 2.0];
        let v = vec![0.0, 0.3, 0.0];
        let tr = Trace::new(&t, &v);
        assert!(tr.pulses(0.5, Polarity::PositiveGoing).is_empty());
        assert_eq!(tr.widest_pulse_width(0.5, Polarity::PositiveGoing), 0.0);
        assert!((tr.peak_excursion(0.0, Polarity::PositiveGoing) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn negative_going_pulse() {
        let t = vec![0.0, 1.0, 2.0, 3.0];
        let v = vec![1.8, 0.0, 0.0, 1.8];
        let tr = Trace::new(&t, &v);
        let pulses = tr.pulses(0.9, Polarity::NegativeGoing);
        assert_eq!(pulses.len(), 1);
        assert_eq!(pulses[0].peak, 0.0);
        assert!(pulses[0].width() > 1.0);
    }

    #[test]
    fn pulse_train_counts_each_pulse() {
        let t: Vec<f64> = (0..9).map(|i| i as f64).collect();
        let v = vec![0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 0.2, 0.0];
        let tr = Trace::new(&t, &v);
        let pulses = tr.pulses(0.5, Polarity::PositiveGoing);
        assert_eq!(pulses.len(), 3, "the 0.2 bump must not count");
    }

    #[test]
    fn incomplete_trailing_pulse_is_ignored() {
        // Rises but never falls back: not a pulse.
        let t = vec![0.0, 1.0, 2.0];
        let v = vec![0.0, 1.0, 1.0];
        let tr = Trace::new(&t, &v);
        assert!(tr.pulses(0.5, Polarity::PositiveGoing).is_empty());
    }

    #[test]
    fn transition_time_measures_slew() {
        // Ramp from 0 to 1 over [0, 1]: 10–90 % takes 0.8.
        let t = vec![0.0, 1.0, 2.0];
        let v = vec![0.0, 1.0, 1.0];
        let tr = Trace::new(&t, &v);
        let slew = tr.transition_time(0.1, 0.9, Edge::Rising, 0.0).unwrap();
        assert!((slew - 0.8).abs() < 1e-12);
        // Falling version on the mirrored ramp.
        let v = vec![1.0, 0.0, 0.0];
        let tr = Trace::new(&t, &v);
        let slew = tr.transition_time(0.1, 0.9, Edge::Falling, 0.0).unwrap();
        assert!((slew - 0.8).abs() < 1e-12);
    }

    #[test]
    fn incomplete_transition_has_no_slew() {
        // Never reaches 0.9: a degraded edge.
        let t = vec![0.0, 1.0, 2.0];
        let v = vec![0.0, 0.5, 0.5];
        let tr = Trace::new(&t, &v);
        assert_eq!(tr.transition_time(0.1, 0.9, Edge::Rising, 0.0), None);
    }

    #[test]
    fn propagation_delay_measures_edge_to_edge() {
        let t = vec![0.0, 1.0, 2.0, 3.0, 4.0];
        let vin = vec![0.0, 0.0, 1.0, 1.0, 1.0];
        let vout = vec![1.0, 1.0, 1.0, 0.0, 0.0];
        let ti = Trace::new(&t, &vin);
        let to = Trace::new(&t, &vout);
        let d = propagation_delay(&ti, Edge::Rising, &to, Edge::Falling, 0.5, 0.0)
            .expect("both edges present");
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn propagation_delay_none_when_output_never_switches() {
        let t = vec![0.0, 1.0, 2.0];
        let vin = vec![0.0, 1.0, 1.0];
        let vout = vec![0.0, 0.0, 0.0];
        let ti = Trace::new(&t, &vin);
        let to = Trace::new(&t, &vout);
        assert!(propagation_delay(&ti, Edge::Rising, &to, Edge::Rising, 0.5, 0.0).is_none());
    }

    #[test]
    fn polarity_and_edge_helpers() {
        assert_eq!(Polarity::PositiveGoing.leading_edge(), Edge::Rising);
        assert_eq!(Polarity::NegativeGoing.leading_edge(), Edge::Falling);
        assert_eq!(Polarity::PositiveGoing.inverted(), Polarity::NegativeGoing);
        assert_eq!(Edge::Rising.inverted(), Edge::Falling);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_slices_panic() {
        let _ = Trace::new(&[0.0, 1.0], &[0.0]);
    }

    #[test]
    fn dip_to_exact_threshold_does_not_split_the_pulse() {
        // A pulse that dips to *exactly* the threshold mid-flight: the dip
        // must not end the pulse (the signal never goes strictly below).
        // The old sample-pair rule fired a falling crossing at the dip but
        // no matching rising one, truncating the measured width to 1.5.
        let t = vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let v = vec![0.0, 1.0, 0.5, 0.5, 1.0, 0.0];
        let tr = Trace::new(&t, &v);
        assert_eq!(tr.crossings(0.5, Edge::Rising), vec![0.5]);
        assert_eq!(tr.crossings(0.5, Edge::Falling), vec![4.5]);
        let pulses = tr.pulses(0.5, Polarity::PositiveGoing);
        assert_eq!(pulses.len(), 1);
        assert!((pulses[0].width() - 4.0).abs() < 1e-12);
        assert!((tr.widest_pulse_width(0.5, Polarity::PositiveGoing) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn touching_the_threshold_is_not_a_crossing() {
        // Touch from below without going through: no crossings in either
        // direction, no phantom zero-width pulse. The old rule yielded a
        // rising crossing with no falling partner.
        let t = vec![0.0, 1.0, 2.0];
        let v = vec![0.0, 0.5, 0.0];
        let tr = Trace::new(&t, &v);
        assert!(tr.crossings(0.5, Edge::Rising).is_empty());
        assert!(tr.crossings(0.5, Edge::Falling).is_empty());
        assert!(tr.pulses(0.5, Polarity::PositiveGoing).is_empty());
        assert_eq!(tr.widest_pulse_width(0.5, Polarity::PositiveGoing), 0.0);
    }

    #[test]
    fn flat_run_on_threshold_crosses_at_first_touch() {
        // Ride along the threshold, then continue to the other side: one
        // crossing, timed at the first touch — not one per flat sample.
        let t = vec![0.0, 1.0, 2.0, 3.0, 4.0];
        let v = vec![0.0, 0.5, 0.5, 0.5, 1.0];
        let tr = Trace::new(&t, &v);
        assert_eq!(tr.crossings(0.5, Edge::Rising), vec![1.0]);
        assert!(tr.crossings(0.5, Edge::Falling).is_empty());
    }

    #[test]
    fn duplicate_time_points_interpolate_cleanly() {
        // A vertical edge recorded as two samples at the same time (e.g. a
        // breakpoint snap): the crossing lands exactly on that time and is
        // reported once.
        let t = vec![0.0, 1.0, 1.0, 2.0];
        let v = vec![0.0, 0.0, 1.0, 1.0];
        let tr = Trace::new(&t, &v);
        assert_eq!(tr.crossings(0.5, Edge::Rising), vec![1.0]);
        assert!(tr.crossings(0.5, Edge::Falling).is_empty());
    }

    #[test]
    fn trace_starting_above_threshold_does_not_mispair() {
        // Starts above: the initial falling crossing has no leading
        // partner and must not pair with the later pulse's edges.
        let t = vec![0.0, 1.0, 2.0, 3.0];
        let v = vec![1.0, 0.0, 1.0, 0.0];
        let tr = Trace::new(&t, &v);
        let pulses = tr.pulses(0.5, Polarity::PositiveGoing);
        assert_eq!(pulses.len(), 1);
        assert!((pulses[0].t_start - 1.5).abs() < 1e-12);
        assert!((pulses[0].t_end - 2.5).abs() < 1e-12);
    }

    #[test]
    fn truncated_trailing_pulse_dropped_after_complete_one() {
        // One complete pulse, then a rise cut off by the end of the trace:
        // only the complete pulse is reported (documented truncation
        // semantics), and its edges are its own.
        let t = vec![0.0, 1.0, 1.0, 2.0, 3.0];
        let v = vec![0.2, 0.8, 0.8, 0.4, 0.9];
        let tr = Trace::new(&t, &v);
        let pulses = tr.pulses(0.5, Polarity::PositiveGoing);
        assert_eq!(pulses.len(), 1);
        assert!((pulses[0].t_start - 0.5).abs() < 1e-12);
        assert!((pulses[0].t_end - 1.75).abs() < 1e-12);
        assert!((tr.widest_pulse_width(0.5, Polarity::PositiveGoing) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn trace_starting_exactly_on_threshold_sets_state_without_crossing() {
        // First sample exactly at the threshold: the first off-threshold
        // sample establishes the side silently.
        let t = vec![0.0, 1.0, 2.0];
        let v = vec![0.5, 1.0, 0.0];
        let tr = Trace::new(&t, &v);
        assert!(tr.crossings(0.5, Edge::Rising).is_empty());
        assert_eq!(tr.crossings(0.5, Edge::Falling), vec![1.5]);
    }

    #[test]
    fn final_segment_terminating_exactly_on_threshold_is_truncated() {
        // A pulse whose trailing edge reaches the threshold exactly at the
        // last sample and stops there (a width-only capture clipped at
        // `stop` can legitimately end this way): the signal never gets
        // *strictly* past the threshold, so no trailing crossing exists
        // and the pulse is truncated — dropped, exactly like a trace that
        // ends beyond the threshold. Pinned so the batched width-only
        // solve can never silently report a phantom completed pulse.
        let t = vec![0.0, 1.0, 2.0, 3.0];
        let v = vec![0.0, 1.0, 1.0, 0.5];
        let tr = Trace::new(&t, &v);
        assert_eq!(tr.crossings(0.5, Edge::Rising), vec![0.5]);
        assert!(tr.crossings(0.5, Edge::Falling).is_empty());
        assert!(tr.pulses(0.5, Polarity::PositiveGoing).is_empty());
        assert_eq!(tr.widest_pulse_width(0.5, Polarity::PositiveGoing), 0.0);
    }

    #[test]
    fn final_flat_run_on_threshold_is_also_truncated() {
        // Same clipping, but the trace *rests* on the threshold for its
        // final samples instead of touching it once: still no strict side
        // change, still truncated, and crucially no zero-width phantom
        // pulse from the flat run.
        let t = vec![0.0, 1.0, 2.0, 3.0, 4.0];
        let v = vec![0.0, 1.0, 0.5, 0.5, 0.5];
        let tr = Trace::new(&t, &v);
        assert!(tr.crossings(0.5, Edge::Falling).is_empty());
        assert!(tr.pulses(0.5, Polarity::PositiveGoing).is_empty());
        assert_eq!(tr.widest_pulse_width(0.5, Polarity::PositiveGoing), 0.0);
    }

    #[test]
    fn threshold_touch_completing_later_ends_pulse_at_first_touch() {
        // Contrast case: the same at-threshold touch, but the trace then
        // continues strictly below. Now the crossing exists and lands at
        // the *first touch*, so the pulse completes there — the touch
        // itself decides nothing until the far side confirms it.
        let t = vec![0.0, 1.0, 2.0, 3.0];
        let v = vec![0.0, 1.0, 0.5, 0.2];
        let tr = Trace::new(&t, &v);
        assert_eq!(tr.crossings(0.5, Edge::Falling), vec![2.0]);
        let pulses = tr.pulses(0.5, Polarity::PositiveGoing);
        assert_eq!(pulses.len(), 1);
        assert!((pulses[0].t_start - 0.5).abs() < 1e-12);
        assert!((pulses[0].t_end - 2.0).abs() < 1e-12);
        assert!((tr.widest_pulse_width(0.5, Polarity::PositiveGoing) - 1.5).abs() < 1e-12);
    }
}
