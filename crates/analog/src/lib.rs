#![warn(missing_docs)]
// Library code must surface failures as typed errors or documented
// panics, never ad-hoc unwraps; #[cfg(test)] modules opt back in.
#![warn(clippy::unwrap_used)]

//! # pulsar-analog
//!
//! A small, self-contained electrical-level circuit simulator in the SPICE
//! tradition, built as the substrate for reproducing *Favalli & Metra,
//! "Pulse propagation for the detection of small delay defects"* (DATE 2007).
//!
//! The paper's entire evaluation is electrical-level Monte Carlo simulation
//! of CMOS paths affected by resistive opens and bridges. This crate provides
//! exactly the machinery that evaluation needs:
//!
//! * a [`Circuit`] description (nodes + elements),
//! * device models: resistors, capacitors, independent sources with
//!   time-varying waveforms, and Level-1 (Shichman–Hodges) MOSFETs,
//! * modified nodal analysis (MNA) with Newton–Raphson for nonlinear solves,
//! * DC operating-point analysis with gmin stepping,
//! * transient analysis (backward Euler or trapezoidal companion models),
//! * waveform measurement utilities (threshold crossings, propagation delay,
//!   pulse-width extraction) used by the fault-detection experiments.
//!
//! ## Units
//!
//! All quantities are plain `f64` in SI units: volts, amperes, seconds,
//! ohms, farads. The typical scales in this codebase are volts ~1, times
//! ~1e-9 (ns), capacitances ~1e-15 (fF); the solver tolerances are chosen
//! for that regime.
//!
//! ## Quick example
//!
//! An RC low-pass driven by a step:
//!
//! ```
//! use pulsar_analog::{Circuit, Waveform, TranConfig};
//!
//! # fn main() -> Result<(), pulsar_analog::Error> {
//! let mut ckt = Circuit::new();
//! let vin = ckt.node("in");
//! let vout = ckt.node("out");
//! ckt.vsource(vin, Circuit::GROUND, Waveform::dc(1.0));
//! ckt.resistor(vin, vout, 1e3);
//! ckt.capacitor(vout, Circuit::GROUND, 1e-12);
//!
//! let tran = ckt.transient(&TranConfig::new(10e-12, 10e-9))?;
//! let trace = tran.trace(vout);
//! // after 10 time constants the capacitor is fully charged
//! assert!((trace.last_value() - 1.0).abs() < 1e-3);
//! # Ok(())
//! # }
//! ```

mod analysis;
mod circuit;
pub mod deck;
mod elements;
mod error;
pub mod export;
pub mod inject;
mod solver;
pub mod waveform;

pub use analysis::dcop::DcSolution;
pub use analysis::transient::{Integrator, TraceCapture, TranConfig, TranResult, TranStats};
pub use circuit::{Circuit, NodeId};
pub use deck::{parse_deck, Deck};
pub use elements::{Element, MosType, Mosfet, MosfetParams, Waveform};
pub use error::Error;
pub use export::{to_csv, to_vcd};
pub use inject::{ArmedFault, FaultKind, FaultPlan};
pub use solver::batch::{BatchLane, BatchOutcome, BatchWorkspace};
pub use solver::pattern::{topology_key, PatternMode, StampPattern};
#[allow(deprecated)]
pub use solver::sparse::solver_counters;
pub use solver::sparse::SolverCounters;
pub use solver::workspace::{SolverMode, SolverWorkspace, SymbolicCache};
pub use waveform::{propagation_delay, Edge, Polarity, Pulse, Trace};

// Re-exported so downstream crates can speak the observability types this
// crate's instrumentation records into without naming `pulsar_obs`
// directly.
pub use pulsar_obs::{
    CancelReason, CancelToken, Counter as ObsCounter, Phase as ObsPhase, Recorder,
};
