//! Deterministic solver fault injection.
//!
//! Resilience machinery (per-sample isolation, retry ladders, failure
//! budgets) is only trustworthy if its recovery paths are *exercised*,
//! not merely reachable. This module lets a test plan exact solver
//! failures — "sample 7 hits [`Error::NoConvergence`] at transient time
//! point 3 on its first two attempts" — so every recovery path is driven
//! deterministically instead of waiting for numerics to misbehave.
//!
//! A [`FaultPlan`] is a pure description keyed by Monte Carlo sample
//! index. To make a plan bite, the code about to run a sample *arms* the
//! current thread with [`FaultPlan::arm`]; while the returned
//! [`ArmedFault`] guard lives, every [`Circuit::transient`] call on this
//! thread trips the planned error at the planned accepted-time-point
//! index. Dropping the guard disarms the thread, so production runs (no
//! guard anywhere) pay one thread-local read per accepted time point —
//! noise next to a Newton solve.
//!
//! This hook exists for tests. Production configurations never construct
//! a plan, and nothing in this module can trigger without an explicit
//! `arm` call on the same thread.
//!
//! [`Circuit::transient`]: crate::Circuit::transient

use crate::error::Error;
use std::cell::Cell;

/// Which solver failure to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Injects [`Error::SingularMatrix`] — modelling a structural defect
    /// of the deck; not worth retrying.
    SingularMatrix,
    /// Injects [`Error::NoConvergence`] — modelling a Newton failure that
    /// a tightened configuration may well fix; retryable.
    NonConvergence,
    /// Panics on the armed thread — modelling a worker crash (an index
    /// bug, an `assert!` in device code). Exercises panic containment:
    /// with containment off the panic unwinds the run; with it on, the
    /// sample fails with `error_kind = "panic"`.
    Panic,
    /// Sleeps `millis` at every due point instead of failing — modelling
    /// a stuck solve. Exercises per-sample timeouts and deadlines: the
    /// stalled sample outlives its budget and the watchdog cuts it loose.
    Stall {
        /// How long each due point stalls, milliseconds.
        millis: u64,
    },
}

impl FaultKind {
    /// The error this kind injects, pinned at simulation time zero — for
    /// callers that honor a plan without reaching the transient solver
    /// (e.g. logic-level campaign planning). Chaos kinds behave exactly
    /// as they would in the solver: [`FaultKind::Panic`] panics here,
    /// and [`FaultKind::Stall`] sleeps and returns `None` (the caller
    /// proceeds normally, just late).
    pub fn planned_outcome(self) -> Option<Error> {
        self.fire_now(0.0)
    }

    /// What firing this kind does right now: an error to return, a panic,
    /// or a stall followed by `None`.
    fn fire_now(self, time: f64) -> Option<Error> {
        match self {
            // `usize::MAX` marks the row as synthetic so an injected
            // failure is distinguishable from a real pivot loss in logs.
            FaultKind::SingularMatrix => Some(Error::SingularMatrix { row: usize::MAX }),
            FaultKind::NonConvergence => Some(Error::NoConvergence {
                context: "injected fault",
                iterations: 0,
                time,
            }),
            FaultKind::Panic => panic!("injected panic: chaos plan fired at t={time:e} s"),
            FaultKind::Stall { millis } => {
                std::thread::sleep(std::time::Duration::from_millis(millis));
                None
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Trigger {
    sample: usize,
    kind: FaultKind,
    at_point: usize,
    failing_attempts: u32,
}

/// A deterministic plan of solver faults, keyed by sample index.
///
/// Each planned fault fires at (or after) a chosen accepted-time-point
/// index, on every retry attempt up to `failing_attempts` — so a plan
/// with `failing_attempts = 1` produces a sample that *recovers* on its
/// second attempt, while [`FaultPlan::ALWAYS`] produces one that stays
/// failed however many retries it is granted.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    triggers: Vec<Trigger>,
}

impl FaultPlan {
    /// `failing_attempts` value for a fault that never recovers.
    pub const ALWAYS: u32 = u32::MAX;

    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Plans `kind` for `sample`, firing at the first post-DC time point
    /// on attempts `1..=failing_attempts`.
    pub fn fail_sample(self, sample: usize, kind: FaultKind, failing_attempts: u32) -> Self {
        self.fail_sample_at_point(sample, kind, 1, failing_attempts)
    }

    /// Plans `kind` for `sample`, firing once the transient has accepted
    /// `at_point` time points (the `t = 0` DC point counts as point 1),
    /// on attempts `1..=failing_attempts`.
    pub fn fail_sample_at_point(
        mut self,
        sample: usize,
        kind: FaultKind,
        at_point: usize,
        failing_attempts: u32,
    ) -> Self {
        self.triggers.push(Trigger {
            sample,
            kind,
            at_point,
            failing_attempts,
        });
        self
    }

    /// True when the plan contains no faults.
    pub fn is_empty(&self) -> bool {
        self.triggers.is_empty()
    }

    /// Sample indices with at least one planned fault.
    pub fn planned_samples(&self) -> impl Iterator<Item = usize> + '_ {
        self.triggers.iter().map(|t| t.sample)
    }

    /// Pure query: the fault due for `(sample, attempt)`, if any, with
    /// the accepted-point index at which it fires. Callers that never
    /// reach the analog solver (e.g. logic-level campaign planning) use
    /// this to honor a plan at their own level.
    pub fn due(&self, sample: usize, attempt: u32) -> Option<(FaultKind, usize)> {
        self.triggers
            .iter()
            .find(|t| t.sample == sample && attempt <= t.failing_attempts)
            .map(|t| (t.kind, t.at_point))
    }

    /// Arms the current thread with whatever this plan holds for
    /// `(sample, attempt)`. While the returned guard lives, transient
    /// runs on this thread trip the fault; if nothing is due, the guard
    /// is inert. The previous armed state is restored on drop, so guards
    /// nest correctly.
    #[must_use = "the fault is disarmed as soon as the guard drops"]
    pub fn arm(&self, sample: usize, attempt: u32) -> ArmedFault {
        let prev = ARMED.with(|a| a.replace(self.due(sample, attempt)));
        ArmedFault { prev }
    }
}

thread_local! {
    static ARMED: Cell<Option<(FaultKind, usize)>> = const { Cell::new(None) };
}

/// Guard keeping a planned fault armed on the current thread; see
/// [`FaultPlan::arm`].
#[derive(Debug)]
pub struct ArmedFault {
    prev: Option<(FaultKind, usize)>,
}

impl Drop for ArmedFault {
    fn drop(&mut self) {
        ARMED.with(|a| a.set(self.prev));
    }
}

/// Solver-side hook: the error to return instead of solving, given that
/// `accepted_points` time points are already recorded and simulation time
/// is `time`. `None` always, unless this thread is armed.
pub(crate) fn fire(accepted_points: usize, time: f64) -> Option<Error> {
    // Read the armed state *before* acting on it: a panic kind must not
    // unwind through the thread-local accessor.
    let armed = ARMED.with(Cell::get);
    match armed {
        Some((kind, at_point)) if accepted_points >= at_point => kind.fire_now(time),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn due_respects_attempt_bound() {
        let plan = FaultPlan::new()
            .fail_sample(3, FaultKind::NonConvergence, 2)
            .fail_sample(5, FaultKind::SingularMatrix, FaultPlan::ALWAYS);
        assert_eq!(plan.due(3, 1), Some((FaultKind::NonConvergence, 1)));
        assert_eq!(plan.due(3, 2), Some((FaultKind::NonConvergence, 1)));
        assert_eq!(plan.due(3, 3), None, "sample 3 recovers on attempt 3");
        assert_eq!(plan.due(5, 900), Some((FaultKind::SingularMatrix, 1)));
        assert_eq!(plan.due(4, 1), None);
    }

    #[test]
    fn guard_arms_and_disarms() {
        let plan = FaultPlan::new().fail_sample_at_point(0, FaultKind::NonConvergence, 4, 1);
        assert_eq!(fire(10, 0.0), None, "unarmed thread never fires");
        {
            let _g = plan.arm(0, 1);
            assert_eq!(fire(3, 0.0), None, "before the planned point");
            assert!(matches!(
                fire(4, 1e-9),
                Some(Error::NoConvergence {
                    context: "injected fault",
                    ..
                })
            ));
        }
        assert_eq!(fire(4, 0.0), None, "dropping the guard disarms");
    }

    #[test]
    fn guards_nest_and_restore() {
        let outer = FaultPlan::new().fail_sample(0, FaultKind::NonConvergence, 1);
        let inner = FaultPlan::new().fail_sample(0, FaultKind::SingularMatrix, 1);
        let _a = outer.arm(0, 1);
        {
            let _b = inner.arm(0, 1);
            assert!(matches!(fire(1, 0.0), Some(Error::SingularMatrix { .. })));
        }
        assert!(matches!(fire(1, 0.0), Some(Error::NoConvergence { .. })));
    }

    #[test]
    fn arm_for_undue_attempt_is_inert() {
        let plan = FaultPlan::new().fail_sample(2, FaultKind::NonConvergence, 1);
        let _g = plan.arm(2, 2); // attempt 2 is past the failing window
        assert_eq!(fire(100, 0.0), None);
    }
}
