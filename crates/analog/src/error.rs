use std::fmt;

/// Errors produced by circuit construction and analysis.
///
/// The library never panics on malformed circuits or non-convergent
/// numerics; every public analysis entry point returns `Result<_, Error>`.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The MNA matrix is singular (typically a floating node or a loop of
    /// ideal voltage sources). Carries the pivot row that vanished.
    SingularMatrix {
        /// MNA row whose pivot vanished.
        row: usize,
    },
    /// Newton–Raphson failed to converge within the iteration budget.
    NoConvergence {
        /// Analysis context, e.g. `"dc operating point"` or `"transient"`.
        context: &'static str,
        /// Iterations attempted before giving up.
        iterations: usize,
        /// Simulation time at the failure (0 for DC).
        time: f64,
    },
    /// An element parameter is out of its physical domain
    /// (e.g. a negative capacitance or a zero-width MOSFET).
    InvalidParameter {
        /// The element kind, e.g. `"resistor"`.
        element: &'static str,
        /// The offending parameter name.
        parameter: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A node id does not belong to the circuit it was used with.
    UnknownNode {
        /// The foreign node index.
        index: usize,
    },
    /// The transient configuration is unusable (non-positive step or stop
    /// time, step larger than the window, ...).
    InvalidTranConfig {
        /// What was wrong.
        reason: &'static str,
    },
    /// The transient run hit its accepted-time-point budget
    /// ([`TranConfig::max_points`](crate::TranConfig)) before reaching the
    /// stop time — a pathological deck degrades into this reported failure
    /// instead of an unbounded stepping loop.
    StepBudgetExhausted {
        /// Accepted time points when the budget ran out.
        points: usize,
        /// Simulation time reached, seconds.
        time: f64,
    },
    /// The run's [`CancelToken`](pulsar_obs::CancelToken) was tripped and
    /// the transient step loop bailed out cooperatively — an operator
    /// interrupt, a run deadline, or a per-sample timeout, never a
    /// numerical failure.
    Cancelled {
        /// Simulation time reached when the token was observed, seconds.
        time: f64,
        /// Why the token was tripped.
        reason: pulsar_obs::CancelReason,
    },
    /// A solver bookkeeping invariant was violated (e.g. a voltage source
    /// with no branch-current unknown during assembly) — a malformed
    /// element list or corrupted scratch state, never ordinary numerics.
    /// Reported as a typed error so one bad sample journals as a failure
    /// instead of panicking past an entire Monte Carlo campaign.
    Internal {
        /// The violated invariant.
        context: &'static str,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::SingularMatrix { row } => {
                write!(f, "singular MNA matrix at pivot row {row} (floating node or source loop)")
            }
            Error::NoConvergence { context, iterations, time } => write!(
                f,
                "newton-raphson did not converge in {iterations} iterations ({context}, t = {time:.3e} s)"
            ),
            Error::InvalidParameter { element, parameter, value } => {
                write!(f, "invalid {element} parameter {parameter} = {value:e}")
            }
            Error::UnknownNode { index } => write!(f, "node index {index} is not in this circuit"),
            Error::InvalidTranConfig { reason } => write!(f, "invalid transient config: {reason}"),
            Error::StepBudgetExhausted { points, time } => write!(
                f,
                "transient step budget exhausted after {points} accepted points (t = {time:.3e} s)"
            ),
            Error::Cancelled { time, reason } => write!(
                f,
                "transient cancelled ({}) at t = {time:.3e} s",
                reason.label()
            ),
            Error::Internal { context } => {
                write!(f, "internal solver invariant violated: {context}")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = Error::SingularMatrix { row: 3 };
        let msg = e.to_string();
        assert!(msg.contains("row 3"));
        assert!(msg.starts_with(char::is_lowercase));

        let e = Error::NoConvergence {
            context: "transient",
            iterations: 50,
            time: 1e-9,
        };
        assert!(e.to_string().contains("transient"));

        let e = Error::InvalidParameter {
            element: "capacitor",
            parameter: "farads",
            value: -1.0,
        };
        assert!(e.to_string().contains("capacitor"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
