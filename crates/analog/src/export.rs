//! Waveform export: VCD (for wave viewers like GTKWave) and CSV.
//!
//! A simulator nobody can look inside is hard to trust; these exporters
//! make every transient inspectable with standard tooling.

use crate::analysis::transient::TranResult;
use crate::circuit::{Circuit, NodeId};
use std::fmt::Write as _;

/// Serializes selected node waveforms as a Value Change Dump (VCD) with
/// `real`-typed variables, one per node, timestamps in femtoseconds.
///
/// # Panics
///
/// Panics if `nodes` is empty or contains a node outside the circuit.
pub fn to_vcd(circuit: &Circuit, result: &TranResult, nodes: &[NodeId]) -> String {
    assert!(!nodes.is_empty(), "select at least one node to dump");
    let mut out = String::new();
    out.push_str("$date pulsar-analog export $end\n");
    out.push_str("$version pulsar-analog $end\n");
    out.push_str("$timescale 1fs $end\n");
    out.push_str("$scope module circuit $end\n");
    for (k, &n) in nodes.iter().enumerate() {
        let id = vcd_id(k);
        let name = sanitize(circuit.node_name(n));
        let _ = writeln!(out, "$var real 64 {id} {name} $end");
    }
    out.push_str("$upscope $end\n$enddefinitions $end\n");

    let times = result.times();
    let traces: Vec<_> = nodes.iter().map(|&n| result.trace(n)).collect();
    let mut last: Vec<Option<f64>> = vec![None; nodes.len()];
    for (i, &t) in times.iter().enumerate() {
        let fs = (t * 1e15).round() as u64;
        let mut stamped = false;
        for (k, tr) in traces.iter().enumerate() {
            let v = tr.values()[i];
            // Only dump changes beyond double-precision noise.
            if last[k].map(|p| (p - v).abs() > 1e-9).unwrap_or(true) {
                if !stamped {
                    let _ = writeln!(out, "#{fs}");
                    stamped = true;
                }
                let _ = writeln!(out, "r{v:.6} {}", vcd_id(k));
                last[k] = Some(v);
            }
        }
    }
    out
}

/// Serializes selected node waveforms as CSV with a `t` column followed
/// by one column per node (named after the node).
///
/// # Panics
///
/// Panics if `nodes` is empty or contains a node outside the circuit.
pub fn to_csv(circuit: &Circuit, result: &TranResult, nodes: &[NodeId]) -> String {
    assert!(!nodes.is_empty(), "select at least one node to dump");
    let mut out = String::from("t");
    for &n in nodes {
        let _ = write!(out, ",{}", sanitize(circuit.node_name(n)));
    }
    out.push('\n');
    let traces: Vec<_> = nodes.iter().map(|&n| result.trace(n)).collect();
    for (i, &t) in result.times().iter().enumerate() {
        let _ = write!(out, "{t:.6e}");
        for tr in &traces {
            let _ = write!(out, ",{:.6}", tr.values()[i]);
        }
        out.push('\n');
    }
    out
}

/// Short printable VCD identifier for variable `k`.
fn vcd_id(k: usize) -> String {
    // Printable ASCII identifiers: ! through ~, base-94.
    let mut k = k;
    let mut id = String::new();
    loop {
        id.push((b'!' + (k % 94) as u8) as char);
        k /= 94;
        if k == 0 {
            break;
        }
    }
    id
}

/// VCD identifiers must not contain whitespace; CSV headers must not
/// contain commas.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_whitespace() || c == ',' {
                '_'
            } else {
                c
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::analysis::transient::TranConfig;
    use crate::elements::Waveform;

    fn rc_run() -> (Circuit, TranResult, NodeId, NodeId) {
        let mut ckt = Circuit::new();
        let a = ckt.node("in");
        let b = ckt.node("out node"); // whitespace exercises sanitization
        ckt.vsource(a, Circuit::GROUND, Waveform::step(0.0, 1.0, 1e-10, 1e-12));
        ckt.resistor(a, b, 1e3);
        ckt.capacitor(b, Circuit::GROUND, 1e-13);
        let res = ckt.transient(&TranConfig::new(1e-11, 1e-9)).unwrap();
        (ckt, res, a, b)
    }

    #[test]
    fn vcd_has_headers_vars_and_timestamps() {
        let (ckt, res, a, b) = rc_run();
        let vcd = to_vcd(&ckt, &res, &[a, b]);
        assert!(vcd.contains("$timescale 1fs $end"));
        assert!(vcd.contains("$var real 64 ! in $end"));
        assert!(vcd.contains("$var real 64 \" out_node $end"));
        assert!(vcd.contains("$enddefinitions $end"));
        assert!(vcd.contains("#0"), "initial timestamp missing");
        // Final value of the step input appears somewhere.
        assert!(
            vcd.contains("r1.000000 !"),
            "vcd:\n{}",
            &vcd[..400.min(vcd.len())]
        );
    }

    #[test]
    fn vcd_only_dumps_changes() {
        let (ckt, res, a, _) = rc_run();
        let vcd = to_vcd(&ckt, &res, &[a]);
        // The flat pre-step interval must not repeat the same value.
        let zero_dumps = vcd.matches("r0.000000 !").count();
        assert_eq!(zero_dumps, 1, "flat signal dumped repeatedly");
    }

    #[test]
    fn csv_round_trips_values() {
        let (ckt, res, a, b) = rc_run();
        let csv = to_csv(&ckt, &res, &[a, b]);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("t,in,out_node"));
        let first = lines.next().expect("data rows");
        let cols: Vec<&str> = first.split(',').collect();
        assert_eq!(cols.len(), 3);
        let t0: f64 = cols[0].parse().expect("numeric time");
        assert_eq!(t0, 0.0);
        // Row count matches the sample count.
        assert_eq!(csv.lines().count(), res.len() + 1);
    }

    #[test]
    fn vcd_ids_are_printable_and_unique() {
        let ids: Vec<String> = (0..200).map(vcd_id).collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
        for id in &ids {
            assert!(id.chars().all(|c| ('!'..='~').contains(&c)));
        }
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_node_list_panics() {
        let (ckt, res, _, _) = rc_run();
        let _ = to_vcd(&ckt, &res, &[]);
    }
}
