//! Property test: the MNA solver against analytically reducible
//! series-parallel resistor networks.
//!
//! A random series/parallel tree has a closed-form equivalent resistance;
//! driving it through a known series resistor turns that into an exact
//! voltage-divider prediction the DC solution must match.

use proptest::prelude::*;
use pulsar_analog::{Circuit, NodeId, Waveform};

/// A series-parallel resistor network between two terminals.
#[derive(Debug, Clone)]
enum Net {
    R(f64),
    Series(Box<Net>, Box<Net>),
    Parallel(Box<Net>, Box<Net>),
}

impl Net {
    /// Analytic equivalent resistance.
    fn req(&self) -> f64 {
        match self {
            Net::R(r) => *r,
            Net::Series(a, b) => a.req() + b.req(),
            Net::Parallel(a, b) => {
                let (ra, rb) = (a.req(), b.req());
                ra * rb / (ra + rb)
            }
        }
    }

    /// Number of resistors (to keep generated circuits bounded).
    fn size(&self) -> usize {
        match self {
            Net::R(_) => 1,
            Net::Series(a, b) | Net::Parallel(a, b) => a.size() + b.size(),
        }
    }

    /// Stamps the network between nodes `a` and `b`.
    fn build(&self, ckt: &mut Circuit, a: NodeId, b: NodeId) {
        match self {
            Net::R(r) => {
                ckt.resistor(a, b, *r);
            }
            Net::Series(x, y) => {
                let mid = ckt.node("mid");
                x.build(ckt, a, mid);
                y.build(ckt, mid, b);
            }
            Net::Parallel(x, y) => {
                x.build(ckt, a, b);
                y.build(ckt, a, b);
            }
        }
    }
}

fn net_strategy() -> impl Strategy<Value = Net> {
    let leaf = (10.0f64..100e3).prop_map(Net::R);
    leaf.prop_recursive(5, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Net::Series(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Net::Parallel(Box::new(a), Box::new(b))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dc_solution_matches_the_analytic_divider(net in net_strategy()) {
        prop_assume!(net.size() <= 24);
        let req = net.req();
        let rs = 1e3;

        let mut ckt = Circuit::new();
        let src = ckt.node("src");
        let mid = ckt.node("tap");
        ckt.vsource(src, Circuit::GROUND, Waveform::dc(1.0));
        ckt.resistor(src, mid, rs);
        net.build(&mut ckt, mid, Circuit::GROUND);

        let dc = ckt.dc_op().expect("series-parallel networks always solve");
        let expect = req / (rs + req);
        let got = dc.voltage(mid);
        prop_assert!(
            (got - expect).abs() < 1e-6 + 1e-6 * expect.abs(),
            "req = {req:.3}, expected {expect:.9}, solver said {got:.9}"
        );
    }

    /// Superposition: with two sources, the solution is the sum of the
    /// single-source solutions.
    #[test]
    fn superposition_holds(r1 in 10.0f64..10e3, r2 in 10.0f64..10e3, r3 in 10.0f64..10e3,
                           v1 in -5.0f64..5.0, v2 in -5.0f64..5.0) {
        let build = |va: f64, vb: f64| {
            let mut ckt = Circuit::new();
            let a = ckt.node("a");
            let b = ckt.node("b");
            let m = ckt.node("m");
            ckt.vsource(a, Circuit::GROUND, Waveform::dc(va));
            ckt.vsource(b, Circuit::GROUND, Waveform::dc(vb));
            ckt.resistor(a, m, r1);
            ckt.resistor(b, m, r2);
            ckt.resistor(m, Circuit::GROUND, r3);
            let dc = ckt.dc_op().expect("linear network");
            dc.voltage(m)
        };
        let both = build(v1, v2);
        let only1 = build(v1, 0.0);
        let only2 = build(0.0, v2);
        prop_assert!((both - (only1 + only2)).abs() < 1e-6,
            "superposition violated: {both} vs {} + {}", only1, only2);
    }
}
