//! Sparse-vs-dense engine agreement on transistor circuits.
//!
//! The sparse engine is an *optimization*: on every circuit it handles it
//! must agree with the dense partial-pivot engine to solver tolerance
//! (both iterate Newton to the same `VNTOL`-scale convergence test), and
//! on circuits it cannot handle it must produce the *identical* error.
//! These tests force each engine explicitly, so they exercise the sparse
//! path even below the `Auto` crossover dimension.

use pulsar_analog::{
    Circuit, MosType, Mosfet, MosfetParams, NodeId, SolverMode, SolverWorkspace, TraceCapture,
    TranConfig, Waveform,
};

const VDD: f64 = 1.8;

fn nmos_params() -> MosfetParams {
    MosfetParams {
        vt0: 0.45,
        kp: 120e-6,
        lambda: 0.04,
        w: 2e-6,
        l: 0.18e-6,
        cgs: 2e-15,
        cgd: 1e-15,
        cdb: 2e-15,
    }
}

fn pmos_params() -> MosfetParams {
    MosfetParams {
        vt0: -0.45,
        kp: 60e-6,
        lambda: 0.04,
        w: 4e-6,
        l: 0.18e-6,
        cgs: 2e-15,
        cgd: 1e-15,
        cdb: 2e-15,
    }
}

/// An `n`-stage CMOS inverter chain with output shunt capacitors, driven
/// by `input_wave`. Returns the circuit and the stage-output nodes.
fn inverter_chain(n: usize, input_wave: Waveform) -> (Circuit, Vec<NodeId>) {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    ckt.vsource(vdd, Circuit::GROUND, Waveform::dc(VDD));
    let input = ckt.node("in");
    ckt.vsource(input, Circuit::GROUND, input_wave);
    let mut prev = input;
    let mut outs = Vec::with_capacity(n);
    for i in 0..n {
        let out = ckt.node(format!("s{i}"));
        ckt.add_mosfet(Mosfet {
            kind: MosType::Pmos,
            d: out,
            g: prev,
            s: vdd,
            params: pmos_params(),
        });
        ckt.add_mosfet(Mosfet {
            kind: MosType::Nmos,
            d: out,
            g: prev,
            s: Circuit::GROUND,
            params: nmos_params(),
        });
        ckt.capacitor(out, Circuit::GROUND, 6e-15);
        outs.push(out);
        prev = out;
    }
    (ckt, outs)
}

fn workspace(mode: SolverMode) -> SolverWorkspace {
    let mut ws = SolverWorkspace::new();
    ws.set_solver_mode(mode);
    ws
}

#[test]
fn dc_operating_points_agree_to_solver_tolerance() {
    for bias in [0.0, 0.9, VDD] {
        let (ckt, outs) = inverter_chain(11, Waveform::dc(bias));
        let dense = ckt
            .dc_op_with(0.0, &mut workspace(SolverMode::ForceDense))
            .expect("dense DC");
        let sparse = ckt
            .dc_op_with(0.0, &mut workspace(SolverMode::ForceSparse))
            .expect("sparse DC");
        for &n in &outs {
            let (vd, vs) = (dense.voltage(n), sparse.voltage(n));
            assert!(
                (vd - vs).abs() < 5e-6,
                "bias {bias}: node {n:?} dense {vd:e} vs sparse {vs:e}"
            );
        }
    }
}

#[test]
fn transient_traces_agree_to_solver_tolerance() {
    let wave = Waveform::single_pulse(0.0, VDD, 0.3e-9, 60e-12, 60e-12, 500e-12);
    let (ckt, outs) = inverter_chain(9, wave);
    let cfg = TranConfig::new(5e-12, 4e-9);
    let run = |mode| {
        ckt.transient_with(&cfg, &mut workspace(mode), &TraceCapture::All)
            .expect("transient")
    };
    let dense = run(SolverMode::ForceDense);
    let sparse = run(SolverMode::ForceSparse);
    assert_eq!(dense.times(), sparse.times(), "identical fixed time grid");
    for &n in &outs {
        for (td, ts) in dense.trace(n).values().iter().zip(sparse.trace(n).values()) {
            assert!(
                (td - ts).abs() < 2e-4,
                "node {n:?}: dense {td:e} vs sparse {ts:e}"
            );
        }
    }
}

#[test]
fn jacobian_reuse_agrees_with_exact_newton_to_solver_tolerance() {
    let wave = Waveform::single_pulse(0.0, VDD, 0.3e-9, 60e-12, 60e-12, 500e-12);
    let (ckt, outs) = inverter_chain(9, wave);
    let cfg = TranConfig::new(5e-12, 4e-9);
    let exact = ckt
        .transient_with(
            &cfg,
            &mut workspace(SolverMode::ForceSparse),
            &TraceCapture::All,
        )
        .expect("exact-Newton run");
    let mut ws = workspace(SolverMode::ForceSparse);
    ws.set_jacobian_reuse(true);
    let reused = ckt
        .transient_with(&cfg, &mut ws, &TraceCapture::All)
        .expect("Jacobian-reuse run");
    assert_eq!(exact.times(), reused.times());
    // Modified Newton converges each solve to the same VNTOL test, but a
    // chord step may stop at a slightly different point inside the
    // tolerance ball, and the stage gain amplifies that difference along
    // the trajectory at switching edges. A few mV of trajectory skew on a
    // 1.8 V swing is the expected ceiling; width/delay measurements taken
    // at vdd/2 crossings shift by well under a picosecond.
    for &n in &outs {
        for (te, tr) in exact.trace(n).values().iter().zip(reused.trace(n).values()) {
            assert!(
                (te - tr).abs() < 5e-3,
                "node {n:?}: exact {te:e} vs reused {tr:e}"
            );
        }
    }
}

#[test]
fn singular_circuit_reports_the_identical_error_under_both_engines() {
    // A voltage source shorted to its own positive terminal: structural
    // rank deficit, certified by lint (PL0101) and reported by the dense
    // engine as SingularMatrix. The sparse engine detects the deficit in
    // the symbolic analysis and must hand the solve to the dense engine
    // so the reported error (and its row) never depends on the mode.
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    ckt.vsource(a, a, Waveform::dc(1.0));
    ckt.resistor(a, Circuit::GROUND, 1e3);
    let dense_err = ckt
        .dc_op_with(0.0, &mut workspace(SolverMode::ForceDense))
        .expect_err("shorted source must be singular");
    let sparse_err = ckt
        .dc_op_with(0.0, &mut workspace(SolverMode::ForceSparse))
        .expect_err("shorted source must be singular");
    assert_eq!(dense_err, sparse_err);
}

#[test]
fn workspace_survives_switching_between_circuits_and_modes() {
    // One workspace, alternating topologies and modes: the cached
    // symbolic object must be validated against the topology key, never
    // blindly reused.
    let mut ws = SolverWorkspace::new();
    ws.set_solver_mode(SolverMode::ForceSparse);
    let (big, big_outs) = inverter_chain(11, Waveform::dc(0.0));
    let (small, small_outs) = inverter_chain(3, Waveform::dc(0.0));
    let b1 = big.dc_op_with(0.0, &mut ws).expect("big #1");
    let s1 = small.dc_op_with(0.0, &mut ws).expect("small #1");
    ws.set_solver_mode(SolverMode::ForceDense);
    let s2 = small.dc_op_with(0.0, &mut ws).expect("small dense");
    ws.set_solver_mode(SolverMode::ForceSparse);
    let b2 = big.dc_op_with(0.0, &mut ws).expect("big #2");
    let last_big = *big_outs.last().expect("non-empty");
    let last_small = *small_outs.last().expect("non-empty");
    assert!((b1.voltage(last_big) - b2.voltage(last_big)).abs() < 5e-6);
    assert!((s1.voltage(last_small) - s2.voltage(last_small)).abs() < 5e-6);
}
