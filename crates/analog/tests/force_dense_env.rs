//! `PULSAR_FORCE_DENSE=1` — the field escape hatch.
//!
//! The environment flag must beat *every* other engine selection,
//! including an explicit `ForceSparse`, so a deployment can neutralize
//! the sparse path without touching code. The flag is read once per
//! process, and the global solver counters are process-wide state, so
//! this file holds exactly one test and runs as its own binary.

// The whole point of this test is the legacy process-wide counter view,
// so the deprecated shim is exercised on purpose.
#![allow(deprecated)]

use pulsar_analog::{
    solver_counters, Circuit, SolverMode, SolverWorkspace, TraceCapture, TranConfig, Waveform,
};

#[test]
fn env_flag_overrides_even_force_sparse() {
    // Set before the first solve: the flag is latched on first read.
    std::env::set_var("PULSAR_FORCE_DENSE", "1");

    // An RC ladder big enough that Auto (and certainly ForceSparse)
    // would otherwise route it through the sparse engine.
    let mut ckt = Circuit::new();
    let vin = ckt.node("in");
    ckt.vsource(
        vin,
        Circuit::GROUND,
        Waveform::single_pulse(0.0, 1.8, 0.2e-9, 60e-12, 60e-12, 400e-12),
    );
    let mut prev = vin;
    for i in 0..30 {
        let n = ckt.node(format!("t{i}"));
        ckt.resistor(prev, n, 1e3);
        ckt.capacitor(n, Circuit::GROUND, 20e-15);
        prev = n;
    }

    let mut ws = SolverWorkspace::new();
    ws.set_solver_mode(SolverMode::ForceSparse);
    let before = solver_counters();
    ckt.transient_with(&TranConfig::new(10e-12, 2e-9), &mut ws, &TraceCapture::All)
        .expect("transient");
    ckt.dc_op_with(0.0, &mut ws).expect("dc");
    let delta = solver_counters().since(&before);

    assert_eq!(
        delta.sparse_solves, 0,
        "PULSAR_FORCE_DENSE=1 must keep the sparse engine cold: {delta:?}"
    );
    assert_eq!(delta.symbolic_analyses, 0, "no analysis either: {delta:?}");
    assert!(delta.dense_solves > 0, "solves must still run: {delta:?}");
    assert_eq!(delta.dense_fallbacks, 0, "dense-by-choice, not fallback");
}
