//! Property tests: solver-workspace reuse and slim trace capture are
//! allocation-level optimizations only — on random decks, every observable
//! (time grid, node traces, threshold crossings, DC operating points) is
//! bit-for-bit identical across
//!
//! * a fresh internal workspace ([`Circuit::transient`]),
//! * a caller-owned workspace reused across runs and across *different*
//!   circuits ([`Circuit::transient_with`]),
//! * the preserved allocation-per-step baseline engine
//!   ([`Circuit::transient_baseline`]), and
//! * [`TraceCapture::Nodes`] vs [`TraceCapture::All`] for the captured
//!   columns.

use proptest::prelude::*;
use proptest::strategy::Just;
use pulsar_analog::{
    Circuit, Edge, NodeId, SolverMode, SolverWorkspace, TraceCapture, TranConfig, Waveform,
};

/// A randomized RC-ladder deck: series resistors with shunt capacitors,
/// driven by a pulse. Linear, so every configuration converges.
#[derive(Debug, Clone)]
struct DeckSpec {
    /// Per-stage (series ohms, shunt farads).
    stages: Vec<(f64, f64)>,
    /// Input pulse width, seconds.
    width: f64,
    /// Extra coupling capacitor between first and last tap, farads
    /// (`0.0` = none), to break the pure-ladder structure.
    c_couple: f64,
    /// Adaptive (LTE-controlled) vs fixed stepping.
    adaptive: bool,
}

fn build(spec: &DeckSpec) -> (Circuit, Vec<NodeId>) {
    let mut ckt = Circuit::new();
    let vin = ckt.node("in");
    ckt.vsource(
        vin,
        Circuit::GROUND,
        Waveform::single_pulse(0.0, 1.8, 0.2e-9, 60e-12, 60e-12, spec.width),
    );
    let mut taps = vec![vin];
    let mut prev = vin;
    for (i, &(r, c)) in spec.stages.iter().enumerate() {
        let n = ckt.node(format!("t{i}"));
        ckt.resistor(prev, n, r);
        ckt.capacitor(n, Circuit::GROUND, c);
        taps.push(n);
        prev = n;
    }
    if spec.c_couple > 0.0 && taps.len() > 2 {
        ckt.capacitor(taps[1], *taps.last().expect("non-empty"), spec.c_couple);
    }
    (ckt, taps)
}

fn deck_strategy() -> impl Strategy<Value = DeckSpec> {
    let stage = (100.0f64..20e3, 10e-15f64..400e-15);
    (
        proptest::collection::vec(stage, 2..6),
        (150e-12f64..900e-12),
        prop_oneof![Just(0.0f64), (5e-15f64..50e-15)],
        any::<bool>(),
    )
        .prop_map(|(stages, width, c_couple, adaptive)| DeckSpec {
            stages,
            width,
            c_couple,
            adaptive,
        })
}

fn config(spec: &DeckSpec) -> TranConfig {
    if spec.adaptive {
        TranConfig::adaptive(40e-12, 3e-9)
    } else {
        TranConfig::new(10e-12, 3e-9)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fresh workspace ≡ reused workspace (twice, to prove no state leaks
    /// between runs) ≡ the allocation-per-step baseline engine.
    #[test]
    fn workspace_reuse_is_bit_identical(spec in deck_strategy()) {
        let (ckt, taps) = build(&spec);
        let cfg = config(&spec);
        let fresh = ckt.transient(&cfg).expect("linear deck converges");

        let mut ws = SolverWorkspace::new();
        let first = ckt
            .transient_with(&cfg, &mut ws, &TraceCapture::All)
            .expect("reused workspace");
        // Dirty the workspace with a different circuit before re-running.
        let mut other = Circuit::new();
        let a = other.node("a");
        other.vsource(a, Circuit::GROUND, Waveform::dc(1.0));
        other.resistor(a, Circuit::GROUND, 50.0);
        other
            .transient_with(&TranConfig::new(2e-12, 0.05e-9), &mut ws, &TraceCapture::All)
            .expect("interleaved deck");
        let again = ckt
            .transient_with(&cfg, &mut ws, &TraceCapture::All)
            .expect("workspace survives topology changes");
        let baseline = ckt.transient_baseline(&cfg).expect("baseline engine");

        for res in [&first, &again, &baseline] {
            prop_assert_eq!(fresh.times(), res.times());
            for &n in &taps {
                prop_assert_eq!(fresh.trace(n).values(), res.trace(n).values());
            }
        }
    }

    /// `TraceCapture::Nodes` returns the same time grid and, for every
    /// captured column, bit-identical samples and therefore identical
    /// derived measurements (threshold crossings).
    #[test]
    fn slim_capture_matches_full_capture(spec in deck_strategy()) {
        let (ckt, taps) = build(&spec);
        let cfg = config(&spec);
        let all = ckt.transient(&cfg).expect("linear deck converges");

        let last = *taps.last().expect("non-empty");
        let subset = vec![last, taps[0]];
        let mut ws = SolverWorkspace::new();
        let slim = ckt
            .transient_with(&cfg, &mut ws, &TraceCapture::Nodes(subset.clone()))
            .expect("slim capture");

        prop_assert_eq!(all.times(), slim.times());
        for &n in &subset {
            prop_assert_eq!(all.trace(n).values(), slim.trace(n).values());
            let th = 0.9;
            prop_assert_eq!(
                all.trace(n).crossings(th, Edge::Rising),
                slim.trace(n).crossings(th, Edge::Rising)
            );
            prop_assert_eq!(
                all.trace(n).crossings(th, Edge::Falling),
                slim.trace(n).crossings(th, Edge::Falling)
            );
        }
    }

    /// DC solves through a reused workspace (warm start off) match the
    /// per-call-workspace path exactly, across a ladder of decks.
    #[test]
    fn dc_reuse_is_bit_identical(spec in deck_strategy()) {
        let (ckt, taps) = build(&spec);
        let mut ws = SolverWorkspace::new();
        let cold = ckt.dc_op().expect("linear dc");
        let reused = ckt.dc_op_with(0.0, &mut ws).expect("reused dc");
        let reused2 = ckt.dc_op_with(0.0, &mut ws).expect("reused dc again");
        for &n in &taps {
            prop_assert_eq!(cold.voltage(n), reused.voltage(n));
            prop_assert_eq!(cold.voltage(n), reused2.voltage(n));
        }
    }

    /// The sparse engine, forced on, reproduces the dense engine within
    /// solver tolerance on the same random decks — same time grid, every
    /// trace pointwise close. (These decks sit below the `Auto` crossover
    /// dimension, which is exactly why the bitwise tests above stay
    /// bitwise: `Auto` routes them dense. Forcing sparse here proves the
    /// other engine solves them too.)
    #[test]
    fn forced_sparse_matches_dense_within_tolerance(spec in deck_strategy()) {
        let (ckt, taps) = build(&spec);
        let cfg = config(&spec);
        let dense = ckt.transient(&cfg).expect("linear deck converges");
        let mut ws = SolverWorkspace::new();
        ws.set_solver_mode(SolverMode::ForceSparse);
        let sparse = ckt
            .transient_with(&cfg, &mut ws, &TraceCapture::All)
            .expect("sparse engine");
        prop_assert_eq!(dense.times(), sparse.times());
        for &n in &taps {
            for (d, s) in dense.trace(n).values().iter().zip(sparse.trace(n).values()) {
                prop_assert!((d - s).abs() < 1e-6, "node {:?}: {:e} vs {:e}", n, d, s);
            }
        }
    }
}
