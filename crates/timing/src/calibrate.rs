//! Fitting gate timing models against the electrical simulator.
//!
//! The paper's §5 argues the method needs "timing accurate models such as
//! that in [10] to study the propagation of pulses in a digital circuit"
//! once circuits get too large for electrical simulation. The fit below
//! closes the loop: measure one loaded inverter stage electrically, derive
//! its [`GateTimingModel`], and let [`TimingLibrary::calibrated`]
//! extrapolate the rest of the library.

use crate::model::GateTimingModel;
use pulsar_analog::{Edge, Error, Polarity};
use pulsar_cells::{BuiltPath, PathFault, PathSpec, Tech};

/// Electrically characterizes one inverter stage of technology `tech`
/// (embedded mid-chain so input slopes are realistic) and fits a
/// [`GateTimingModel`].
///
/// * `tp_lh` / `tp_hl` — per-stage propagation delays from a 5-stage
///   chain delay split by edge parity,
/// * `w_min` — bisected minimum passing width of one stage,
/// * `w_pass` — smallest width whose transfer is within 5 % of the
///   asymptote.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn calibrate_inverter(tech: &Tech) -> Result<GateTimingModel, Error> {
    let n = 5;
    let spec = PathSpec::inverter_chain(n);
    let mut chain = BuiltPath::new(&spec, &PathFault::None, &vec![*tech; n]);

    // Per-stage delays. Over an odd chain, a rising PI edge produces
    // ceil(n/2) falling and floor(n/2) rising output edges.
    let d_rise_pi = chain
        .propagate_transition(Edge::Rising, None)?
        .delay
        .ok_or(Error::NoConvergence {
            context: "calibration delay",
            iterations: 0,
            time: 0.0,
        })?;
    let d_fall_pi = chain
        .propagate_transition(Edge::Falling, None)?
        .delay
        .ok_or(Error::NoConvergence {
            context: "calibration delay",
            iterations: 0,
            time: 0.0,
        })?;
    // Rising PI: 3×tp_hl + 2×tp_lh; falling PI: 3×tp_lh + 2×tp_hl.
    let k_hi = n.div_ceil(2);
    let k_lo = n / 2;
    // Solve the 2x2 system.
    let det = (k_hi * k_hi - k_lo * k_lo) as f64;
    let tp_hl = (k_hi as f64 * d_rise_pi - k_lo as f64 * d_fall_pi) / det;
    let tp_lh = (k_hi as f64 * d_fall_pi - k_lo as f64 * d_rise_pi) / det;

    // Width transfer of ONE stage: compare the widths measured at the
    // outputs of stage 2 and stage 3 of the chain (mid-chain, realistic
    // slopes). w_min: bisect the chain's full passing threshold and
    // divide the per-stage shrink evenly.
    let mut lo = 10e-12;
    let mut hi = 2e-9;
    // The full chain's minimum passing width.
    while chain
        .propagate_pulse(hi, Polarity::PositiveGoing, None)?
        .dampened()
    {
        hi *= 2.0;
        if hi > 20e-9 {
            break;
        }
    }
    while hi - lo > 5e-12 {
        let mid = 0.5 * (lo + hi);
        if chain
            .propagate_pulse(mid, Polarity::PositiveGoing, None)?
            .dampened()
        {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let chain_w_min = 0.5 * (lo + hi);

    // Per-stage shrink at a mid-scale width, from consecutive stages.
    let probe = (chain_w_min * 1.3).max(120e-12);
    let out = chain.propagate_pulse(probe, Polarity::PositiveGoing, None)?;
    // Stage-over-stage shrink in the attenuation regime.
    let mut shrink = 0.0;
    let mut count = 0;
    for w in out.stage_widths.windows(2) {
        if w[0] > 0.0 && w[1] > 0.0 {
            shrink += (w[0] - w[1]).max(0.0);
            count += 1;
        }
    }
    let per_stage_shrink = if count > 0 {
        shrink / count as f64
    } else {
        0.0
    };

    // Heuristic split: a pulse dies when each stage eats ~its share. One
    // stage's w_min ≈ chain w_min − (n−1) × per-stage shrink, floored.
    let w_min = (chain_w_min - (n - 1) as f64 * per_stage_shrink).max(0.3 * chain_w_min);

    // w_pass: find where the chain transfer becomes affine (output width
    // within 5% of input + chain skew), then attribute to one stage.
    let skew = {
        let wide = 1.5e-9;
        let o = chain.propagate_pulse(wide, Polarity::PositiveGoing, None)?;
        o.output_width - wide
    };
    let mut w_pass_chain = hi.max(200e-12);
    for k in 1..=30 {
        let w = chain_w_min + k as f64 * 50e-12;
        let o = chain.propagate_pulse(w, Polarity::PositiveGoing, None)?;
        if o.output_width >= (w + skew) * 0.95 {
            w_pass_chain = w;
            break;
        }
    }
    // One stage saturates at roughly the chain knee scaled down; keep it
    // at least the measured w_min.
    let w_pass = (w_pass_chain * 0.6).max(w_min * 1.2);

    Ok(GateTimingModel::new(
        tp_lh.max(1e-12),
        tp_hl.max(1e-12),
        w_min,
        w_pass,
    ))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::library::TimingLibrary;
    use crate::path_model::{PathElement, PathTimingModel};

    #[test]
    fn calibration_yields_plausible_inverter() {
        let m = calibrate_inverter(&Tech::generic_180nm()).unwrap();
        assert!(m.tp_lh > 10e-12 && m.tp_lh < 500e-12, "tp_lh {:e}", m.tp_lh);
        assert!(m.tp_hl > 10e-12 && m.tp_hl < 500e-12, "tp_hl {:e}", m.tp_hl);
        assert!(m.w_min > 10e-12 && m.w_min < 500e-12, "w_min {:e}", m.w_min);
        assert!(m.w_pass >= m.w_min);
    }

    #[test]
    fn calibrated_chain_tracks_electrical_delay() {
        let tech = Tech::generic_180nm();
        let m = calibrate_inverter(&tech).unwrap();
        // Model-level 5-chain delay vs electrical 5-chain delay.
        let model = PathTimingModel::new(vec![
            PathElement::Gate {
                model: m,
                inverting: true,
                slow_rise: 0.0,
                slow_fall: 0.0
            };
            5
        ]);
        let spec = PathSpec::inverter_chain(5);
        let mut chain = BuiltPath::new(&spec, &PathFault::None, &vec![tech; 5]);
        let d_e = chain
            .propagate_transition(Edge::Rising, None)
            .unwrap()
            .delay
            .unwrap();
        let d_m = model.delay(Edge::Rising);
        let err = (d_m - d_e).abs() / d_e;
        assert!(
            err < 0.15,
            "calibrated delay off by {:.0}%: model {d_m:e}, electrical {d_e:e}",
            err * 100.0
        );
    }

    #[test]
    fn calibrated_library_is_usable() {
        let m = calibrate_inverter(&Tech::generic_180nm()).unwrap();
        let lib = TimingLibrary::calibrated(m);
        let nand = lib.model(pulsar_logic::GateKind::Nand, 2);
        assert!(nand.tp_lh > m.tp_lh);
    }
}
