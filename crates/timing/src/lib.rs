#![warn(missing_docs)]
// Library code must surface failures as typed errors or documented
// panics, never ad-hoc unwraps; #[cfg(test)] modules opt back in.
#![warn(clippy::unwrap_used)]

//! # pulsar-timing
//!
//! Event-level pulse-propagation engine: the paper's announced follow-up
//! ("*a logic level fault simulation tool is under development in order to
//! apply our method to the case of large combinational networks*", §6),
//! built in the spirit of the transient-fault propagation model of Omana
//! et al. (paper ref.\[10\]).
//!
//! Each gate is abstracted to a [`GateTimingModel`]: propagation delays
//! per output edge plus a **pulse-width transfer function** with the three
//! regions observed electrically (Fig. 10 of the paper):
//!
//! 1. below `w_min` the pulse is filtered (inertial-delay rejection),
//! 2. an attenuation band where the output width shrinks affinely,
//! 3. an asymptotic region where the width passes with only an
//!    edge-skew offset.
//!
//! Fault effects map onto the model: an internal resistive open slows one
//! output edge ([`PathElement::Gate`]'s `slow_rise`/`slow_fall`), an
//! external one inserts an RC stage ([`PathElement::RcNet`]) whose time
//! constant both delays and filters. [`PathTimingModel`] folds a pulse (or
//! an edge) through a chain of such elements in microseconds instead of
//! the milliseconds a transistor-level transient costs — the speedup that
//! makes whole-benchmark test generation feasible.
//!
//! Models can be written by hand, taken from the built-in
//! [`TimingLibrary`], or fitted against `pulsar-analog` with
//! [`calibrate_inverter`].

mod calibrate;
mod library;
mod model;
mod netsim;
mod path_model;

pub use calibrate::calibrate_inverter;
pub use library::TimingLibrary;
pub use model::GateTimingModel;
pub use netsim::{NetSim, NetSimOutcome, TimedEvent};
pub use path_model::{PathElement, PathTimingModel};
