//! Whole-netlist pulse/transition timing simulation.
//!
//! [`PathTimingModel`](crate::PathTimingModel) folds events along one
//! pre-selected path; this module is the full tool the paper's conclusion
//! announces — "a logic level fault simulation tool … to apply our method
//! to the case of large combinational networks". Given a static input
//! vector, it propagates a transition or pulse event injected at one
//! primary input through the *entire* netlist:
//!
//! * a gate propagates an event only when the vector leaves it
//!   sensitized (side inputs non-controlling — checked functionally, so
//!   XOR-family gates work too),
//! * pulse widths pass through each gate's three-region transfer and die
//!   where they are filtered,
//! * defects are injected per gate pin (external ROP = RC on the branch)
//!   or per gate edge (internal ROP),
//! * reconvergent activity — several events meeting at one gate — is
//!   resolved conservatively (earliest surviving event wins) and
//!   **flagged**, because that is precisely the multiple-path masking
//!   effect the paper warns about in §1.

use crate::library::TimingLibrary;
use crate::model::GateTimingModel;
use crate::path_model::PathElement;
use pulsar_analog::{Edge, Polarity};
use pulsar_logic::{simulate_bool, GateId, LogicError, Netlist, SignalId};
use std::collections::HashMap;

/// A timed event on a signal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TimedEvent {
    /// A single transition arriving at `t`.
    Edge {
        /// Arrival time at 50 % swing, seconds.
        t: f64,
        /// Transition direction.
        edge: Edge,
    },
    /// A pulse whose leading edge arrives at `t_lead`.
    Pulse {
        /// Leading-edge arrival time, seconds.
        t_lead: f64,
        /// Width at 50 % swing, seconds.
        width: f64,
        /// Polarity relative to the signal's static value.
        polarity: Polarity,
    },
}

impl TimedEvent {
    /// Arrival time of the event's leading activity.
    pub fn time(&self) -> f64 {
        match self {
            TimedEvent::Edge { t, .. } => *t,
            TimedEvent::Pulse { t_lead, .. } => *t_lead,
        }
    }

    /// Pulse width, if this is a pulse event.
    pub fn width(&self) -> Option<f64> {
        match self {
            TimedEvent::Pulse { width, .. } => Some(*width),
            TimedEvent::Edge { .. } => None,
        }
    }
}

/// Outcome of one injection run.
#[derive(Debug, Clone)]
pub struct NetSimOutcome {
    /// Event (if any) arriving at each primary output, in PO order.
    pub po_events: Vec<Option<TimedEvent>>,
    /// Every signal's event, indexed by [`SignalId::index`] — for
    /// debugging and for fault-effect inspection mid-circuit.
    pub events: Vec<Option<TimedEvent>>,
    /// True when more than one input of some gate carried events: the
    /// result used the conservative earliest-survivor rule and may hide
    /// multi-path masking (paper §1).
    pub reconvergence: bool,
}

/// Event-driven timing simulator over a [`Netlist`].
///
/// # Example
///
/// ```
/// use pulsar_analog::Polarity;
/// use pulsar_logic::c17;
/// use pulsar_timing::{NetSim, TimingLibrary};
///
/// # fn main() -> Result<(), pulsar_logic::LogicError> {
/// let nl = c17();
/// let sim = NetSim::new(&nl, &TimingLibrary::generic());
/// // Pulse input "1" with the other inputs sensitizing gate 10.
/// // Vector (1,2,3,6,7) = (0,0,1,0,0): 3=1 sensitizes gate 10, and
/// // 2=0 forces net 16 high so output 22's side input is non-controlling.
/// let pi = nl.find_signal("1").expect("c17 input");
/// let out = sim.run_pulse(&[false, false, true, false, false], pi,
///                         Polarity::PositiveGoing, 800e-12)?;
/// assert!(out.po_events.iter().any(|e| e.is_some()), "a wide pulse gets through");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NetSim<'a> {
    nl: &'a Netlist,
    models: Vec<GateTimingModel>,
    slow_rise: Vec<f64>,
    slow_fall: Vec<f64>,
    /// RC time constants on specific gate input pins (external ROPs).
    pin_rc: HashMap<(GateId, usize), f64>,
}

impl<'a> NetSim<'a> {
    /// Builds a simulator with per-gate models from `lib`
    /// (fan-out-aware).
    pub fn new(nl: &'a Netlist, lib: &TimingLibrary) -> Self {
        let fanouts = nl.fanouts();
        let models = nl
            .gates()
            .iter()
            .map(|g| lib.model(g.kind, fanouts[g.output.index()].len().max(1)))
            .collect();
        NetSim {
            nl,
            models,
            slow_rise: vec![0.0; nl.gate_count()],
            slow_fall: vec![0.0; nl.gate_count()],
            pin_rc: HashMap::new(),
        }
    }

    /// Injects an external ROP: an RC of constant `tau` on input `pin`
    /// of `gate` (the defect sits on that fan-out branch only).
    pub fn inject_rc(&mut self, gate: GateId, pin: usize, tau: f64) {
        *self.pin_rc.entry((gate, pin)).or_insert(0.0) += tau;
    }

    /// Injects an internal ROP: slows the given output edge of `gate` by
    /// `extra` seconds.
    pub fn inject_edge_slow(&mut self, gate: GateId, edge: Edge, extra: f64) {
        match edge {
            Edge::Rising => self.slow_rise[gate.index()] += extra,
            Edge::Falling => self.slow_fall[gate.index()] += extra,
        }
    }

    /// Removes all injected defects.
    pub fn clear_faults(&mut self) {
        self.slow_rise.fill(0.0);
        self.slow_fall.fill(0.0);
        self.pin_rc.clear();
    }

    /// Propagates a pulse injected at primary input `pi` under the static
    /// vector `pi_values` (one bool per PI, in netlist PI order).
    ///
    /// # Errors
    ///
    /// Netlist errors (combinational loops) propagate.
    ///
    /// # Panics
    ///
    /// Panics if `pi` is not a primary input or the vector length is
    /// wrong.
    pub fn run_pulse(
        &self,
        pi_values: &[bool],
        pi: SignalId,
        polarity: Polarity,
        w_in: f64,
    ) -> Result<NetSimOutcome, LogicError> {
        self.run(
            pi_values,
            pi,
            TimedEvent::Pulse {
                t_lead: 0.0,
                width: w_in,
                polarity,
            },
        )
    }

    /// Propagates a single transition injected at `pi`.
    ///
    /// # Errors
    ///
    /// Netlist errors propagate.
    ///
    /// # Panics
    ///
    /// Panics if `pi` is not a primary input or the vector length is
    /// wrong.
    pub fn run_edge(
        &self,
        pi_values: &[bool],
        pi: SignalId,
        edge: Edge,
    ) -> Result<NetSimOutcome, LogicError> {
        self.run(pi_values, pi, TimedEvent::Edge { t: 0.0, edge })
    }

    fn run(
        &self,
        pi_values: &[bool],
        pi: SignalId,
        event: TimedEvent,
    ) -> Result<NetSimOutcome, LogicError> {
        assert!(
            self.nl.inputs().contains(&pi),
            "injection site {} is not a primary input",
            self.nl.signal_name(pi)
        );
        let statics = simulate_bool(self.nl, pi_values)?;
        let order = self.nl.topological_order()?;

        let mut events: Vec<Option<TimedEvent>> = vec![None; self.nl.signal_count()];
        events[pi.index()] = Some(event);
        let mut reconvergence = false;

        for gid in order {
            let gate = self.nl.gate(gid);
            let active: Vec<usize> = gate
                .inputs
                .iter()
                .enumerate()
                .filter(|(_, s)| events[s.index()].is_some())
                .map(|(p, _)| p)
                .collect();
            if active.is_empty() {
                continue;
            }
            if active.len() > 1 {
                reconvergence = true;
            }

            // Earliest surviving propagation across active pins.
            let mut best: Option<TimedEvent> = None;
            for pin in active {
                let in_sig = gate.inputs[pin];
                let in_event = events[in_sig.index()].expect("filtered to active pins");
                if let Some(out) = self.propagate_through(gid, pin, in_event, &statics) {
                    best = Some(match best {
                        None => out,
                        Some(cur) if out.time() < cur.time() => out,
                        Some(cur) => cur,
                    });
                }
            }
            if let Some(e) = best {
                events[gate.output.index()] = Some(e);
            }
        }

        let po_events = self
            .nl
            .outputs()
            .iter()
            .map(|o| events[o.index()])
            .collect();
        Ok(NetSimOutcome {
            po_events,
            events,
            reconvergence,
        })
    }

    /// Propagates one event through one gate pin; `None` when masked or
    /// filtered.
    fn propagate_through(
        &self,
        gid: GateId,
        pin: usize,
        event: TimedEvent,
        statics: &[bool],
    ) -> Option<TimedEvent> {
        // Functional sensitization: does flipping this pin (with every
        // other pin at its static value) flip the output?
        let out_low = self.eval_with(gid, pin, false, statics);
        let out_high = self.eval_with(gid, pin, true, statics);
        if out_low == out_high {
            return None; // masked by a controlling side value
        }
        let inverting = !out_high; // input 1 → output 0 means inversion
        let model = &self.models[gid.index()];
        let sr = self.slow_rise[gid.index()];
        let sf = self.slow_fall[gid.index()];

        // External-ROP RC on this branch, applied before the gate.
        let rc = self.pin_rc.get(&(gid, pin)).copied().unwrap_or(0.0);
        let rc_elem = PathElement::RcNet { tau: rc };

        match event {
            TimedEvent::Edge { t, edge } => {
                let t = if rc > 0.0 {
                    t + rc_elem.edge_delay(edge)
                } else {
                    t
                };
                let out_edge = if inverting { edge.inverted() } else { edge };
                Some(TimedEvent::Edge {
                    t: t + model.edge_delay(out_edge, sr, sf),
                    edge: out_edge,
                })
            }
            TimedEvent::Pulse {
                t_lead,
                width,
                polarity,
            } => {
                let (t_lead, width) = if rc > 0.0 {
                    let w = rc_elem.width_out(width, polarity);
                    if w == 0.0 {
                        return None;
                    }
                    (t_lead + rc_elem.edge_delay(polarity.leading_edge()), w)
                } else {
                    (t_lead, width)
                };
                let out_pol = if inverting {
                    polarity.inverted()
                } else {
                    polarity
                };
                let w_out = model.width_out(width, out_pol.leading_edge(), sr, sf);
                if w_out == 0.0 {
                    return None;
                }
                let t_out = t_lead + model.edge_delay(out_pol.leading_edge(), sr, sf);
                Some(TimedEvent::Pulse {
                    t_lead: t_out,
                    width: w_out,
                    polarity: out_pol,
                })
            }
        }
    }

    /// Gate output with `pin` forced to `value` and other pins static.
    fn eval_with(&self, gid: GateId, pin: usize, value: bool, statics: &[bool]) -> bool {
        let gate = self.nl.gate(gid);
        let words: Vec<u64> = gate
            .inputs
            .iter()
            .enumerate()
            .map(|(p, s)| {
                let v = if p == pin { value } else { statics[s.index()] };
                if v {
                    1
                } else {
                    0
                }
            })
            .collect();
        gate.kind.eval_words(&words) & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::path_model::PathTimingModel;
    use pulsar_logic::{c17, GateKind};

    fn lib() -> TimingLibrary {
        TimingLibrary::generic()
    }

    /// A 4-inverter chain netlist.
    fn chain_netlist(n: usize) -> (Netlist, SignalId) {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let mut cur = a;
        for i in 0..n {
            cur = nl.add_gate(GateKind::Not, &[cur], format!("g{i}")).unwrap();
        }
        nl.mark_output(cur);
        (nl, a)
    }

    #[test]
    fn chain_matches_the_path_model() {
        let (nl, a) = chain_netlist(5);
        let sim = NetSim::new(&nl, &lib());
        let paths = pulsar_logic::enumerate_paths(&nl, None, 10).unwrap();
        let pm = PathTimingModel::from_netlist_path(&nl, &paths[0], &lib());

        // Edge delay agrees exactly.
        let out = sim.run_edge(&[false], a, Edge::Rising).unwrap();
        let Some(TimedEvent::Edge { t, edge }) = out.po_events[0] else {
            panic!("edge must arrive")
        };
        assert!((t - pm.delay(Edge::Rising)).abs() < 1e-15);
        assert_eq!(edge, Edge::Falling); // five inversions

        // Pulse width agrees exactly.
        let out = sim
            .run_pulse(&[false], a, Polarity::PositiveGoing, 500e-12)
            .unwrap();
        let w = out.po_events[0]
            .expect("pulse arrives")
            .width()
            .expect("is a pulse");
        assert!((w - pm.pulse_out(500e-12, Polarity::PositiveGoing)).abs() < 1e-15);
        assert!(!out.reconvergence);
    }

    #[test]
    fn controlling_side_input_masks_the_event() {
        // y = NAND(a, b): with b = 0 the gate is desensitized.
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_gate(GateKind::Nand, &[a, b], "y").unwrap();
        nl.mark_output(y);
        let sim = NetSim::new(&nl, &lib());

        let blocked = sim
            .run_pulse(&[false, false], a, Polarity::PositiveGoing, 400e-12)
            .unwrap();
        assert!(
            blocked.po_events[0].is_none(),
            "controlling 0 on b must mask"
        );
        let open = sim
            .run_pulse(&[false, true], a, Polarity::PositiveGoing, 400e-12)
            .unwrap();
        assert!(
            open.po_events[0].is_some(),
            "non-controlling 1 on b must pass"
        );
        let _ = y;
    }

    #[test]
    fn xor_side_parity_sets_inversion() {
        // y = XOR(a, b): b = 0 → transparent, b = 1 → inverting.
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_gate(GateKind::Xor, &[a, b], "y").unwrap();
        nl.mark_output(y);
        let sim = NetSim::new(&nl, &lib());

        let t0 = sim
            .run_pulse(&[false, false], a, Polarity::PositiveGoing, 600e-12)
            .unwrap();
        let Some(TimedEvent::Pulse { polarity, .. }) = t0.po_events[0] else {
            panic!()
        };
        assert_eq!(
            polarity,
            Polarity::PositiveGoing,
            "xor with side 0 is transparent"
        );

        let t1 = sim
            .run_pulse(&[false, true], a, Polarity::PositiveGoing, 600e-12)
            .unwrap();
        let Some(TimedEvent::Pulse { polarity, .. }) = t1.po_events[0] else {
            panic!()
        };
        assert_eq!(polarity, Polarity::NegativeGoing, "xor with side 1 inverts");
    }

    #[test]
    fn injected_rc_dampens_only_its_branch() {
        // a fans out to two NOT gates; the RC sits on one branch.
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let y0 = nl.add_gate(GateKind::Not, &[a], "y0").unwrap();
        let y1 = nl.add_gate(GateKind::Not, &[a], "y1").unwrap();
        nl.mark_output(y0);
        nl.mark_output(y1);

        let mut sim = NetSim::new(&nl, &lib());
        let g_y0 = nl.driver_id(y0).expect("y0 is driven");
        sim.inject_rc(g_y0, 0, 600e-12);
        let out = sim
            .run_pulse(&[false], a, Polarity::PositiveGoing, 350e-12)
            .unwrap();
        assert!(out.po_events[0].is_none(), "faulted branch must dampen");
        assert!(out.po_events[1].is_some(), "healthy branch must pass");
    }

    #[test]
    fn injected_edge_slow_delays_the_affected_direction() {
        let (nl, a) = chain_netlist(3);
        let mut sim = NetSim::new(&nl, &lib());
        let base = match sim.run_edge(&[false], a, Edge::Rising).unwrap().po_events[0] {
            Some(TimedEvent::Edge { t, .. }) => t,
            other => panic!("expected edge, got {other:?}"),
        };
        // Gate 1's output *rises* on a rising PI (one inversion upstream
        // through g0), so a rising-edge slow-down hits this launch.
        let g1 = nl
            .driver_id(nl.find_signal("g1").expect("g1 exists"))
            .expect("driven");
        sim.inject_edge_slow(g1, Edge::Rising, 300e-12);
        let slowed = match sim.run_edge(&[false], a, Edge::Rising).unwrap().po_events[0] {
            Some(TimedEvent::Edge { t, .. }) => t,
            other => panic!("expected edge, got {other:?}"),
        };
        assert!((slowed - base - 300e-12).abs() < 1e-15);
        // The opposite launch direction is untouched.
        let other = match sim.run_edge(&[true], a, Edge::Falling).unwrap().po_events[0] {
            Some(TimedEvent::Edge { t, .. }) => t,
            other => panic!("expected edge, got {other:?}"),
        };
        let clean_other = {
            sim.clear_faults();
            match sim.run_edge(&[true], a, Edge::Falling).unwrap().po_events[0] {
                Some(TimedEvent::Edge { t, .. }) => t,
                other => panic!("expected edge, got {other:?}"),
            }
        };
        assert!((other - clean_other).abs() < 1e-15);
    }

    #[test]
    fn c17_pulse_reaches_an_output_and_flags_reconvergence() {
        let nl = c17();
        let sim = NetSim::new(&nl, &lib());
        // Input 3 fans out to both NAND(1,3) and NAND(3,6): events
        // reconverge at gate 22 under the right vector.
        let i3 = nl.find_signal("3").unwrap();
        // Vector: 1=1, 2=1, 6=1, 7=1 (order: 1,2,3,6,7).
        let vector = [true, true, false, true, true];
        let out = sim
            .run_pulse(&vector, i3, Polarity::PositiveGoing, 800e-12)
            .unwrap();
        assert!(
            out.po_events.iter().any(|e| e.is_some()),
            "a wide pulse must reach some output: {:?}",
            out.po_events
        );
        assert!(out.reconvergence, "input 3 drives reconvergent fan-out");
    }

    #[test]
    #[should_panic(expected = "not a primary input")]
    fn injecting_at_a_gate_output_panics() {
        let (nl, _) = chain_netlist(2);
        let sim = NetSim::new(&nl, &lib());
        let g0 = nl.find_signal("g0").unwrap();
        let _ = sim.run_pulse(&[false], g0, Polarity::PositiveGoing, 1e-10);
    }
}
