//! Folding pulses and edges through a chain of timing elements.

use crate::library::TimingLibrary;
use crate::model::GateTimingModel;
use pulsar_analog::{Edge, Polarity};
use pulsar_logic::{Netlist, Path};

/// One element of a path-level timing model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PathElement {
    /// A logic gate.
    Gate {
        /// The gate's timing model.
        model: GateTimingModel,
        /// Whether the gate logically inverts under sensitization.
        inverting: bool,
        /// Extra delay on rising output edges (internal pull-up ROP).
        slow_rise: f64,
        /// Extra delay on falling output edges (internal pull-down ROP).
        slow_fall: f64,
    },
    /// A degraded interconnect segment modeled as a first-order RC low
    /// pass (external ROP: defect resistance × branch capacitance).
    RcNet {
        /// RC time constant, seconds.
        tau: f64,
    },
}

/// RC stage behaviour: an RC low-pass of constant τ delays a full-swing
/// edge by ln(2)·τ at the 50 % threshold, rejects pulses much shorter
/// than τ, and passes pulses much longer than τ intact. The two knees
/// below bracket the analog behaviour.
const RC_DELAY_FACTOR: f64 = std::f64::consts::LN_2;
const RC_WMIN_FACTOR: f64 = 0.7;
const RC_WPASS_FACTOR: f64 = 2.5;

impl PathElement {
    /// Delay added to an edge that leaves this element with direction
    /// `output_edge`.
    pub fn edge_delay(&self, output_edge: Edge) -> f64 {
        match self {
            PathElement::Gate {
                model,
                slow_rise,
                slow_fall,
                ..
            } => model.edge_delay(output_edge, *slow_rise, *slow_fall),
            PathElement::RcNet { tau } => RC_DELAY_FACTOR * tau,
        }
    }

    /// Whether the polarity flips across this element.
    pub fn inverts(&self) -> bool {
        matches!(
            self,
            PathElement::Gate {
                inverting: true,
                ..
            }
        )
    }

    /// Width transfer. `out_polarity` is the pulse polarity at this
    /// element's *output*.
    pub fn width_out(&self, w_in: f64, out_polarity: Polarity) -> f64 {
        match self {
            PathElement::Gate {
                model,
                slow_rise,
                slow_fall,
                ..
            } => model.width_out(w_in, out_polarity.leading_edge(), *slow_rise, *slow_fall),
            PathElement::RcNet { tau } => {
                let w_min = RC_WMIN_FACTOR * tau;
                let w_pass = RC_WPASS_FACTOR * tau;
                if w_in <= w_min {
                    0.0
                } else if w_in >= w_pass {
                    w_in
                } else {
                    // Ramp (w_min, 0) → (w_pass, w_pass).
                    (w_in - w_min) / (w_pass - w_min) * w_pass
                }
            }
        }
    }
}

/// Timing model of a full sensitized path: an ordered chain of elements.
///
/// # Example
///
/// ```
/// use pulsar_timing::{GateTimingModel, PathElement, PathTimingModel};
/// use pulsar_analog::{Edge, Polarity};
///
/// let inv = GateTimingModel::new(100e-12, 80e-12, 60e-12, 200e-12);
/// let chain = PathTimingModel::new(vec![
///     PathElement::Gate { model: inv, inverting: true, slow_rise: 0.0, slow_fall: 0.0 };
///     7
/// ]);
/// let w = chain.pulse_out(500e-12, Polarity::PositiveGoing);
/// assert!(w > 0.0, "a wide pulse crosses a healthy chain");
/// let d = chain.delay(Edge::Rising);
/// assert!(d > 0.5e-9, "seven stages of ~90 ps each");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PathTimingModel {
    elements: Vec<PathElement>,
}

impl PathTimingModel {
    /// Builds a model from elements in input-to-output order.
    pub fn new(elements: Vec<PathElement>) -> Self {
        PathTimingModel { elements }
    }

    /// Derives the model of a structural [`Path`] in `nl` using per-kind
    /// models from `lib` (fan-out-aware).
    pub fn from_netlist_path(nl: &Netlist, path: &Path, lib: &TimingLibrary) -> Self {
        let fanouts = nl.fanouts();
        let elements = path
            .steps
            .iter()
            .map(|step| {
                let gate = nl.gate(step.gate);
                let fo = fanouts[gate.output.index()].len().max(1);
                PathElement::Gate {
                    model: lib.model(gate.kind, fo),
                    inverting: gate.kind.inverts(),
                    slow_rise: 0.0,
                    slow_fall: 0.0,
                }
            })
            .collect();
        PathTimingModel { elements }
    }

    /// The elements of this model.
    pub fn elements(&self) -> &[PathElement] {
        &self.elements
    }

    /// Mutable access for fault injection.
    pub fn elements_mut(&mut self) -> &mut Vec<PathElement> {
        &mut self.elements
    }

    /// Injects an internal ROP: slows the given output edge of the
    /// `stage`-th gate element by `extra` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `stage` does not index a gate element.
    pub fn inject_edge_slow(&mut self, stage: usize, edge: Edge, extra: f64) {
        let gate_indices: Vec<usize> = self
            .elements
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e, PathElement::Gate { .. }))
            .map(|(i, _)| i)
            .collect();
        let idx = gate_indices[stage];
        match &mut self.elements[idx] {
            PathElement::Gate {
                slow_rise,
                slow_fall,
                ..
            } => match edge {
                Edge::Rising => *slow_rise += extra,
                Edge::Falling => *slow_fall += extra,
            },
            PathElement::RcNet { .. } => unreachable!("filtered to gates"),
        }
    }

    /// Injects an RC element of constant `tau` at the very front of the
    /// chain — an external ROP on the primary input's fan-out branch.
    pub fn inject_rc_at_front(&mut self, tau: f64) {
        self.elements.insert(0, PathElement::RcNet { tau });
    }

    /// Injects an external ROP: inserts an RC element of constant `tau`
    /// right after the `stage`-th gate element.
    ///
    /// # Panics
    ///
    /// Panics if `stage` does not index a gate element.
    pub fn inject_rc_after(&mut self, stage: usize, tau: f64) {
        let gate_indices: Vec<usize> = self
            .elements
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e, PathElement::Gate { .. }))
            .map(|(i, _)| i)
            .collect();
        let idx = gate_indices[stage];
        self.elements.insert(idx + 1, PathElement::RcNet { tau });
    }

    /// Returns a copy whose `i`-th *gate* element is scaled by
    /// `factors[i]` (see [`GateTimingModel::scaled`]) — one Monte Carlo
    /// instance of the path. RC elements are unaffected (the defect is
    /// not part of the process variation).
    ///
    /// # Panics
    ///
    /// Panics if `factors.len()` differs from the number of gate
    /// elements.
    pub fn with_stage_factors(&self, factors: &[f64]) -> PathTimingModel {
        let n_gates = self
            .elements
            .iter()
            .filter(|e| matches!(e, PathElement::Gate { .. }))
            .count();
        assert_eq!(factors.len(), n_gates, "one factor per gate element");
        let mut fi = 0usize;
        let elements = self
            .elements
            .iter()
            .map(|e| match e {
                PathElement::Gate {
                    model,
                    inverting,
                    slow_rise,
                    slow_fall,
                } => {
                    let f = factors[fi];
                    fi += 1;
                    PathElement::Gate {
                        model: model.scaled(f),
                        inverting: *inverting,
                        slow_rise: *slow_rise,
                        slow_fall: *slow_fall,
                    }
                }
                rc => *rc,
            })
            .collect();
        PathTimingModel { elements }
    }

    /// Whether the whole path inverts.
    pub fn inverts(&self) -> bool {
        self.elements.iter().filter(|e| e.inverts()).count() % 2 == 1
    }

    /// Propagation delay of a single transition entering with
    /// `input_edge`.
    pub fn delay(&self, input_edge: Edge) -> f64 {
        let mut edge = input_edge;
        let mut d = 0.0;
        for e in &self.elements {
            if e.inverts() {
                edge = edge.inverted();
            }
            d += e.edge_delay(edge);
        }
        d
    }

    /// Output pulse width for an input pulse of width `w_in` and the given
    /// polarity; 0.0 when dampened anywhere along the chain.
    pub fn pulse_out(&self, w_in: f64, polarity: Polarity) -> f64 {
        let mut w = w_in;
        let mut pol = polarity;
        for e in &self.elements {
            if e.inverts() {
                pol = pol.inverted();
            }
            w = e.width_out(w, pol);
            if w == 0.0 {
                return 0.0;
            }
        }
        w
    }

    /// The smallest input width that still yields a non-zero output width,
    /// found by bisection to `tol`; `None` if even `w_hi` is dampened.
    ///
    /// This is the path's own sensing threshold — the quantity the
    /// `(ω_in, ω_th)` selection rule of the paper's §5 is built on.
    pub fn min_passing_width(&self, polarity: Polarity, w_hi: f64, tol: f64) -> Option<f64> {
        if self.pulse_out(w_hi, polarity) == 0.0 {
            return None;
        }
        let mut lo = 0.0;
        let mut hi = w_hi;
        while hi - lo > tol {
            let mid = 0.5 * (lo + hi);
            if self.pulse_out(mid, polarity) == 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(hi)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use proptest::prelude::*;

    fn inv() -> PathElement {
        PathElement::Gate {
            model: GateTimingModel::new(100e-12, 80e-12, 60e-12, 200e-12),
            inverting: true,
            slow_rise: 0.0,
            slow_fall: 0.0,
        }
    }

    fn chain(n: usize) -> PathTimingModel {
        PathTimingModel::new(vec![inv(); n])
    }

    #[test]
    fn delay_alternates_edges() {
        let c = chain(2);
        // Rising input → stage 1 output falls (80 ps) → stage 2 output
        // rises (100 ps).
        assert!((c.delay(Edge::Rising) - 180e-12).abs() < 1e-15);
        assert!((c.delay(Edge::Falling) - 180e-12).abs() < 1e-15);
        let c3 = chain(3);
        // R→F(80)→R(100)→F(80) = 260; F→R(100)→F(80)→R(100) = 280.
        assert!((c3.delay(Edge::Rising) - 260e-12).abs() < 1e-15);
        assert!((c3.delay(Edge::Falling) - 280e-12).abs() < 1e-15);
    }

    #[test]
    fn wide_pulse_survives_chain() {
        let c = chain(7);
        let w = c.pulse_out(600e-12, Polarity::PositiveGoing);
        assert!(w > 400e-12, "got {w:e}");
    }

    #[test]
    fn narrow_pulse_dies() {
        let c = chain(7);
        assert_eq!(c.pulse_out(50e-12, Polarity::PositiveGoing), 0.0);
    }

    #[test]
    fn injected_edge_slow_dampens() {
        let mut c = chain(7);
        let healthy = c.pulse_out(400e-12, Polarity::PositiveGoing);
        assert!(healthy > 0.0);
        c.inject_edge_slow(1, Edge::Rising, 500e-12);
        // Stage 1's output pulse may be rising- or falling-led depending
        // on polarity; one of the two polarities must die.
        let a = c.pulse_out(400e-12, Polarity::PositiveGoing);
        let b = c.pulse_out(400e-12, Polarity::NegativeGoing);
        assert!(
            a == 0.0 || b == 0.0,
            "a strong one-edge ROP kills one pulse kind: {a:e}/{b:e}"
        );
    }

    #[test]
    fn injected_rc_dampens_both_polarities() {
        let mut c = chain(7);
        c.inject_rc_after(1, 400e-12);
        assert_eq!(c.pulse_out(250e-12, Polarity::PositiveGoing), 0.0);
        assert_eq!(c.pulse_out(250e-12, Polarity::NegativeGoing), 0.0);
        // And adds delay for plain transitions instead.
        let clean = chain(7).delay(Edge::Rising);
        assert!(c.delay(Edge::Rising) > clean + 200e-12);
    }

    #[test]
    fn min_passing_width_brackets_the_transfer() {
        let c = chain(5);
        let w = c
            .min_passing_width(Polarity::PositiveGoing, 2e-9, 1e-13)
            .expect("passes at 2 ns");
        assert!(c.pulse_out(w * 1.01, Polarity::PositiveGoing) > 0.0);
        assert_eq!(c.pulse_out(w * 0.99, Polarity::PositiveGoing), 0.0);
    }

    #[test]
    fn min_passing_width_none_when_blocked() {
        let mut c = chain(3);
        c.inject_rc_after(1, 1e-7); // absurd tau kills everything up to w_hi
        assert_eq!(
            c.min_passing_width(Polarity::PositiveGoing, 1e-9, 1e-13),
            None
        );
    }

    #[test]
    fn stage_factors_scale_delay_proportionally() {
        let c = chain(4);
        let slow = c.with_stage_factors(&[1.2; 4]);
        let d0 = c.delay(Edge::Rising);
        let d1 = slow.delay(Edge::Rising);
        assert!(
            (d1 / d0 - 1.2).abs() < 1e-12,
            "uniform 1.2x scaling: {d0:e} -> {d1:e}"
        );
        // Slower gates also filter more.
        let w = 150e-12;
        assert!(
            slow.pulse_out(w, Polarity::PositiveGoing)
                <= c.pulse_out(w, Polarity::PositiveGoing) + 1e-18
        );
    }

    #[test]
    fn stage_factors_skip_rc_elements() {
        let mut c = chain(3);
        c.inject_rc_after(1, 100e-12);
        // 3 gate elements even though there are 4 path elements.
        let scaled = c.with_stage_factors(&[1.5, 1.5, 1.5]);
        assert_eq!(scaled.elements().len(), 4);
        let tau_kept = scaled
            .elements()
            .iter()
            .any(|e| matches!(e, PathElement::RcNet { tau } if (*tau - 100e-12).abs() < 1e-18));
        assert!(tau_kept, "the defect RC must not be scaled");
    }

    #[test]
    #[should_panic(expected = "one factor per gate element")]
    fn stage_factor_count_mismatch_panics() {
        chain(3).with_stage_factors(&[1.0, 1.0]);
    }

    #[test]
    fn parity_bookkeeping() {
        assert!(chain(7).inverts());
        assert!(!chain(6).inverts());
        let mut c = chain(2);
        c.inject_rc_after(0, 1e-12);
        assert!(!c.inverts(), "rc nets do not invert");
        assert_eq!(c.elements().len(), 3);
    }

    proptest! {
        /// Path-level transfer inherits monotonicity from the elements.
        #[test]
        fn path_transfer_monotonic(w1 in 0.0f64..1.5e-9, w2 in 0.0f64..1.5e-9, n in 1usize..9) {
            let c = chain(n);
            let (lo, hi) = if w1 <= w2 { (w1, w2) } else { (w2, w1) };
            for pol in [Polarity::PositiveGoing, Polarity::NegativeGoing] {
                prop_assert!(c.pulse_out(lo, pol) <= c.pulse_out(hi, pol) + 1e-18);
            }
        }

        /// A fault (edge slow-down or RC) never *increases* the minimum
        /// passing width... i.e. the faulty path never passes a pulse the
        /// healthy one filters.
        #[test]
        fn faults_never_help(w in 0.0f64..1.0e-9, tau in 1e-12f64..5e-10, stage in 0usize..5) {
            let healthy = chain(5);
            let mut faulty = healthy.clone();
            faulty.inject_rc_after(stage, tau);
            for pol in [Polarity::PositiveGoing, Polarity::NegativeGoing] {
                prop_assert!(faulty.pulse_out(w, pol) <= healthy.pulse_out(w, pol) + 1e-18);
            }
        }
    }
}
