//! Per-kind gate timing models.

use crate::model::GateTimingModel;
use pulsar_logic::GateKind;

/// A table of [`GateTimingModel`]s per gate kind with linear fan-out
/// derating.
///
/// The built-in [`TimingLibrary::generic`] values are hand-set to the
/// scale of the `pulsar-cells` generic technology (gate delays around
/// 100 ps under wire loading); [`TimingLibrary::calibrated`] replaces the
/// inverter entry with electrically fitted numbers and scales the rest
/// proportionally.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingLibrary {
    inv: GateTimingModel,
    /// Relative drive weakness per kind vs the inverter (delay multiplier).
    /// NAND/NOR stacks are slower despite upsizing; XOR-class cells are
    /// compositions and slower still.
    nand_factor: f64,
    nor_factor: f64,
    xor_factor: f64,
    /// Additional delay (and filtering) per extra fan-out, as a fraction
    /// of the base delay.
    fanout_derate: f64,
}

impl TimingLibrary {
    /// The hand-set default library.
    pub fn generic() -> Self {
        TimingLibrary {
            inv: GateTimingModel::new(95e-12, 75e-12, 70e-12, 260e-12),
            nand_factor: 1.25,
            nor_factor: 1.45,
            xor_factor: 1.9,
            fanout_derate: 0.35,
        }
    }

    /// A library whose inverter entry is `inv` (e.g. from
    /// [`calibrate_inverter`](crate::calibrate_inverter)), with the same
    /// relative factors as [`TimingLibrary::generic`].
    pub fn calibrated(inv: GateTimingModel) -> Self {
        TimingLibrary {
            inv,
            ..TimingLibrary::generic()
        }
    }

    /// The model for `kind` driving `fanout` gate loads (≥ 1).
    pub fn model(&self, kind: GateKind, fanout: usize) -> GateTimingModel {
        let kf = match kind {
            GateKind::Not | GateKind::Buf => 1.0,
            GateKind::And | GateKind::Nand => self.nand_factor,
            GateKind::Or | GateKind::Nor => self.nor_factor,
            GateKind::Xor | GateKind::Xnor => self.xor_factor,
        };
        let ff = 1.0 + self.fanout_derate * (fanout.max(1) - 1) as f64;
        let s = kf * ff;
        GateTimingModel::new(
            self.inv.tp_lh * s,
            self.inv.tp_hl * s,
            self.inv.w_min * s,
            self.inv.w_pass * s,
        )
    }
}

impl Default for TimingLibrary {
    fn default() -> Self {
        TimingLibrary::generic()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn inverter_is_the_baseline() {
        let lib = TimingLibrary::generic();
        let inv = lib.model(GateKind::Not, 1);
        assert_eq!(inv, lib.inv);
    }

    #[test]
    fn stacked_gates_are_slower() {
        let lib = TimingLibrary::generic();
        let inv = lib.model(GateKind::Not, 1);
        let nand = lib.model(GateKind::Nand, 1);
        let nor = lib.model(GateKind::Nor, 1);
        let xor = lib.model(GateKind::Xor, 1);
        assert!(nand.tp_lh > inv.tp_lh);
        assert!(nor.tp_lh > nand.tp_lh);
        assert!(xor.tp_lh > nor.tp_lh);
    }

    #[test]
    fn fanout_derates_delay_and_filtering() {
        let lib = TimingLibrary::generic();
        let fo1 = lib.model(GateKind::Nand, 1);
        let fo3 = lib.model(GateKind::Nand, 3);
        assert!(fo3.tp_lh > fo1.tp_lh);
        assert!(fo3.w_min > fo1.w_min);
        // Zero fan-out is clamped to one.
        assert_eq!(lib.model(GateKind::Nand, 0), fo1);
    }

    #[test]
    fn calibrated_swaps_the_baseline() {
        let custom = GateTimingModel::new(50e-12, 40e-12, 30e-12, 120e-12);
        let lib = TimingLibrary::calibrated(custom);
        assert_eq!(lib.model(GateKind::Not, 1), custom);
        assert!(lib.model(GateKind::Nor, 1).tp_lh > custom.tp_lh);
    }
}
