//! The per-gate timing abstraction.

use pulsar_analog::Edge;

/// Timing model of one logic gate under single-input switching (all side
/// inputs non-controlling), as used by the pulse-propagation engine.
///
/// The pulse-width transfer implements the three regions of the paper's
/// Fig. 10. For an output pulse whose leading edge is delayed by `d_lead`
/// and trailing edge by `d_trail`:
///
/// * `w_in ≤ w_min_eff` → fully dampened (width 0),
/// * `w_in ≥ w_pass_eff` → `w_out = w_in + (d_trail − d_lead)`,
/// * in between → affine ramp from `(w_min_eff, 0)` up to the asymptote.
///
/// where the `_eff` thresholds include any extra slowness of the leading
/// output edge (a weakly-driven edge needs a longer input pulse to reach
/// full swing).
///
/// # Example
///
/// ```
/// use pulsar_analog::Edge;
/// use pulsar_timing::GateTimingModel;
///
/// let m = GateTimingModel::new(100e-12, 80e-12, 60e-12, 200e-12);
/// // Below w_min the gate filters the pulse entirely:
/// assert_eq!(m.width_out(50e-12, Edge::Rising, 0.0, 0.0), 0.0);
/// // Far above w_pass only the rise/fall skew remains:
/// let w = m.width_out(500e-12, Edge::Rising, 0.0, 0.0);
/// assert!((w - 480e-12).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateTimingModel {
    /// Propagation delay producing a rising output edge, seconds.
    pub tp_lh: f64,
    /// Propagation delay producing a falling output edge, seconds.
    pub tp_hl: f64,
    /// Input pulse width below which the gate output never crosses the
    /// logic threshold.
    pub w_min: f64,
    /// Input pulse width above which the transfer is asymptotic
    /// (slope one).
    pub w_pass: f64,
}

impl GateTimingModel {
    /// Validates and builds a model.
    ///
    /// # Panics
    ///
    /// Panics if delays are negative, or `w_pass < w_min`, or any value is
    /// not finite.
    pub fn new(tp_lh: f64, tp_hl: f64, w_min: f64, w_pass: f64) -> Self {
        assert!(tp_lh.is_finite() && tp_lh >= 0.0, "tp_lh must be >= 0");
        assert!(tp_hl.is_finite() && tp_hl >= 0.0, "tp_hl must be >= 0");
        assert!(w_min.is_finite() && w_min >= 0.0, "w_min must be >= 0");
        assert!(
            w_pass.is_finite() && w_pass >= w_min,
            "w_pass must be >= w_min"
        );
        GateTimingModel {
            tp_lh,
            tp_hl,
            w_min,
            w_pass,
        }
    }

    /// Returns a copy with every time constant multiplied by `f`: a
    /// uniformly slower (`f > 1`) or faster gate. This is the Monte Carlo
    /// hook at the model level — a drive-strength fluctuation moves the
    /// delays and the filtering thresholds together, which is exactly how
    /// the electrical gate behaves under a `kp` fluctuation.
    ///
    /// # Panics
    ///
    /// Panics if `f` is not strictly positive and finite.
    pub fn scaled(&self, f: f64) -> GateTimingModel {
        assert!(
            f.is_finite() && f > 0.0,
            "scale factor must be positive, got {f}"
        );
        GateTimingModel::new(
            self.tp_lh * f,
            self.tp_hl * f,
            self.w_min * f,
            self.w_pass * f,
        )
    }

    /// Propagation delay for the given *output* edge direction, with the
    /// given extra edge slow-down (internal-ROP effect).
    pub fn edge_delay(&self, output_edge: Edge, slow_rise: f64, slow_fall: f64) -> f64 {
        match output_edge {
            Edge::Rising => self.tp_lh + slow_rise,
            Edge::Falling => self.tp_hl + slow_fall,
        }
    }

    /// Pulse-width transfer. `lead_edge` is the *output* pulse's leading
    /// edge direction; `slow_rise`/`slow_fall` are extra per-edge delays.
    ///
    /// Returns the output pulse width (0 = dampened).
    pub fn width_out(&self, w_in: f64, lead_edge: Edge, slow_rise: f64, slow_fall: f64) -> f64 {
        if w_in <= 0.0 {
            return 0.0;
        }
        let d_lead = self.edge_delay(lead_edge, slow_rise, slow_fall);
        let d_trail = self.edge_delay(lead_edge.inverted(), slow_rise, slow_fall);
        // Extra leading-edge slowness raises the filtering thresholds.
        let lead_extra = match lead_edge {
            Edge::Rising => slow_rise,
            Edge::Falling => slow_fall,
        };
        let w_min_eff = self.w_min + lead_extra;
        let w_pass_eff = self.w_pass + lead_extra;
        let skew = d_trail - d_lead;

        if w_in <= w_min_eff {
            0.0
        } else if w_in >= w_pass_eff {
            (w_in + skew).max(0.0)
        } else {
            // Affine ramp from (w_min_eff, 0) to (w_pass_eff, w_pass_eff + skew).
            let top = (w_pass_eff + skew).max(0.0);
            let f = (w_in - w_min_eff) / (w_pass_eff - w_min_eff).max(1e-18);
            (f * top).max(0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use proptest::prelude::*;

    fn model() -> GateTimingModel {
        GateTimingModel::new(100e-12, 80e-12, 60e-12, 200e-12)
    }

    #[test]
    fn dampens_below_w_min() {
        let m = model();
        assert_eq!(m.width_out(50e-12, Edge::Rising, 0.0, 0.0), 0.0);
        assert_eq!(m.width_out(60e-12, Edge::Rising, 0.0, 0.0), 0.0);
    }

    #[test]
    fn asymptotic_region_adds_edge_skew() {
        let m = model();
        // Leading rising (100 ps), trailing falling (80 ps): skew −20 ps.
        let w = m.width_out(500e-12, Edge::Rising, 0.0, 0.0);
        assert!((w - 480e-12).abs() < 1e-15);
        // Opposite polarity flips the skew.
        let w = m.width_out(500e-12, Edge::Falling, 0.0, 0.0);
        assert!((w - 520e-12).abs() < 1e-15);
    }

    #[test]
    fn attenuation_region_is_continuous_at_both_ends() {
        let m = model();
        let at_min = m.width_out(m.w_min + 1e-15, Edge::Rising, 0.0, 0.0);
        assert!(
            at_min < 5e-12,
            "just above w_min the output is tiny, got {at_min:e}"
        );
        let below_pass = m.width_out(m.w_pass - 1e-15, Edge::Rising, 0.0, 0.0);
        let at_pass = m.width_out(m.w_pass, Edge::Rising, 0.0, 0.0);
        assert!((below_pass - at_pass).abs() < 1e-13);
    }

    #[test]
    fn edge_slowdown_shifts_thresholds_and_narrows() {
        let m = model();
        let clean = m.width_out(300e-12, Edge::Rising, 0.0, 0.0);
        // Slowing the rising (leading) edge by 150 ps narrows the pulse...
        let slowed = m.width_out(300e-12, Edge::Rising, 150e-12, 0.0);
        assert!(
            slowed < clean,
            "leading-edge ROP must narrow: {slowed:e} vs {clean:e}"
        );
        // ...and a strong enough slow-down dampens it entirely.
        let killed = m.width_out(300e-12, Edge::Rising, 400e-12, 0.0);
        assert_eq!(killed, 0.0);
        // Slowing the *trailing* edge widens instead.
        let widened = m.width_out(300e-12, Edge::Rising, 0.0, 150e-12);
        assert!(widened > clean);
    }

    #[test]
    fn edge_delay_picks_the_right_edge() {
        let m = model();
        assert!((m.edge_delay(Edge::Rising, 10e-12, 0.0) - 110e-12).abs() < 1e-18);
        assert!((m.edge_delay(Edge::Falling, 10e-12, 5e-12) - 85e-12).abs() < 1e-18);
    }

    #[test]
    #[should_panic(expected = "w_pass must be >= w_min")]
    fn inverted_thresholds_panic() {
        GateTimingModel::new(1e-12, 1e-12, 100e-12, 50e-12);
    }

    proptest! {
        /// The transfer is monotonically non-decreasing in the input width.
        #[test]
        fn transfer_is_monotonic(w1 in 0.0f64..1e-9, w2 in 0.0f64..1e-9,
                                 sr in 0.0f64..2e-10, sf in 0.0f64..2e-10) {
            let m = model();
            let (lo, hi) = if w1 <= w2 { (w1, w2) } else { (w2, w1) };
            for edge in [Edge::Rising, Edge::Falling] {
                prop_assert!(
                    m.width_out(lo, edge, sr, sf) <= m.width_out(hi, edge, sr, sf) + 1e-18
                );
            }
        }

        /// Output width is never negative and never exceeds input + skew.
        #[test]
        fn transfer_is_bounded(w in 0.0f64..1e-9, sr in 0.0f64..2e-10, sf in 0.0f64..2e-10) {
            let m = model();
            for edge in [Edge::Rising, Edge::Falling] {
                let out = m.width_out(w, edge, sr, sf);
                prop_assert!(out >= 0.0);
                let max_skew = (m.tp_lh + sr - m.tp_hl - sf).abs();
                prop_assert!(out <= w + max_skew + 1e-18);
            }
        }
    }
}
