//! Property tests for the whole-netlist pulse simulator: invariants that
//! must hold on random circuits, vectors and injection sites.

use proptest::prelude::*;
use pulsar_analog::{Edge, Polarity};
use pulsar_logic::{random_netlist, BenchParams};
use pulsar_timing::{NetSim, TimedEvent, TimingLibrary};

fn bits(seed: u64, n: usize) -> Vec<bool> {
    (0..n).map(|i| (seed >> (i % 64)) & 1 == 1).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Wider injected pulses never arrive narrower than slimmer ones at
    /// any output (monotone width transfer composes over the netlist).
    #[test]
    fn po_width_is_monotone_in_injected_width(seed in 0u64..5_000, vec_seed: u64,
                                              w1 in 5.0e-11f64..1.5e-9, w2 in 5.0e-11f64..1.5e-9) {
        let nl = random_netlist(&BenchParams { inputs: 5, gates: 18, outputs: 3, layers: 4 }, seed);
        let sim = NetSim::new(&nl, &TimingLibrary::generic());
        let vector = bits(vec_seed, 5);
        let pi = nl.inputs()[(seed % 5) as usize];
        let (lo, hi) = if w1 <= w2 { (w1, w2) } else { (w2, w1) };

        let out_lo = sim.run_pulse(&vector, pi, Polarity::PositiveGoing, lo).unwrap();
        let out_hi = sim.run_pulse(&vector, pi, Polarity::PositiveGoing, hi).unwrap();
        for (a, b) in out_lo.po_events.iter().zip(&out_hi.po_events) {
            let wa = a.and_then(|e| e.width()).unwrap_or(0.0);
            let wb = b.and_then(|e| e.width()).unwrap_or(0.0);
            prop_assert!(wa <= wb + 1e-18, "width transfer not monotone: {wa:e} > {wb:e}");
        }
    }

    /// An injected fault never creates activity at an output that was
    /// quiet fault-free, and never widens a surviving pulse.
    #[test]
    fn faults_never_help_across_the_netlist(seed in 0u64..5_000, vec_seed: u64,
                                            tau in 1.0e-11f64..1e-9,
                                            fault_gate in 0usize..18) {
        let nl = random_netlist(&BenchParams { inputs: 5, gates: 18, outputs: 3, layers: 4 }, seed);
        let lib = TimingLibrary::generic();
        let vector = bits(vec_seed, 5);
        let pi = nl.inputs()[(seed % 5) as usize];
        let w_in = 600e-12;

        let clean = NetSim::new(&nl, &lib);
        let base = clean.run_pulse(&vector, pi, Polarity::PositiveGoing, w_in).unwrap();

        let mut faulty_sim = NetSim::new(&nl, &lib);
        let victim = nl.gates()[fault_gate % nl.gate_count()].output;
        let gid = nl.driver_id(victim).expect("gate outputs are driven");
        faulty_sim.inject_rc(gid, 0, tau);
        let faulty = faulty_sim.run_pulse(&vector, pi, Polarity::PositiveGoing, w_in).unwrap();

        for (b, f) in base.po_events.iter().zip(&faulty.po_events) {
            let wb = b.and_then(|e| e.width()).unwrap_or(0.0);
            let wf = f.and_then(|e| e.width()).unwrap_or(0.0);
            prop_assert!(wf <= wb + 1e-18, "fault widened a pulse: {wb:e} -> {wf:e}");
        }
    }

    /// Edge runs either deliver a transition or nothing; arrival times of
    /// delivered transitions are positive and finite.
    #[test]
    fn edge_arrivals_are_sane(seed in 0u64..5_000, vec_seed: u64) {
        let nl = random_netlist(&BenchParams { inputs: 4, gates: 14, outputs: 2, layers: 3 }, seed);
        let sim = NetSim::new(&nl, &TimingLibrary::generic());
        let vector = bits(vec_seed, 4);
        let pi = nl.inputs()[(seed % 4) as usize];
        for edge in [Edge::Rising, Edge::Falling] {
            let out = sim.run_edge(&vector, pi, edge).unwrap();
            for e in out.po_events.iter().flatten() {
                match e {
                    TimedEvent::Edge { t, .. } => {
                        prop_assert!(t.is_finite() && *t > 0.0, "bad arrival {t:e}");
                    }
                    TimedEvent::Pulse { .. } => {
                        prop_assert!(false, "edge run must not synthesize pulses");
                    }
                }
            }
        }
    }
}
